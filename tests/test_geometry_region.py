"""Tests for repro.geometry.region."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Disc, Point, Rectangle


class TestRectangle:
    def test_contains_interior_and_boundary(self):
        rect = Rectangle(0, 0, 10, 5)
        assert rect.contains(Point(5, 2))
        assert rect.contains(Point(0, 0))
        assert rect.contains(Point(10, 5))
        assert not rect.contains(Point(11, 2))

    def test_area_and_dimensions(self):
        rect = Rectangle(1, 2, 4, 6)
        assert rect.width == pytest.approx(3)
        assert rect.height == pytest.approx(4)
        assert rect.area() == pytest.approx(12)

    def test_square_factory(self):
        square = Rectangle.square(5.0, origin=Point(1.0, 1.0))
        assert square.x_max == pytest.approx(6.0)
        assert square.area() == pytest.approx(25.0)

    def test_square_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            Rectangle.square(0.0)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Rectangle(5, 0, 0, 5)

    def test_bounding_box_is_self(self):
        rect = Rectangle(0, 0, 1, 1)
        assert rect.bounding_box() is rect


class TestDisc:
    def test_contains(self):
        disc = Disc(Point(0, 0), 2.0)
        assert disc.contains(Point(1, 1))
        assert disc.contains(Point(2, 0))
        assert not disc.contains(Point(2.1, 0))

    def test_area(self):
        disc = Disc(Point(0, 0), 3.0)
        assert disc.area() == pytest.approx(math.pi * 9.0)

    def test_bounding_box(self):
        box = Disc(Point(1, 2), 1.5).bounding_box()
        assert box.x_min == pytest.approx(-0.5)
        assert box.y_max == pytest.approx(3.5)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Disc(Point(0, 0), -1.0)
