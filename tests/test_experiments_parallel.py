"""Tests for the parallel experiment runner (repro.experiments.parallel).

The workers>1 path must produce bit-identical results to the sequential
path: trials are deterministically seeded from their own arguments, and
``map_trials`` preserves sweep order.  These tests exercise the real
``ProcessPoolExecutor`` branch (pickling of the config, the trial functions
and the returned rows included).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, default_workers, map_trials
from repro.experiments import e1_init, f3_uniform_lower_bound


def _square(args: tuple[int, int]) -> int:
    """Module-level (picklable) trial function."""
    base, offset = args
    return base * base + offset


class TestMapTrials:
    def test_sequential_default(self):
        assert map_trials(_square, [(1, 0), (2, 1), (3, 2)]) == [1, 5, 11]

    def test_process_pool_preserves_order(self):
        args = [(i, i % 3) for i in range(10)]
        sequential = map_trials(_square, args, workers=1)
        parallel = map_trials(_square, args, workers=2)
        assert parallel == sequential

    def test_single_trial_stays_in_process(self):
        # len(trials) <= 1 short-circuits to the sequential loop even with
        # workers > 1 (a closure would not be picklable, proving the branch).
        result = map_trials(lambda args: args * 2, [21], workers=4)
        assert result == [42]

    def test_negative_workers_uses_default(self):
        assert default_workers() >= 1
        args = [(i, 0) for i in range(4)]
        assert map_trials(_square, args, workers=-1) == [0, 1, 4, 9]

    def test_empty_trials(self):
        assert map_trials(_square, [], workers=4) == []


class TestExperimentWorkers:
    @pytest.fixture(scope="class")
    def tiny_config(self) -> ExperimentConfig:
        return ExperimentConfig(sizes=(8, 12), delta_targets=(1.0e2,), seeds=(1,))

    def test_e1_workers_bit_identical(self, tiny_config):
        sequential = e1_init.run(tiny_config)
        parallel = e1_init.run(tiny_config.with_overrides(workers=2))
        assert parallel.rows == sequential.rows
        assert parallel.summary == sequential.summary

    def test_f3_workers_bit_identical(self, tiny_config):
        sequential = f3_uniform_lower_bound.run(tiny_config)
        parallel = f3_uniform_lower_bound.run(tiny_config.with_overrides(workers=2))
        assert parallel.rows == sequential.rows
        assert parallel.summary == sequential.summary
