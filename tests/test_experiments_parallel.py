"""Tests for the parallel experiment runner (repro.experiments.parallel).

The workers>1 path must produce bit-identical results to the sequential
path: trials are deterministically seeded from their own arguments, and
``map_trials`` preserves sweep order.  These tests exercise the real
persistent-fabric branch (shared-memory config broadcast, chunked tasks,
worker-side payload cache) *and* the legacy cold-pool oracle
(``map_trials_cold``), and pin both against the sequential results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    default_workers,
    get_fabric,
    map_trials,
    map_trials_cold,
    shared_state,
)
from repro.experiments import e1_init, e9_capacity, e10_fading, f3_uniform_lower_bound
from repro.geometry import deployment_by_name
from repro.state import NetworkState


def _square(args: tuple[int, int]) -> int:
    """Module-level (picklable) trial function."""
    base, offset = args
    return base * base + offset


def _shared_square(args: tuple[dict, int]) -> int:
    """Trial tail + broadcast payload, reassembled by the fabric."""
    payload, value = args
    return payload["scale"] * value * value


def _state_digest(args: tuple[int]) -> tuple[int, float]:
    """Trial that reads the sweep's broadcast NetworkState zero-copy."""
    (seed,) = args
    state = shared_state()
    assert state is not None
    dist = state.distance_matrix()
    rng = np.random.default_rng(seed)
    row = int(rng.integers(len(state)))
    return row, float(dist[row].sum())


def _mutate_state(args: tuple[int]) -> None:
    """Misbehaving trial: tries to mutate the sweep's broadcast state."""
    (slot,) = args
    shared_state().move_nodes(np.array([slot]), np.array([[0.0, 0.0]]))


class TestMapTrials:
    def test_sequential_default(self):
        assert map_trials(_square, [(1, 0), (2, 1), (3, 2)]) == [1, 5, 11]

    def test_process_pool_preserves_order(self):
        args = [(i, i % 3) for i in range(10)]
        sequential = map_trials(_square, args, workers=1)
        parallel = map_trials(_square, args, workers=2)
        assert parallel == sequential

    def test_single_trial_stays_in_process(self):
        # len(trials) <= 1 short-circuits to the sequential loop even with
        # workers > 1 (a closure would not be picklable, proving the branch).
        result = map_trials(lambda args: args * 2, [21], workers=4)
        assert result == [42]

    def test_negative_workers_uses_default(self):
        assert default_workers() >= 1
        args = [(i, 0) for i in range(4)]
        assert map_trials(_square, args, workers=-1) == [0, 1, 4, 9]

    def test_default_workers_respects_affinity(self):
        # Containers pin processes to a CPU subset; the worker count must
        # follow the affinity mask, not the raw machine cpu_count.
        import os

        if hasattr(os, "sched_getaffinity"):
            assert default_workers() == max(1, len(os.sched_getaffinity(0)) - 1)

    def test_empty_trials(self):
        assert map_trials(_square, [], workers=4) == []

    def test_chunked_dispatch_preserves_order(self):
        args = [(i, 1) for i in range(11)]
        expected = [_square(a) for a in args]
        for chunksize in (1, 3, 11, 50):
            assert map_trials(_square, args, workers=2, chunksize=chunksize) == expected

    def test_cold_oracle_matches_fabric(self):
        args = [(i, i % 5) for i in range(9)]
        assert (
            map_trials_cold(_square, args, workers=2)
            == map_trials(_square, args, workers=2)
            == [_square(a) for a in args]
        )


class TestSharedBroadcast:
    def test_shared_payload_pickled_once_per_sweep(self):
        payload = {"scale": 3}
        tails = [(i,) for i in range(8)]
        expected = [_shared_square((payload, i)) for i in range(8)]
        assert map_trials(_shared_square, tails, workers=1, shared=payload) == expected
        assert map_trials(_shared_square, tails, workers=2, shared=payload) == expected

    def test_state_broadcast_zero_copy(self):
        nodes = deployment_by_name("uniform", 32, np.random.default_rng(6))
        state = NetworkState(nodes)
        state.distance_matrix()
        tails = [(seed,) for seed in range(6)]
        sequential = map_trials(_state_digest, tails, workers=1, state=state)
        fabric = map_trials(
            _state_digest, tails, workers=2, state=state, state_alphas=(3.0,)
        )
        assert fabric == sequential
        # The broadcast is scoped to the sweep: no state outside one.
        assert shared_state() is None

    def test_broadcast_state_frozen_on_every_path(self):
        """A trial mutating the broadcast raises at any worker count."""
        nodes = deployment_by_name("uniform", 8, np.random.default_rng(2))
        state = NetworkState(nodes)
        for workers in (1, 2):
            with pytest.raises(Exception, match="read-only"):
                map_trials(_mutate_state, [(0,), (1,)], workers=workers, state=state)
        # The sweep-scoped freeze lifts afterwards in the owning process.
        assert not state.readonly
        state.move_nodes(np.array([0]), np.array([[0.5, 0.5]]))

    def test_consecutive_sweeps_reuse_the_pool(self):
        fabric = get_fabric(2)
        first = map_trials(_square, [(i, 0) for i in range(4)], workers=2)
        pool = fabric._pool
        assert pool is not None
        second = map_trials(_square, [(i, 1) for i in range(4)], workers=2)
        assert fabric._pool is pool  # same executor, no per-sweep cold start
        assert first == [0, 1, 4, 9]
        assert second == [1, 2, 5, 10]

    def test_distinct_broadcasts_per_sweep(self):
        tails = [(i,) for i in range(4)]
        for scale in (2, 5):
            result = map_trials(_shared_square, tails, workers=2, shared={"scale": scale})
            assert result == [scale * i * i for i in range(4)]


class TestExperimentWorkers:
    @pytest.fixture(scope="class")
    def tiny_config(self) -> ExperimentConfig:
        return ExperimentConfig(sizes=(8, 12), delta_targets=(1.0e2,), seeds=(1,))

    @pytest.mark.parametrize(
        "module",
        [e1_init, e9_capacity, e10_fading, f3_uniform_lower_bound],
        ids=lambda m: m.__name__.rsplit(".", 1)[-1],
    )
    def test_workers_bit_identical(self, tiny_config, module):
        sequential = module.run(tiny_config)
        parallel = module.run(tiny_config.with_overrides(workers=2))
        assert parallel.rows == sequential.rows
        assert parallel.summary == sequential.summary
