"""Tests for repro.core.bitree."""

from __future__ import annotations

import pytest

from repro.core import BiTree, Schedule
from repro.exceptions import ScheduleError
from repro.links import Link

from .conftest import make_node


def _simple_tree() -> tuple[BiTree, list]:
    """A 5-node tree: 0 -> 2, 1 -> 2, 2 -> 4, 3 -> 4, rooted at 4."""
    nodes = [make_node(i, float(i), 0.0) for i in range(5)]
    parent = {0: 2, 1: 2, 2: 4, 3: 4}
    slots = {0: 0, 1: 1, 2: 2, 3: 0}
    return BiTree.from_parent_map(nodes, 4, parent, slots), nodes


class TestConstruction:
    def test_from_parent_map(self):
        tree, _ = _simple_tree()
        assert tree.root_id == 4
        assert tree.size == 5
        assert tree.parent_of(0) == 2
        assert tree.parent_of(4) is None

    def test_unknown_root_rejected(self):
        nodes = [make_node(0, 0, 0)]
        with pytest.raises(ScheduleError):
            BiTree.from_parent_map(nodes, 99, {})

    def test_unknown_parent_rejected(self):
        nodes = [make_node(0, 0, 0), make_node(1, 1, 0)]
        with pytest.raises(ScheduleError):
            BiTree.from_parent_map(nodes, 0, {1: 7})

    def test_single_node_tree(self):
        only = make_node(0, 0, 0)
        tree = BiTree.from_parent_map([only], 0, {})
        tree.validate()
        assert tree.size == 1
        assert tree.is_strongly_connected()


class TestStructure:
    def test_children_and_depth(self):
        tree, _ = _simple_tree()
        assert tree.children(2) == [0, 1]
        assert tree.children(4) == [2, 3]
        assert tree.depth_of(0) == 2
        assert tree.depth() == 2

    def test_path_to_root(self):
        tree, _ = _simple_tree()
        assert tree.path_to_root(0) == [0, 2, 4]
        assert tree.path_to_root(4) == [4]

    def test_subtree_nodes(self):
        tree, _ = _simple_tree()
        assert tree.subtree_nodes(2) == {0, 1, 2}
        assert tree.subtree_nodes(4) == {0, 1, 2, 3, 4}

    def test_degrees(self):
        tree, _ = _simple_tree()
        degrees = tree.degrees()
        assert degrees[4] == 2
        assert degrees[2] == 3
        assert tree.max_degree() == 3

    def test_links_and_duals(self):
        tree, nodes = _simple_tree()
        aggregation = tree.aggregation_links()
        assert len(aggregation) == 4
        assert Link(nodes[0], nodes[2]) in aggregation
        dissemination = tree.dissemination_links()
        assert Link(nodes[2], nodes[0]) in dissemination
        assert len(tree.all_links()) == 8

    def test_strong_connectivity(self):
        tree, _ = _simple_tree()
        assert tree.is_strongly_connected()


class TestSchedules:
    def test_dissemination_schedule_is_reversed(self):
        tree, nodes = _simple_tree()
        aggregation = tree.aggregation_schedule
        dissemination = tree.dissemination_schedule
        max_slot = max(slot for _, slot in aggregation.items())
        link = Link(nodes[0], nodes[2])
        assert dissemination.slot_of(link.dual) == max_slot - aggregation.slot_of(link)

    def test_validate_passes_for_well_formed_tree(self):
        tree, _ = _simple_tree()
        tree.validate()

    def test_validate_detects_cycles(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(3)]
        tree = BiTree(
            nodes={node.id: node for node in nodes},
            root_id=2,
            parent={0: 1, 1: 0},
            aggregation_schedule=Schedule(
                {Link(nodes[0], nodes[1]): 0, Link(nodes[1], nodes[0]): 1}
            ),
        )
        with pytest.raises(ScheduleError):
            tree.validate()

    def test_validate_detects_missing_parent(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(3)]
        tree = BiTree(
            nodes={node.id: node for node in nodes},
            root_id=2,
            parent={0: 2},
            aggregation_schedule=Schedule({Link(nodes[0], nodes[2]): 0}),
        )
        with pytest.raises(ScheduleError):
            tree.validate()

    def test_aggregation_order_valid(self):
        tree, _ = _simple_tree()
        tree.validate_aggregation_order()

    def test_aggregation_order_violation_detected(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(3)]
        # Chain 0 -> 1 -> 2 where the deeper link is scheduled *after* its parent.
        tree = BiTree.from_parent_map(nodes, 2, {0: 1, 1: 2}, slots={0: 5, 1: 1})
        with pytest.raises(ScheduleError):
            tree.validate_aggregation_order()

    def test_depth_of_disconnected_node_raises(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(3)]
        tree = BiTree(
            nodes={node.id: node for node in nodes},
            root_id=2,
            parent={0: 1, 1: 0},
            aggregation_schedule=Schedule(),
        )
        with pytest.raises(ScheduleError):
            tree.depth_of(0)
