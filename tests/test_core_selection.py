"""Tests for T(M), mean-power sampling selection and Distr-Cap (Section 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistrCapSelector,
    InitialTreeBuilder,
    MeanPowerSelector,
    degree_bounded_subset,
    is_power_controllable,
    solve_power,
)
from repro.links import Link, LinkSet, sparsity
from repro.sinr import MeanPower, SINRParameters, is_feasible

from .conftest import make_node


def _star(count: int) -> LinkSet:
    hub = make_node(0, 0.0, 0.0)
    return LinkSet(Link(make_node(i, float(i), 3.0), hub) for i in range(1, count + 1))


@pytest.fixture(scope="module")
def init_outcome():
    params = SINRParameters()
    rng = np.random.default_rng(21)
    from repro.geometry import uniform_random

    nodes = uniform_random(48, rng)
    outcome = InitialTreeBuilder(params).build(nodes, rng)
    return params, outcome


class TestDegreeBoundedSubset:
    def test_low_degree_tree_is_untouched(self, chain_links):
        result = degree_bounded_subset(chain_links, rho=2)
        assert len(result.subset) == len(chain_links)
        assert result.fraction == pytest.approx(1.0)

    def test_high_degree_hub_links_removed(self):
        star = _star(6)
        result = degree_bounded_subset(star, rho=3)
        assert len(result.subset) == 0
        assert 0 not in result.low_degree_nodes

    def test_fraction_of_real_tree_is_large(self, init_outcome):
        _, outcome = init_outcome
        links = outcome.tree.aggregation_links()
        result = degree_bounded_subset(links, rho=6)
        assert result.fraction >= 0.5

    def test_subset_sparsity_not_worse_than_tree(self, init_outcome):
        _, outcome = init_outcome
        links = outcome.tree.aggregation_links()
        result = degree_bounded_subset(links, rho=6)
        assert sparsity(result.subset).psi <= sparsity(links).psi

    def test_invalid_rho(self, chain_links):
        with pytest.raises(ValueError):
            degree_bounded_subset(chain_links, rho=0)

    def test_empty_tree(self):
        result = degree_bounded_subset(LinkSet(), rho=3)
        assert len(result.subset) == 0
        assert result.fraction == 0.0


class TestMeanPowerSelector:
    def test_selected_set_is_feasible_under_mean_power(self, init_outcome, rng):
        params, outcome = init_outcome
        candidates = degree_bounded_subset(outcome.tree.aggregation_links(), 6).subset
        power = MeanPower.for_max_length(params, max(outcome.delta, 1.0))
        result = MeanPowerSelector(params).select(candidates, rng, power=power)
        assert len(result.selected) >= 1
        assert is_feasible(list(result.selected), power, params)

    def test_selected_links_come_from_candidates(self, init_outcome, rng):
        params, outcome = init_outcome
        candidates = outcome.tree.aggregation_links()
        result = MeanPowerSelector(params).select(candidates, rng)
        assert all(link in candidates for link in result.selected)

    def test_probability_decreases_with_upsilon(self, params):
        selector = MeanPowerSelector(params)
        assert selector.sampling_probability(1024, 1e9) < selector.sampling_probability(8, 4.0)

    def test_explicit_probability_respected(self, params):
        selector = MeanPowerSelector(params, probability=0.123)
        assert selector.sampling_probability(100, 100.0) == 0.123

    def test_invalid_probability(self, params):
        with pytest.raises(ValueError):
            MeanPowerSelector(params, probability=0.0)

    def test_empty_candidates(self, params, rng):
        result = MeanPowerSelector(params).select(LinkSet(), rng)
        assert len(result.selected) == 0
        assert result.slots_used == 0


class TestDistrCapSelector:
    def test_selected_set_is_power_controllable(self, init_outcome, rng):
        params, outcome = init_outcome
        candidates = degree_bounded_subset(outcome.tree.aggregation_links(), 6).subset
        result = DistrCapSelector(params).select(candidates, rng, link_rounds=outcome.link_rounds)
        assert len(result.selected) >= 1
        assert result.power_controllable
        power = solve_power(list(result.selected), params, margin=1.05)
        assert is_feasible(list(result.selected), power, params)

    def test_no_node_in_two_selected_links(self, init_outcome, rng):
        params, outcome = init_outcome
        candidates = outcome.tree.aggregation_links()
        result = DistrCapSelector(params).select(candidates, rng, link_rounds=outcome.link_rounds)
        used: set[int] = set()
        for link in result.selected:
            assert link.sender.id not in used
            assert link.receiver.id not in used
            used.update(link.endpoint_ids)

    def test_slots_used_is_two_per_phase(self, init_outcome, rng):
        params, outcome = init_outcome
        candidates = outcome.tree.aggregation_links()
        result = DistrCapSelector(params).select(candidates, rng, link_rounds=outcome.link_rounds)
        assert result.slots_used == 2 * result.phases

    def test_selection_without_round_hints_uses_length_classes(self, init_outcome, rng):
        params, outcome = init_outcome
        candidates = outcome.tree.aggregation_links()
        result = DistrCapSelector(params).select(candidates, rng)
        assert result.phases >= 1
        assert is_power_controllable(list(result.selected), params)

    def test_empty_candidates(self, params, rng):
        result = DistrCapSelector(params).select(LinkSet(), rng)
        assert len(result.selected) == 0
        assert result.phases == 0

    def test_selects_constant_fraction_on_average(self, init_outcome):
        params, outcome = init_outcome
        candidates = degree_bounded_subset(outcome.tree.aggregation_links(), 6).subset
        sizes = []
        for seed in range(5):
            rng = np.random.default_rng(100 + seed)
            result = DistrCapSelector(params).select(
                candidates, rng, link_rounds=outcome.link_rounds
            )
            sizes.append(len(result.selected))
        assert np.mean(sizes) >= 0.05 * len(candidates)
