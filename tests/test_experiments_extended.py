"""Smoke tests for the remaining experiment modules and the examples.

The headline experiments are covered in test_experiments.py; here every other
experiment module is run once on a tiny configuration to guarantee the whole
harness stays runnable, and the example scripts' entry points are exercised.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentConfig,
    e3_sparsity,
    e4_reschedule,
    e6_tvc_mean,
    e7_tm_subset,
    e8_latency,
    e9_capacity,
    f2_delta,
    f3_uniform_lower_bound,
)

TINY = ExperimentConfig(
    sizes=(12, 20),
    delta_targets=(1.0e2, 1.0e3),
    seeds=(1,),
    delta_sweep_size=16,
)


class TestRemainingExperiments:
    def test_e3_sparsity(self):
        result = e3_sparsity.run(TINY)
        assert result.experiment_id == "E3"
        assert all(row["sparsity_psi"] >= 1 for row in result.rows)

    def test_e4_reschedule(self):
        result = e4_reschedule.run(TINY)
        assert result.summary["all_feasible"]
        for row in result.rows:
            assert row["mean_resched_len"] >= 1
            assert row["mean_ff_len"] <= row["initial_len"]

    def test_e6_tvc_mean(self):
        result = e6_tvc_mean.run(TINY)
        assert result.summary["all_feasible"]

    def test_e7_tm_subset(self):
        result = e7_tm_subset.run(TINY)
        assert result.summary["min_fraction"] > 0.0

    def test_e8_latency(self):
        result = e8_latency.run(TINY)
        assert result.summary["all_convergecasts_correct"]
        assert result.summary["all_broadcasts_complete"]

    def test_e9_capacity(self):
        result = e9_capacity.run(TINY)
        assert result.summary["all_selected_feasible"]

    def test_f2_delta(self):
        result = f2_delta.run(TINY)
        assert len(result.rows) == len(TINY.delta_targets)
        # The tiny two-point sweep is too noisy to assert growth ratios; the
        # benchmark (bench_f2_delta) checks those on the full sweep.
        assert result.summary["init_slots_growth"] > 0.0
        assert all(row["tvc_arbitrary_len"] >= 1 for row in result.rows)

    def test_f3_uniform_lower_bound(self):
        result = f3_uniform_lower_bound.run(TINY)
        largest = result.rows[-1]
        assert largest["uniform_ff_len"] == largest["links"]
        assert largest["mean_ff_len"] < largest["uniform_ff_len"]


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", ["quickstart.py"])
def test_example_scripts_import_and_define_main(script):
    namespace = runpy.run_path(str(EXAMPLES_DIR / script), run_name="not_main")
    assert callable(namespace.get("main"))
