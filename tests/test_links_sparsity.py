"""Tests for repro.links.sparsity (Definition 8)."""

from __future__ import annotations

import pytest

from repro.links import Link, LinkSet, is_sparse, sparsity, sparsity_profile

from .conftest import make_node


def _star_links(count: int, length: float) -> LinkSet:
    """`count` links of the given length all sharing one endpoint."""
    center = make_node(0, 0.0, 0.0)
    links = []
    for i in range(count):
        # Spread the far endpoints on a circle of the given radius.
        import math

        angle = 2 * math.pi * i / max(count, 1)
        links.append(
            Link(make_node(i + 1, length * math.cos(angle), length * math.sin(angle)), center)
        )
    return LinkSet(links)


class TestSparsity:
    def test_empty_set_is_zero_sparse(self):
        report = sparsity(LinkSet())
        assert report.psi == 0
        assert report.witness_center is None

    def test_single_link(self):
        link = Link(make_node(0, 0, 0), make_node(1, 5, 0))
        assert sparsity([link]).psi == 1

    def test_star_of_long_links_is_dense(self):
        star = _star_links(6, length=100.0)
        report = sparsity(star)
        # All 6 long links meet at the center, so a tiny ball there counts 6.
        assert report.psi == 6

    def test_spread_out_links_are_sparse(self, far_apart_links):
        assert sparsity(far_apart_links).psi <= 1

    def test_short_links_do_not_count_against_large_balls(self):
        # Links of length 1 with endpoints in a ball of radius 1 are not
        # counted because the definition only counts links of length >= 8r.
        cluster = LinkSet(
            Link(make_node(2 * i, i * 0.0, float(i)), make_node(2 * i + 1, 1.0, float(i)))
            for i in range(4)
        )
        profile = sparsity_profile(cluster, radii=[1.0])
        assert profile[1.0] == 0

    def test_is_sparse_threshold(self):
        star = _star_links(5, length=50.0)
        assert is_sparse(star, 5)
        assert not is_sparse(star, 4)

    def test_length_factor_validation(self):
        link = Link(make_node(0, 0, 0), make_node(1, 5, 0))
        with pytest.raises(ValueError):
            sparsity([link], length_factor=0.0)

    def test_sparsity_profile_monotone_radii(self):
        star = _star_links(4, length=80.0)
        profile = sparsity_profile(star, radii=[1.0, 5.0, 10.0])
        assert profile[1.0] >= profile[10.0] or profile[1.0] == 4

    def test_profile_rejects_nonpositive_radius(self):
        star = _star_links(3, length=10.0)
        with pytest.raises(ValueError):
            sparsity_profile(star, radii=[0.0])

    def test_mst_like_chain_is_constant_sparse(self, chain_links):
        # A unit chain is the canonical O(1)-sparse structure.
        assert sparsity(chain_links).psi <= 2
