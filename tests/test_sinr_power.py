"""Tests for repro.sinr.power."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.links import Link
from repro.sinr import (
    ExplicitPower,
    LinearPower,
    MeanPower,
    SINRParameters,
    UniformPower,
    link_cost,
    oblivious_power_by_name,
)

from .conftest import make_node


def _link(length: float) -> Link:
    return Link(make_node(0, 0, 0), make_node(1, length, 0))


class TestUniformPower:
    def test_constant_level(self):
        power = UniformPower(5.0)
        assert power.power(_link(1.0)) == 5.0
        assert power.power(_link(9.0)) == 5.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            UniformPower(0.0)

    def test_for_max_length_overcomes_noise(self, params):
        power = UniformPower.for_max_length(params, 8.0)
        assert link_cost(_link(8.0), power.power(_link(8.0)), params) <= 2 * params.beta + 1e-9

    def test_powers_vector(self):
        power = UniformPower(2.0)
        assert power.powers([_link(1.0), _link(2.0)]) == [2.0, 2.0]


class TestObliviousPowers:
    def test_mean_power_scaling(self):
        power = MeanPower(alpha=4.0, scale=1.0)
        assert power.power(_link(4.0)) == pytest.approx(4.0**2.0)

    def test_linear_power_scaling(self):
        power = LinearPower(alpha=3.0, scale=2.0)
        assert power.power(_link(2.0)) == pytest.approx(2.0 * 8.0)

    def test_mean_for_max_length_safe_for_all_shorter_links(self, params):
        power = MeanPower.for_max_length(params, 16.0)
        for length in (1.0, 2.0, 8.0, 16.0):
            cost = link_cost(_link(length), power.power(_link(length)), params)
            assert cost <= 2 * params.beta + 1e-9

    def test_linear_for_noise_safe_for_any_length(self, params):
        power = LinearPower.for_noise(params)
        for length in (1.0, 10.0, 1000.0):
            cost = link_cost(_link(length), power.power(_link(length)), params)
            assert cost <= 2 * params.beta + 1e-9

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            MeanPower(alpha=3.0, scale=0.0)

    def test_zero_noise_factories(self):
        params = SINRParameters(noise=0.0)
        assert MeanPower.for_max_length(params, 10.0).scale == 1.0
        assert LinearPower.for_noise(params).scale == 1.0

    def test_registry(self, params):
        for name in ("uniform", "mean", "linear"):
            assignment = oblivious_power_by_name(name, params, max_length=8.0)
            assert assignment.power(_link(2.0)) > 0.0
        with pytest.raises(ConfigurationError):
            oblivious_power_by_name("bogus", params, max_length=8.0)


class TestExplicitPower:
    def test_lookup_by_link_and_tuple_keys(self):
        link = _link(2.0)
        by_tuple = ExplicitPower({link.endpoint_ids: 7.0})
        by_link = ExplicitPower({link: 7.0})
        assert by_tuple.power(link) == 7.0
        assert by_link.power(link) == 7.0

    def test_missing_link_raises_without_fallback(self):
        power = ExplicitPower({})
        with pytest.raises(KeyError):
            power.power(_link(1.0))

    def test_fallback_consulted(self):
        power = ExplicitPower({}, fallback=UniformPower(3.0))
        assert power.power(_link(1.0)) == 3.0

    def test_set_power_and_as_dict(self):
        link = _link(2.0)
        power = ExplicitPower({})
        power.set_power(link, 4.0)
        assert power.as_dict() == {link.endpoint_ids: 4.0}
        assert len(power) == 1

    def test_nonpositive_rejected(self):
        link = _link(1.0)
        with pytest.raises(ConfigurationError):
            ExplicitPower({link: 0.0})
        with pytest.raises(ConfigurationError):
            ExplicitPower({}).set_power(link, -1.0)
