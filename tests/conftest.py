"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import AlgorithmConstants
from repro.geometry import Node, Point, grid, uniform_random
from repro.links import Link, LinkSet
from repro.sinr import SINRParameters


@pytest.fixture
def params() -> SINRParameters:
    """Default physical-model parameters used throughout the tests."""
    return SINRParameters(alpha=3.0, beta=1.5, noise=1.0, epsilon=0.1)


@pytest.fixture
def mild_params() -> SINRParameters:
    """A gentler SINR threshold, useful where many links must coexist."""
    return SINRParameters(alpha=3.0, beta=1.0, noise=0.5, epsilon=0.1)


@pytest.fixture
def constants() -> AlgorithmConstants:
    """Protocol constants sized for fast tests."""
    return AlgorithmConstants(slot_pairs_per_round_factor=3.0, min_slot_pairs_per_round=8)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(12345)


def make_node(node_id: int, x: float, y: float) -> Node:
    """Convenience node constructor used across test modules."""
    return Node(id=node_id, position=Point(x, y))


@pytest.fixture
def line_nodes() -> list[Node]:
    """Five nodes on a line, unit spacing."""
    return [make_node(i, float(i), 0.0) for i in range(5)]


@pytest.fixture
def square_nodes() -> list[Node]:
    """Four nodes at the corners of a 10x10 square."""
    return [
        make_node(0, 0.0, 0.0),
        make_node(1, 10.0, 0.0),
        make_node(2, 0.0, 10.0),
        make_node(3, 10.0, 10.0),
    ]


@pytest.fixture
def grid_nodes() -> list[Node]:
    """A 5x5 grid with spacing 3."""
    return grid(25, spacing=3.0)


@pytest.fixture
def random_nodes(rng: np.random.Generator) -> list[Node]:
    """32 uniformly random nodes (deterministic via the rng fixture)."""
    return uniform_random(32, rng)


@pytest.fixture
def chain_links(line_nodes: list[Node]) -> LinkSet:
    """The chain of links along the line nodes."""
    return LinkSet(Link(line_nodes[i], line_nodes[i + 1]) for i in range(len(line_nodes) - 1))


@pytest.fixture
def far_apart_links() -> LinkSet:
    """Three short links placed very far from each other (trivially feasible)."""
    nodes = [
        make_node(0, 0.0, 0.0),
        make_node(1, 1.0, 0.0),
        make_node(2, 1000.0, 0.0),
        make_node(3, 1001.0, 0.0),
        make_node(4, 0.0, 1000.0),
        make_node(5, 1.0, 1000.0),
    ]
    return LinkSet([Link(nodes[0], nodes[1]), Link(nodes[2], nodes[3]), Link(nodes[4], nodes[5])])
