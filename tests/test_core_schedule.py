"""Tests for repro.core.schedule."""

from __future__ import annotations

import pytest

from repro.core import Schedule
from repro.exceptions import ScheduleError
from repro.links import Link
from repro.sinr import UniformPower

from .conftest import make_node


def _links(count: int) -> list[Link]:
    nodes = [make_node(i, float(3 * i), 0.0) for i in range(count + 1)]
    return [Link(nodes[i], nodes[i + 1]) for i in range(count)]


class TestAssignment:
    def test_assign_and_slot_of(self):
        links = _links(2)
        schedule = Schedule({links[0]: 0, links[1]: 3})
        assert schedule.slot_of(links[0]) == 0
        assert schedule.slot_of(links[1]) == 3

    def test_unscheduled_link_raises(self):
        schedule = Schedule()
        with pytest.raises(ScheduleError):
            schedule.slot_of(_links(1)[0])

    def test_negative_slot_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule({_links(1)[0]: -1})

    def test_overwrite_assignment(self):
        link = _links(1)[0]
        schedule = Schedule({link: 0})
        schedule.assign(link, 5)
        assert schedule.slot_of(link) == 5
        assert len(schedule) == 1


class TestShape:
    def test_length_counts_distinct_slots(self):
        links = _links(3)
        schedule = Schedule({links[0]: 0, links[1]: 0, links[2]: 4})
        assert schedule.length == 2
        assert schedule.span == 5
        assert schedule.used_slots() == [0, 4]

    def test_normalized_compacts_slots(self):
        links = _links(3)
        schedule = Schedule({links[0]: 2, links[1]: 7, links[2]: 7})
        normalized = schedule.normalized()
        assert normalized.used_slots() == [0, 1]
        assert normalized.slot_of(links[0]) == 0

    def test_reversed_inverts_order(self):
        links = _links(3)
        schedule = Schedule({links[0]: 0, links[1]: 1, links[2]: 2})
        reversed_schedule = schedule.reversed()
        assert reversed_schedule.slot_of(links[0]) == 2
        assert reversed_schedule.slot_of(links[2]) == 0

    def test_merge_with_offset(self):
        first, second = _links(2)
        merged = Schedule({first: 0}).merge(Schedule({second: 0}), offset=5)
        assert merged.slot_of(second) == 5
        assert merged.length == 2

    def test_slot_groups_and_links_in_slot(self):
        links = _links(3)
        schedule = Schedule({links[0]: 1, links[1]: 1, links[2]: 2})
        groups = schedule.slot_groups()
        assert len(groups[1]) == 2
        assert links[2] in schedule.links_in_slot(2)

    def test_relabeled(self):
        link = _links(1)[0]
        schedule = Schedule({link: 3}).relabeled(lambda slot: slot * 2)
        assert schedule.slot_of(link) == 6

    def test_empty_schedule_shape(self):
        schedule = Schedule()
        assert schedule.length == 0
        assert schedule.span == 0
        assert schedule.reversed().length == 0


class TestValidation:
    def test_validate_covers(self):
        links = _links(2)
        schedule = Schedule({links[0]: 0})
        with pytest.raises(ScheduleError):
            schedule.validate_covers(links)
        schedule.assign(links[1], 1)
        schedule.validate_covers(links)

    def test_feasibility_of_singleton_slots(self, params):
        links = _links(3)
        power = UniformPower.for_max_length(params, 3.0)
        schedule = Schedule({link: index for index, link in enumerate(links)})
        assert schedule.is_feasible(power, params)
        assert schedule.infeasible_slots(power, params) == []

    def test_infeasible_slot_detected(self, params):
        # Three adjacent unit links crammed into one slot cannot all succeed.
        nodes = [make_node(i, float(i), 0.0) for i in range(6)]
        links = [Link(nodes[0], nodes[1]), Link(nodes[2], nodes[3]), Link(nodes[4], nodes[5])]
        power = UniformPower.for_max_length(params, 1.0)
        schedule = Schedule({link: 0 for link in links})
        assert not schedule.is_feasible(power, params)
        assert schedule.infeasible_slots(power, params) == [0]
