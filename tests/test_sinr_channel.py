"""Tests for repro.sinr.channel."""

from __future__ import annotations

import pytest

from repro.sinr import Channel, SINRParameters, Transmission, UniformPower

from .conftest import make_node


class TestChannel:
    def test_single_transmission_received(self, params):
        channel = Channel(params)
        sender, receiver = make_node(0, 0, 0), make_node(1, 1, 0)
        power = params.min_power_for(1.0)
        receptions = channel.resolve([Transmission(sender, power, "hello")], [receiver])
        assert receiver.id in receptions
        assert receptions[receiver.id].message == "hello"
        assert receptions[receiver.id].sinr >= params.beta

    def test_insufficient_power_not_received(self, params):
        channel = Channel(params)
        sender, receiver = make_node(0, 0, 0), make_node(1, 10, 0)
        receptions = channel.resolve([Transmission(sender, 1e-3, "x")], [receiver])
        assert receptions == {}

    def test_transmitting_node_never_receives(self, params):
        channel = Channel(params)
        a, b = make_node(0, 0, 0), make_node(1, 1, 0)
        power = params.min_power_for(1.0)
        receptions = channel.resolve(
            [Transmission(a, power, "from-a"), Transmission(b, power, "from-b")], [a, b]
        )
        assert receptions == {}

    def test_collision_of_equal_signals(self, params):
        # Two senders at equal distance and power: SINR ~ 1 < beta -> nothing decoded.
        channel = Channel(SINRParameters(alpha=3.0, beta=1.5, noise=0.1))
        listener = make_node(2, 0, 0)
        left = make_node(0, -1, 0)
        right = make_node(1, 1, 0)
        receptions = channel.resolve(
            [Transmission(left, 10.0, "l"), Transmission(right, 10.0, "r")], [listener]
        )
        assert listener.id not in receptions

    def test_capture_of_dominant_signal(self, params):
        channel = Channel(params)
        listener = make_node(2, 0, 0)
        near = make_node(0, 1, 0)
        far = make_node(1, 100, 0)
        power = params.min_power_for(1.0)
        receptions = channel.resolve(
            [Transmission(near, power, "near"), Transmission(far, power, "far")], [listener]
        )
        assert receptions[listener.id].message == "near"

    def test_duplicate_sender_rejected(self, params):
        channel = Channel(params)
        sender = make_node(0, 0, 0)
        with pytest.raises(ValueError):
            channel.resolve(
                [Transmission(sender, 1.0, "a"), Transmission(sender, 2.0, "b")],
                [make_node(1, 1, 0)],
            )

    def test_empty_inputs(self, params):
        channel = Channel(params)
        assert channel.resolve([], [make_node(0, 0, 0)]) == {}
        assert channel.resolve([Transmission(make_node(0, 0, 0), 1.0, "x")], []) == {}

    def test_transmission_power_must_be_positive(self, params):
        with pytest.raises(ValueError):
            Transmission(make_node(0, 0, 0), 0.0, "x")

    def test_multicast_reception(self, params):
        # One sender, two listeners both in range: both decode the message.
        channel = Channel(params)
        sender = make_node(0, 0, 0)
        listeners = [make_node(1, 1, 0), make_node(2, 0, 1)]
        power = params.min_power_for(2.0)
        receptions = channel.resolve([Transmission(sender, power, "m")], listeners)
        assert set(receptions) == {1, 2}


class TestLinkSucceeds:
    def test_succeeds_without_interference(self, params):
        channel = Channel(params)
        sender, receiver = make_node(0, 0, 0), make_node(1, 1, 0)
        assert channel.link_succeeds(sender, receiver, params.min_power_for(1.0), [])

    def test_fails_when_receiver_is_transmitting(self, params):
        channel = Channel(params)
        sender, receiver = make_node(0, 0, 0), make_node(1, 1, 0)
        concurrent = [Transmission(receiver, 1.0, "busy")]
        assert not channel.link_succeeds(sender, receiver, params.min_power_for(1.0), concurrent)

    def test_fails_under_heavy_interference(self, params):
        channel = Channel(params)
        sender, receiver = make_node(0, 0, 0), make_node(1, 2, 0)
        jammer = make_node(2, 2.5, 0)
        concurrent = [Transmission(jammer, 1e6, "jam")]
        assert not channel.link_succeeds(sender, receiver, params.min_power_for(2.0), concurrent)

    def test_concurrent_as_mapping(self, params):
        channel = Channel(params)
        sender, receiver = make_node(0, 0, 0), make_node(1, 1, 0)
        other = make_node(2, 500, 0)
        concurrent = {other.id: (other, 1.0)}
        assert channel.link_succeeds(sender, receiver, params.min_power_for(1.0), concurrent)
