"""Tests for repro.links.linkset."""

from __future__ import annotations

import pytest

from repro.links import Link, LinkSet

from .conftest import make_node


def _chain(count: int) -> list[Link]:
    nodes = [make_node(i, float(i), 0.0) for i in range(count + 1)]
    return [Link(nodes[i], nodes[i + 1]) for i in range(count)]


class TestConstruction:
    def test_deduplicates(self):
        links = _chain(3)
        link_set = LinkSet(links + links)
        assert len(link_set) == 3

    def test_add_returns_flag(self):
        link_set = LinkSet()
        link = _chain(1)[0]
        assert link_set.add(link) is True
        assert link_set.add(link) is False

    def test_union_preserves_both(self):
        first, second = LinkSet(_chain(2)), LinkSet(_chain(4)[2:])
        union = first.union(second)
        assert len(union) == 4

    def test_filtered(self):
        link_set = LinkSet(_chain(4))
        short = link_set.filtered(lambda link: link.length <= 1.0)
        assert len(short) == 4  # all chain links have length 1

    def test_without(self):
        links = _chain(3)
        remaining = LinkSet(links).without([links[0]])
        assert len(remaining) == 2
        assert links[0] not in remaining

    def test_duals(self):
        link_set = LinkSet(_chain(2))
        duals = link_set.duals()
        assert all(link.dual in link_set for link in duals)


class TestQueries:
    def test_senders_receivers_nodes(self):
        links = _chain(3)
        link_set = LinkSet(links)
        assert {n.id for n in link_set.senders()} == {0, 1, 2}
        assert {n.id for n in link_set.receivers()} == {1, 2, 3}
        assert len(link_set.nodes()) == 4

    def test_degrees(self):
        link_set = LinkSet(_chain(3))
        degrees = link_set.degrees()
        assert degrees[0] == 1
        assert degrees[1] == 2
        assert link_set.max_degree() == 2

    def test_degree_accepts_node_or_id(self):
        links = _chain(2)
        link_set = LinkSet(links)
        assert link_set.degree(1) == 2
        assert link_set.degree(links[0].sender) == 1

    def test_incident_outgoing_incoming(self):
        links = _chain(3)
        link_set = LinkSet(links)
        assert len(link_set.incident_links(1)) == 2
        assert len(link_set.outgoing(1)) == 1
        assert len(link_set.incoming(1)) == 1

    def test_induced_by_nodes(self):
        links = _chain(4)
        link_set = LinkSet(links)
        induced = link_set.induced_by_nodes([0, 1, 2])
        assert len(induced) == 2

    def test_contains_and_getitem(self):
        links = _chain(2)
        link_set = LinkSet(links)
        assert links[0] in link_set
        assert link_set[1] == links[1]

    def test_equality_ignores_order(self):
        links = _chain(3)
        assert LinkSet(links) == LinkSet(reversed(links))


class TestLengthQueries:
    def test_min_max_length(self):
        nodes = [make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 4, 0)]
        link_set = LinkSet([Link(nodes[0], nodes[1]), Link(nodes[1], nodes[2])])
        assert link_set.min_length() == pytest.approx(1.0)
        assert link_set.max_length() == pytest.approx(3.0)

    def test_empty_length_queries_raise(self):
        with pytest.raises(ValueError):
            LinkSet().min_length()
        with pytest.raises(ValueError):
            LinkSet().max_length()

    def test_longer_than(self):
        nodes = [make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 5, 0)]
        link_set = LinkSet([Link(nodes[0], nodes[1]), Link(nodes[0], nodes[2])])
        assert len(link_set.longer_than(2.0)) == 1

    def test_sorted_by_length(self):
        nodes = [make_node(0, 0, 0), make_node(1, 3, 0), make_node(2, 1, 0)]
        link_set = LinkSet([Link(nodes[0], nodes[1]), Link(nodes[0], nodes[2])])
        ordered = link_set.sorted_by_length()
        assert ordered[0].length <= ordered[1].length
        reverse = link_set.sorted_by_length(descending=True)
        assert reverse[0].length >= reverse[1].length
