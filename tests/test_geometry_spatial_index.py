"""Tests for repro.geometry.spatial_index."""

from __future__ import annotations

import pytest

from repro.geometry import GridIndex, Point, grid

from .conftest import make_node


class TestGridIndex:
    def test_len_and_iter(self):
        nodes = grid(9, spacing=2.0)
        index = GridIndex(nodes)
        assert len(index) == 9
        assert {node.id for node in index} == {node.id for node in nodes}

    def test_nodes_within_radius(self):
        nodes = [make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 5, 0)]
        index = GridIndex(nodes)
        close = index.nodes_within(Point(0, 0), 1.5)
        assert {node.id for node in close} == {0, 1}

    def test_count_within_matches_nodes_within(self):
        nodes = grid(25, spacing=1.0)
        index = GridIndex(nodes)
        center = Point(2.0, 2.0)
        assert index.count_within(center, 2.0) == len(index.nodes_within(center, 2.0))

    def test_radius_zero_only_exact_matches(self):
        nodes = [make_node(0, 0, 0), make_node(1, 3, 3)]
        index = GridIndex(nodes)
        assert {n.id for n in index.nodes_within(Point(0, 0), 0.0)} == {0}

    def test_negative_radius_rejected(self):
        index = GridIndex([make_node(0, 0, 0)])
        with pytest.raises(ValueError):
            index.nodes_within(Point(0, 0), -1.0)

    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            GridIndex([], cell_size=0.0)

    def test_nearest_neighbor(self):
        nodes = [make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 10, 0)]
        index = GridIndex(nodes)
        nearest = index.nearest_neighbor(nodes[0])
        assert nearest is not None and nearest.id == 1

    def test_nearest_neighbor_far_nodes(self):
        nodes = [make_node(0, 0, 0), make_node(1, 500, 0)]
        index = GridIndex(nodes)
        nearest = index.nearest_neighbor(nodes[0])
        assert nearest is not None and nearest.id == 1

    def test_nearest_neighbor_single_node(self):
        only = make_node(0, 0, 0)
        assert GridIndex([only]).nearest_neighbor(only) is None
