"""Tests for repro.core.power_solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import foschini_miljanic, gain_matrix, is_power_controllable, solve_power, spectral_radius
from repro.exceptions import ConvergenceError, InfeasiblePowerError
from repro.links import Link
from repro.sinr import SINRParameters, is_feasible

from .conftest import make_node


def _parallel_links(count: int, spacing: float, length: float = 1.0) -> list[Link]:
    """`count` parallel unit-length links, vertically separated by `spacing`."""
    links = []
    for i in range(count):
        sender = make_node(2 * i, 0.0, i * spacing)
        receiver = make_node(2 * i + 1, length, i * spacing)
        links.append(Link(sender, receiver))
    return links


class TestGainMatrix:
    def test_shape_and_diagonal(self, params):
        links = _parallel_links(3, spacing=10.0)
        gains = gain_matrix(links, params)
        assert gains.shape == (3, 3)
        assert gains[0, 0] == pytest.approx(1.0)  # unit length, alpha irrelevant

    def test_offdiagonal_decay(self, params):
        links = _parallel_links(2, spacing=10.0)
        gains = gain_matrix(links, params)
        assert gains[0, 1] < gains[0, 0]

    def test_empty(self, params):
        assert gain_matrix([], params).shape == (0, 0)


class TestSpectralRadius:
    def test_known_matrix(self):
        assert spectral_radius(np.array([[0.0, 0.5], [0.5, 0.0]])) == pytest.approx(0.5)

    def test_empty_matrix(self):
        assert spectral_radius(np.zeros((0, 0))) == 0.0


class TestPowerControllability:
    def test_well_separated_links_controllable(self, params):
        assert is_power_controllable(_parallel_links(4, spacing=20.0), params)

    def test_tightly_packed_links_not_controllable(self, params):
        assert not is_power_controllable(_parallel_links(6, spacing=1.0), params)

    def test_single_link_always_controllable(self, params):
        assert is_power_controllable(_parallel_links(1, spacing=1.0), params)


class TestSolvePower:
    def test_solution_is_feasible(self, params):
        links = _parallel_links(4, spacing=15.0)
        power = solve_power(links, params, margin=1.05)
        assert is_feasible(links, power, params)

    def test_infeasible_set_raises(self, params):
        with pytest.raises(InfeasiblePowerError):
            solve_power(_parallel_links(6, spacing=1.0), params)

    def test_empty_and_single(self, params):
        assert len(solve_power([], params).as_dict()) == 0
        links = _parallel_links(1, spacing=1.0)
        power = solve_power(links, params)
        assert is_feasible(links, power, params)

    def test_zero_noise_solution_feasible(self):
        params = SINRParameters(alpha=3.0, beta=1.2, noise=0.0)
        links = _parallel_links(3, spacing=12.0)
        power = solve_power(links, params, margin=1.1)
        assert is_feasible(links, power, params)

    def test_margin_increases_power(self, params):
        links = _parallel_links(3, spacing=20.0)
        base = solve_power(links, params, margin=1.0)
        buffered = solve_power(links, params, margin=1.5)
        for link in links:
            assert buffered.power(link) > base.power(link)


class TestFoschiniMiljanic:
    def test_converges_to_feasible_assignment(self, params):
        links = _parallel_links(4, spacing=15.0)
        result = foschini_miljanic(links, params, margin=1.05)
        assert result.converged
        assert is_feasible(links, result.power, params)

    def test_matches_direct_solution(self, params):
        links = _parallel_links(3, spacing=15.0)
        iterative = foschini_miljanic(links, params).power
        direct = solve_power(links, params)
        for link in links:
            assert iterative.power(link) == pytest.approx(direct.power(link), rel=1e-4)

    def test_divergence_detected(self, params):
        links = _parallel_links(6, spacing=1.0)
        with pytest.raises(ConvergenceError):
            foschini_miljanic(links, params, max_iterations=200)

    def test_no_raise_mode(self, params):
        links = _parallel_links(6, spacing=1.0)
        result = foschini_miljanic(links, params, max_iterations=50, raise_on_failure=False)
        assert not result.converged

    def test_empty_input(self, params):
        result = foschini_miljanic([], params)
        assert result.converged
        assert result.iterations == 0
