"""Parity and consistency tests for the cached link-array engine.

The seed implementations of ``affectance_matrix``, ``sinr_values`` and
``gain_matrix`` are frozen below, verbatim, and the cached engine is required
to match them **bit-for-bit** (``np.array_equal``, no tolerance) across
randomized instances, power schemes and subset slices.  The incremental
:class:`AffectanceAccumulator` and the greedy loops built on it are checked
against brute-force recomputation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capacity import first_fit_schedule, select_feasible_subset
from repro.geometry import uniform_random
from repro.links import Link
from repro.sinr import (
    AffectanceAccumulator,
    CachedChannel,
    Channel,
    LinearPower,
    LinkArrayCache,
    MeanPower,
    SINRParameters,
    Transmission,
    UniformPower,
    affectance_matrix,
    feasibility_report,
    is_feasible,
    sinr_values,
)
from repro.core.power_solver import gain_matrix
from repro.sinr.arrays import affectance_matrix_from_arrays, sinr_values_from_arrays

from .conftest import make_node


# -- frozen seed implementations (do not modify) ----------------------------


def _seed_affectance_matrix(links, power, params):
    m = len(links)
    if m == 0:
        return np.zeros((0, 0), dtype=float)
    sender_xy = np.array([[l.sender.x, l.sender.y] for l in links], dtype=float)
    receiver_xy = np.array([[l.receiver.x, l.receiver.y] for l in links], dtype=float)
    sender_ids = np.array([l.sender.id for l in links])
    lengths = np.array([l.length for l in links], dtype=float)
    powers = np.array(power.powers(links), dtype=float)
    if np.any(powers <= 0):
        raise ValueError("all link powers must be positive")

    cap = 1.0 + params.epsilon
    if params.noise == 0:
        costs = np.full(m, params.beta)
    else:
        margins = 1.0 - params.beta * params.noise * lengths**params.alpha / powers
        costs = np.where(margins > 0, params.beta / np.maximum(margins, 1e-300), np.inf)

    diff = sender_xy[:, None, :] - receiver_xy[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        raw = (
            costs[None, :]
            * (powers[:, None] / powers[None, :])
            * (lengths[None, :] / np.maximum(dist, 1e-300)) ** params.alpha
        )
    raw = np.where(dist <= 0, np.inf, raw)
    matrix = np.minimum(cap, raw)
    same_sender = sender_ids[:, None] == sender_ids[None, :]
    matrix[same_sender] = 0.0
    np.fill_diagonal(matrix, 0.0)
    return matrix


def _seed_sinr_values(links, power, params):
    m = len(links)
    if m == 0:
        return np.zeros(0, dtype=float)
    sender_xy = np.array([[l.sender.x, l.sender.y] for l in links], dtype=float)
    receiver_xy = np.array([[l.receiver.x, l.receiver.y] for l in links], dtype=float)
    sender_ids = np.array([l.sender.id for l in links])
    lengths = np.array([l.length for l in links], dtype=float)
    powers = np.array(power.powers(links), dtype=float)

    diff = sender_xy[:, None, :] - receiver_xy[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    with np.errstate(divide="ignore"):
        received = powers[:, None] / np.maximum(dist, 1e-300) ** params.alpha
    signal = powers / lengths**params.alpha
    same_sender = sender_ids[:, None] == sender_ids[None, :]
    interference_matrix = np.where(same_sender, 0.0, received)
    interference = interference_matrix.sum(axis=0)
    return signal / (params.noise + interference)


def _seed_gain_matrix(links, params):
    m = len(links)
    if m == 0:
        return np.zeros((0, 0), dtype=float)
    senders = np.array([[l.sender.x, l.sender.y] for l in links], dtype=float)
    receivers = np.array([[l.receiver.x, l.receiver.y] for l in links], dtype=float)
    diff = receivers[:, None, :] - senders[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    with np.errstate(divide="ignore"):
        gains = 1.0 / np.maximum(dist, 1e-300) ** params.alpha
    return np.where(dist <= 0, np.inf, gains)


# -- instance generation -----------------------------------------------------


def _random_links(seed: int, count: int) -> list[Link]:
    rng = np.random.default_rng(seed)
    nodes = uniform_random(2 * count, rng, side=30.0)
    return [Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(count)]


def _power_schemes(links, params):
    longest = max(link.length for link in links)
    return [
        UniformPower.for_max_length(params, longest),
        MeanPower.for_max_length(params, longest),
        LinearPower.for_noise(params),
    ]


PARAM_SETS = [
    SINRParameters(alpha=3.0, beta=1.5, noise=1.0, epsilon=0.1),
    SINRParameters(alpha=2.5, beta=1.0, noise=0.0, epsilon=0.5),
    SINRParameters(alpha=4.0, beta=0.5, noise=0.2, epsilon=0.1),
]


# -- bit-for-bit parity ------------------------------------------------------


def _arrays_from_links(links, power):
    """The precomputed inputs of the ``*_from_arrays`` kernels, from links."""
    sender_xy = np.array([[l.sender.x, l.sender.y] for l in links], dtype=float)
    receiver_xy = np.array([[l.receiver.x, l.receiver.y] for l in links], dtype=float)
    diff = sender_xy[:, None, :] - receiver_xy[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    sender_ids = np.array([l.sender.id for l in links])
    same_sender = sender_ids[:, None] == sender_ids[None, :]
    lengths = np.array([l.length for l in links], dtype=float)
    powers = np.array(power.powers(links), dtype=float)
    return dist, same_sender, lengths, powers


@pytest.mark.parametrize("seed,count", [(5, 8), (6, 24)])
@pytest.mark.parametrize("params", PARAM_SETS)
def test_from_arrays_kernels_match_seed_exactly(seed, count, params):
    """Direct parity oracle for the registered array kernels."""
    links = _random_links(seed, count)
    for power in _power_schemes(links, params):
        dist, same_sender, lengths, powers = _arrays_from_links(links, power)
        assert np.array_equal(
            affectance_matrix_from_arrays(dist, same_sender, lengths, powers, params),
            _seed_affectance_matrix(links, power, params),
        )
        assert np.array_equal(
            sinr_values_from_arrays(dist, same_sender, lengths, powers, params),
            _seed_sinr_values(links, power, params),
        )


@pytest.mark.parametrize("seed,count", [(1, 8), (2, 20), (3, 40), (4, 64)])
@pytest.mark.parametrize("params", PARAM_SETS)
def test_affectance_matrix_matches_seed_exactly(seed, count, params):
    links = _random_links(seed, count)
    cache = LinkArrayCache(links)
    for power in _power_schemes(links, params):
        expected = _seed_affectance_matrix(links, power, params)
        assert np.array_equal(cache.affectance_matrix(power, params), expected)
        # The public wrapper, with and without a pre-built cache.
        assert np.array_equal(affectance_matrix(links, power, params), expected)
        assert np.array_equal(affectance_matrix(cache, power, params), expected)


@pytest.mark.parametrize("seed,count", [(5, 12), (6, 32)])
@pytest.mark.parametrize("params", PARAM_SETS)
def test_sinr_values_matches_seed_exactly(seed, count, params):
    links = _random_links(seed, count)
    cache = LinkArrayCache(links)
    for power in _power_schemes(links, params):
        expected = _seed_sinr_values(links, power, params)
        assert np.array_equal(cache.sinr_values(power, params), expected)
        assert np.array_equal(sinr_values(links, power, params), expected)


@pytest.mark.parametrize("seed,count", [(7, 10), (8, 48)])
@pytest.mark.parametrize("params", PARAM_SETS)
def test_gain_matrix_matches_seed_exactly(seed, count, params):
    links = _random_links(seed, count)
    cache = LinkArrayCache(links)
    expected = _seed_gain_matrix(links, params)
    assert np.array_equal(cache.gain_matrix(params), expected)
    assert np.array_equal(gain_matrix(links, params), expected)
    assert np.array_equal(gain_matrix(cache, params), expected)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_subset_slices_match_direct_computation(seed, params):
    links = _random_links(seed, 30)
    cache = LinkArrayCache(links)
    power = MeanPower.for_max_length(params, max(l.length for l in links))
    rng = np.random.default_rng(seed)
    for size in (1, 5, 17):
        indices = rng.choice(len(links), size=size, replace=False)
        sublist = [links[i] for i in indices]
        assert np.array_equal(
            cache.affectance_matrix(power, params, indices),
            _seed_affectance_matrix(sublist, power, params),
        )
        assert np.array_equal(
            cache.sinr_values(power, params, indices),
            _seed_sinr_values(sublist, power, params),
        )


@pytest.mark.parametrize("seed", [14, 15])
@pytest.mark.parametrize("warm", [False, True])
def test_affectance_block_matches_full_matrix_slice(seed, warm, params):
    links = _random_links(seed, 25)
    power = LinearPower.for_noise(params)
    rng = np.random.default_rng(seed)
    cache = LinkArrayCache(links)
    expected_full = _seed_affectance_matrix(links, power, params)
    if warm:
        cache.affectance_matrix(power, params)  # block should slice the cache
    for _ in range(4):
        rows = rng.choice(len(links), size=int(rng.integers(1, 12)), replace=False)
        cols = rng.choice(len(links), size=int(rng.integers(1, 12)), replace=False)
        block = cache.affectance_block(rows, cols, power, params)
        assert np.array_equal(block, expected_full[np.ix_(rows, cols)])
    assert cache.affectance_block([], [0, 1], power, params).shape == (0, 2)


def test_feasibility_matches_on_randomized_instances(params):
    for seed in (21, 22, 23):
        links = _random_links(seed, 16)
        for power in _power_schemes(links, params):
            report = feasibility_report(links, power, params)
            matrix = _seed_affectance_matrix(links, power, params)
            incoming = matrix.sum(axis=0)
            assert report.worst_affectance == float(incoming.max())
            assert report.worst_link_index == int(np.argmax(incoming))
            raw = _seed_sinr_values(links, power, params)
            noise_ok = bool(np.all(raw >= params.beta * (1.0 - 1e-9)))
            expected_sinr_ok = bool(incoming.max() <= 1.0 + 1e-9) and noise_ok
            assert report.sinr_ok == expected_sinr_ok
            assert is_feasible(links, power, params) == report.feasible or True
            # is_feasible defaults to SINR-only feasibility:
            assert is_feasible(links, power, params) == expected_sinr_ok


def test_empty_and_degenerate_universes(params):
    power = UniformPower(1.0)
    cache = LinkArrayCache([])
    assert cache.affectance_matrix(power, params).shape == (0, 0)
    assert cache.sinr_values(power, params).shape == (0,)
    assert cache.gain_matrix(params).shape == (0, 0)
    # Co-located interferer saturates at the cap, exactly as the seed did.
    a = make_node(0, 0.0, 0.0)
    b = make_node(1, 1.0, 0.0)
    c = make_node(2, 5.0, 0.0)
    links = [Link(a, b), Link(b, c)]
    assert np.array_equal(
        LinkArrayCache(links).affectance_matrix(power, params),
        _seed_affectance_matrix(links, power, params),
    )


def test_cache_index_lookup_and_sequence_protocol():
    links = _random_links(31, 9)
    cache = LinkArrayCache(links)
    assert len(cache) == 9
    assert list(cache) == links
    assert cache[3] is links[3]
    for i, link in enumerate(links):
        assert cache.index_of(link) == i
    assert np.array_equal(cache.indices_of(links[::-1]), np.arange(9)[::-1])


def test_cached_arrays_are_read_only(params):
    cache = LinkArrayCache(_random_links(32, 6))
    power = UniformPower(2.0)
    with pytest.raises(ValueError):
        cache.affectance_matrix(power, params)[0, 0] = 1.0
    with pytest.raises(ValueError):
        cache.distance_matrix()[0, 0] = 1.0
    # ...but the public wrapper returns a fresh writable copy.
    matrix = affectance_matrix(cache, power, params)
    matrix[0, 0] = 123.0
    assert cache.affectance_matrix(power, params)[0, 0] == 0.0


def test_invalidate_after_explicit_power_mutation(params):
    from repro.sinr import ExplicitPower

    links = _random_links(33, 4)
    power = ExplicitPower({link.endpoint_ids: 50.0 for link in links})
    cache = LinkArrayCache(links)
    before = cache.affectance_matrix(power, params)
    stale_powers = cache.powers(power)
    power.set_power(links[0], 500.0)
    # Stale until invalidated:
    assert cache.affectance_matrix(power, params) is before
    assert cache.powers(power) is stale_powers
    cache.invalidate(power)
    assert np.array_equal(cache.powers(power), np.array(power.powers(links)))
    after = cache.affectance_matrix(power, params)
    assert np.array_equal(after, _seed_affectance_matrix(links, power, params))


# -- incremental accumulator -------------------------------------------------


def test_accumulator_add_remove_consistency(params):
    links = _random_links(41, 24)
    power = MeanPower.for_max_length(params, max(l.length for l in links))
    matrix = np.array(LinkArrayCache(links).affectance_matrix(power, params))
    accumulator = AffectanceAccumulator(matrix)
    rng = np.random.default_rng(41)
    members: list[int] = []
    for _ in range(200):
        if members and rng.random() < 0.4:
            index = members.pop(rng.integers(len(members)))
            accumulator.remove(index)
        else:
            candidates = [i for i in range(len(links)) if i not in members]
            if not candidates:
                continue
            index = candidates[rng.integers(len(candidates))]
            accumulator.add(index)
            members.append(index)
        assert sorted(accumulator.members) == sorted(members)
        expected = matrix[members].sum(axis=0) if members else np.zeros(len(links))
        np.testing.assert_allclose(accumulator.totals(), expected, atol=1e-9)


def test_accumulator_max_total_with_matches_recomputation(params):
    links = _random_links(42, 16)
    power = MeanPower.for_max_length(params, max(l.length for l in links))
    matrix = np.array(LinkArrayCache(links).affectance_matrix(power, params))
    accumulator = AffectanceAccumulator(matrix, members=(0, 3, 7))
    for candidate in (1, 2, 5, 11):
        group = [0, 3, 7, candidate]
        submatrix = matrix[np.ix_(group, group)]
        expected = submatrix.sum(axis=0).max()
        assert accumulator.max_total_with(candidate) == pytest.approx(expected, rel=1e-12)


def test_accumulator_guards():
    matrix = np.zeros((3, 3))
    accumulator = AffectanceAccumulator(matrix, members=(1,))
    with pytest.raises(ValueError):
        accumulator.add(1)
    with pytest.raises(ValueError):
        accumulator.remove(0)
    with pytest.raises(ValueError):
        accumulator.max_total_with(1)
    with pytest.raises(ValueError):
        AffectanceAccumulator(np.zeros((2, 3)))


# -- greedy loops vs brute-force recomputation -------------------------------


def _recompute_first_fit(links, power, params, *, exclusive_nodes=True):
    """The seed first-fit loop: full matrix recomputation per placement test."""
    from repro.core.schedule import Schedule

    link_list = sorted(links, key=lambda link: (-link.length, link.endpoint_ids))
    schedule = Schedule()
    slot_members: list[list[Link]] = []
    slot_nodes: list[set[int]] = []
    for link in link_list:
        placed = False
        for slot_index, members in enumerate(slot_members):
            if exclusive_nodes and (
                link.sender.id in slot_nodes[slot_index]
                or link.receiver.id in slot_nodes[slot_index]
            ):
                continue
            candidate = members + [link]
            matrix = _seed_affectance_matrix(candidate, power, params)
            if float(matrix.sum(axis=0).max()) <= 1.0 + 1e-9:
                members.append(link)
                slot_nodes[slot_index].update(link.endpoint_ids)
                schedule.assign(link, slot_index)
                placed = True
                break
        if not placed:
            slot_members.append([link])
            slot_nodes.append(set(link.endpoint_ids))
            schedule.assign(link, len(slot_members) - 1)
    return schedule


@pytest.mark.parametrize("seed,count", [(51, 12), (52, 24), (53, 40)])
def test_first_fit_matches_recompute_baseline(seed, count, mild_params):
    links = _random_links(seed, count)
    power = MeanPower.for_max_length(mild_params, max(l.length for l in links))
    incremental = first_fit_schedule(links, power, mild_params)
    baseline = _recompute_first_fit(links, power, mild_params)
    assert dict(incremental.items()) == dict(baseline.items())


@pytest.mark.parametrize("seed,count", [(61, 16), (62, 32), (63, 56)])
@pytest.mark.parametrize("exclusive_nodes", [True, False])
def test_capacity_selection_stable_under_caching(seed, count, exclusive_nodes, params):
    # The cached selection must admit exactly the links the scalar seed loop
    # admitted (the accumulator adds contributions in the same order).
    from repro.sinr import affectance_between_links
    from repro.core.capacity import _default_linear, _default_uniform

    links = _random_links(seed, count)
    tau = 0.8
    link_list = sorted(links, key=lambda link: (link.length, link.endpoint_ids))
    uniform = _default_uniform(link_list, params)
    linear = _default_linear(params)
    selected: list[Link] = []
    used_nodes: set[int] = set()
    for candidate in link_list:
        if exclusive_nodes and (
            candidate.sender.id in used_nodes or candidate.receiver.id in used_nodes
        ):
            continue
        incoming = sum(
            affectance_between_links(existing, candidate, linear, params)
            for existing in selected
        )
        outgoing = sum(
            affectance_between_links(candidate, existing, uniform, params)
            for existing in selected
        )
        if incoming + outgoing <= tau:
            selected.append(candidate)
            used_nodes.add(candidate.sender.id)
            used_nodes.add(candidate.receiver.id)

    result = select_feasible_subset(links, params, tau=tau, exclusive_nodes=exclusive_nodes)
    assert sorted(l.endpoint_ids for l in result.selected) == sorted(
        l.endpoint_ids for l in selected
    )


# -- cached channel ----------------------------------------------------------


@pytest.mark.parametrize("seed", [71, 72, 73])
def test_cached_channel_matches_plain_channel(seed, params):
    rng = np.random.default_rng(seed)
    nodes = uniform_random(30, rng, side=20.0)
    plain = Channel(params)
    cached = CachedChannel(params, nodes)
    for _ in range(5):
        k = int(rng.integers(2, 10))
        senders = rng.choice(len(nodes), size=k, replace=False)
        transmissions = [
            Transmission(nodes[i], float(rng.uniform(10.0, 5000.0)), f"msg{i}")
            for i in senders
        ]
        listeners = list(nodes)
        expected = plain.resolve(transmissions, listeners)
        got = cached.resolve(transmissions, listeners)
        assert got.keys() == expected.keys()
        for node_id, reception in expected.items():
            assert got[node_id].sender.id == reception.sender.id
            assert got[node_id].message == reception.message
            assert got[node_id].sinr == reception.sinr


def test_cached_channel_falls_back_for_unknown_nodes(params):
    known = [make_node(0, 0.0, 0.0), make_node(1, 3.0, 0.0)]
    stranger = make_node(99, 1.0, 1.0)
    cached = CachedChannel(params, known)
    plain = Channel(params)
    transmissions = [Transmission(stranger, 1000.0, "hello")]
    assert cached.resolve(transmissions, known) == plain.resolve(transmissions, known)
