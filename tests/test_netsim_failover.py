"""Failover tests: leader election, re-rooting and lossy selection/aggregation.

Four families:

* **Election** - the bully election converges to the unique max-priority
  live node, deterministically, under crashes and message loss.
* **Worker invariance** - a full failover run fingerprints identically under
  ``map_trials`` with 1 and 2 workers (the stateless-fault acceptance pin).
* **Re-rooting** - repeated root kills keep producing valid survivor-spanning
  trees rooted at the elected leader, and the re-rooted schedule still
  aggregates correctly.
* **Zero-fault parity** - over a perfect transport the netsim ``Distr-Cap``
  and aggregation drivers are bit-identical to the lockstep oracles at
  n=128 on three seeds (the acceptance criterion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.faults import fault_report, overhead_table
from repro.analysis.latency import simulate_broadcast, simulate_convergecast
from repro.core import InitialTreeBuilder
from repro.core.distr_cap import DistrCapSelector
from repro.experiments import map_trials
from repro.geometry import uniform_random
from repro.netsim import (
    BullyElection,
    CrashSchedule,
    FaultPlan,
    NetDistrCapBuilder,
    NetInitBuilder,
    PerfectTransport,
    election_priority,
    run_convergecast,
    run_dissemination,
    run_root_failover,
)
from repro.netsim.faults import CrashWindow
from repro.sinr import SINRParameters

PARAMS = SINRParameters(alpha=3.0, beta=1.5, noise=1.0, epsilon=0.1)


def _built(n: int, seed: int):
    nodes = uniform_random(n, np.random.default_rng(seed))
    return InitialTreeBuilder(PARAMS).build(nodes, np.random.default_rng(seed + 1))


def _failover_trial(args: tuple[int, int]) -> tuple:
    """Module-level (picklable) trial: crash the root under loss, recover,
    resume aggregation, and return a full fingerprint of the outcome."""
    n, seed = args
    built = _built(n, seed)
    root = built.tree.root_id
    plan = FaultPlan(
        seed=seed,
        drop_prob=0.12,
        crashes=CrashSchedule((CrashWindow(root, 0),)),
    )
    failover = run_root_failover(
        built.tree,
        built.power,
        params=PARAMS,
        plan=plan,
        crashed_ids=[root],
        rng=np.random.default_rng(seed + 300),
    )
    resumed = run_convergecast(
        failover.tree,
        failover.power,
        PARAMS,
        plan=plan.without_crashes(),
        slot_offset=failover.slots_used,
    )
    return (
        failover.new_root_id,
        failover.election.rounds_used,
        failover.election.slots_used,
        failover.election.messages,
        failover.election.retries,
        failover.slots_used,
        tuple(sorted(failover.tree.parent.items())),
        resumed.slots,
        resumed.root_value,
        resumed.fault_digest,
    )


class TestElection:
    def test_priorities_deterministic_and_distinct(self):
        ids = list(range(40))
        first = [election_priority(9, nid) for nid in ids]
        assert first == [election_priority(9, nid) for nid in ids]
        assert len(set(first)) == len(ids)
        # Different seeds permute the ranking (the priority is seeded).
        other = [election_priority(10, nid) for nid in ids]
        assert max(range(40), key=first.__getitem__) != max(
            range(40), key=other.__getitem__
        ) or first != other

    def test_zero_fault_election_is_one_round(self):
        election = BullyElection(list(range(16)), seed=3).elect()
        assert election.converged
        assert election.leader_id == max(
            range(16), key=lambda nid: election_priority(3, nid)
        )
        assert election.rounds_used == 1
        assert election.slots_used == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_converges_to_max_priority_survivor(self, seed):
        """Random crash schedules: the winner is always the highest-priority
        node that is actually alive."""
        ids = list(range(24))
        rng = np.random.default_rng(seed)
        downed = sorted(rng.choice(ids, size=6, replace=False).tolist())
        plan = FaultPlan(
            seed=seed,
            drop_prob=0.15,
            crashes=CrashSchedule(tuple(CrashWindow(nid, 0) for nid in downed)),
        )
        from repro.netsim import FaultyTransport

        election = BullyElection(
            ids, seed=seed, transport=FaultyTransport(plan)
        ).elect()
        live = [nid for nid in ids if nid not in downed]
        assert election.leader_id == max(
            live, key=lambda nid: election_priority(seed, nid)
        )
        # Exactly the crashed nodes that outrank the winner get skipped.
        winner_priority = election_priority(seed, election.leader_id)
        assert election.skipped_crashed == sum(
            1 for nid in downed if election_priority(seed, nid) > winner_priority
        )

    def test_election_is_deterministic(self):
        plan = FaultPlan(seed=11, drop_prob=0.3)
        from repro.netsim import FaultyTransport

        runs = [
            BullyElection(list(range(12)), seed=11, transport=FaultyTransport(plan)).elect()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestWorkerInvariance:
    def test_failover_fingerprint_identical_across_worker_counts(self):
        """The acceptance pin: 3 seeds, workers=1 vs workers=2, identical
        election outcome, tree, and fault digests."""
        jobs = [(24, 1), (24, 2), (32, 3)]
        sequential = map_trials(_failover_trial, jobs, workers=1)
        parallel = map_trials(_failover_trial, jobs, workers=2)
        assert sequential == parallel


class TestReroot:
    def test_repeated_root_kills_keep_tree_valid(self):
        """Kill the root three times in a row; every recovery spans the
        survivors, roots at the elected leader, and still aggregates."""
        built = _built(32, 7)
        tree, power = built.tree, built.power
        dead: set[int] = set()
        for round_index in range(3):
            root = tree.root_id
            dead.add(root)
            failover = run_root_failover(
                tree,
                power,
                params=PARAMS,
                crashed_ids=[root],
                rng=np.random.default_rng(100 + round_index),
                seed=round_index,
            )
            tree, power = failover.tree, failover.power
            tree.validate()
            survivors = set(built.tree.nodes) - dead
            assert set(tree.nodes) == survivors
            assert tree.root_id == failover.new_root_id
            assert failover.new_root_id == max(
                survivors, key=lambda nid: election_priority(round_index, nid)
            )
            assert failover.repair.root_changed
            # The re-rooted schedule still aggregates every survivor.
            resumed = run_convergecast(tree, power, PARAMS)
            assert resumed.correct
            assert resumed.contributing == frozenset(survivors)

    def test_reroot_requires_spanned_preferred_root(self):
        from repro.core.repair import TreeRepairer
        from repro.exceptions import ProtocolError

        built = _built(16, 9)
        repairer = TreeRepairer(PARAMS)
        with pytest.raises(ProtocolError):
            repairer.integrate(
                built.tree,
                built.power,
                failed_ids=[],
                rng=np.random.default_rng(0),
                preferred_root_id=10_000,
            )

    def test_fault_report_counts_failover(self):
        built = _built(24, 5)
        root = built.tree.root_id
        plan = FaultPlan(
            seed=5, drop_prob=0.1, crashes=CrashSchedule((CrashWindow(root, 0),))
        )
        net = NetInitBuilder(PARAMS, plan=FaultPlan(seed=5, drop_prob=0.1)).build(
            uniform_random(24, np.random.default_rng(5)), np.random.default_rng(6)
        )
        failover = run_root_failover(
            built.tree,
            built.power,
            params=PARAMS,
            plan=plan,
            crashed_ids=[root],
            rng=np.random.default_rng(7),
        )
        report = fault_report(net, failover=failover, degraded=True)
        assert report.elections == 1
        assert report.reroots == 1
        assert report.election_slots == failover.election.slots_used
        assert report.degraded
        row = report.as_row()
        assert row["elections"] == 1 and row["reroots"] == 1 and row["degraded"]
        table = overhead_table({0.1: [report]})
        assert "elections" in table and "reroots" in table


class TestZeroFaultParity:
    @pytest.mark.parametrize("seed", (11, 23, 47))
    def test_distr_cap_and_aggregation_match_oracles_at_128(self, seed):
        """Acceptance criterion: over a perfect transport the netsim stack is
        bit-identical to the lockstep oracles at n=128."""
        built = _built(128, seed)
        tree, power = built.tree, built.power
        candidates = tree.aggregation_links()

        cap_oracle = DistrCapSelector(PARAMS).select(
            candidates, np.random.default_rng(seed), link_rounds=built.link_rounds
        )
        cap_net = NetDistrCapBuilder(PARAMS).select(
            candidates, np.random.default_rng(seed), link_rounds=built.link_rounds
        )
        assert [l.endpoint_ids for l in cap_net.selected] == [
            l.endpoint_ids for l in cap_oracle.selected
        ]
        assert cap_net.slots_used == cap_oracle.slots_used
        assert cap_net.phases == cap_oracle.phases
        assert cap_net.power_controllable == cap_oracle.power_controllable
        assert not cap_net.degraded

        up_oracle = simulate_convergecast(tree, power, PARAMS)
        up_net = run_convergecast(tree, power, PARAMS)
        assert up_net.root_value == up_oracle.root_value
        assert up_net.slots == up_oracle.slots
        assert up_net.correct == up_oracle.correct
        assert up_net.retries == 0 and not up_net.degraded

        down_oracle = simulate_broadcast(tree, power, PARAMS)
        down_net = run_dissemination(tree, power, PARAMS)
        assert down_net.slots == down_oracle.slots
        assert down_net.reached == down_oracle.reached
        assert down_net.complete == down_oracle.complete

    def test_perfect_transport_default(self):
        """No plan, or a faultless plan, resolves to the perfect transport."""
        builder = NetDistrCapBuilder(PARAMS, plan=FaultPlan(seed=1))
        assert isinstance(builder._make_transport(), PerfectTransport)


class TestDegradationContract:
    def test_crashed_subtree_reported_never_silent(self):
        built = _built(48, 23)
        victim = built.tree.children(built.tree.root_id)[0]
        plan = FaultPlan(seed=23, crashes=CrashSchedule((CrashWindow(victim, 0),)))
        result = run_convergecast(built.tree, built.power, PARAMS, plan=plan, quorum=0.5)
        subtree = built.tree.subtree_nodes(victim)
        assert victim in result.missing_subtrees
        assert result.degraded and not result.correct
        assert result.contributing == frozenset(built.tree.nodes) - subtree
        assert result.quorum_met == (
            len(result.contributing) >= 0.5 * len(built.tree.nodes)
        )

    def test_lossy_aggregation_terminates_and_recovers(self):
        built = _built(48, 31)
        plan = FaultPlan(seed=31, drop_prob=0.25)
        result = run_convergecast(built.tree, built.power, PARAMS, plan=plan)
        assert result.retries > 0
        assert result.correct  # retries bought back every drop
        repeat = run_convergecast(built.tree, built.power, PARAMS, plan=plan)
        assert repeat.fault_digest == result.fault_digest
        assert repeat.root_value == result.root_value

    def test_lossy_dissemination_reports_missing(self):
        built = _built(32, 13)
        victim = built.tree.children(built.tree.root_id)[0]
        plan = FaultPlan(seed=13, crashes=CrashSchedule((CrashWindow(victim, 0),)))
        result = run_dissemination(built.tree, built.power, PARAMS, plan=plan, quorum=0.5)
        assert not result.complete
        assert victim in result.missing
        assert result.degraded
