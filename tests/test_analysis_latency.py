"""Tests for repro.analysis.latency (convergecast / broadcast / pairwise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import pairwise_latency, simulate_broadcast, simulate_convergecast
from repro.baselines import CentralizedMSTBaseline
from repro.core import InitialTreeBuilder
from repro.geometry import uniform_random
from repro.sinr import SINRParameters, UniformPower

from .conftest import make_node


@pytest.fixture(scope="module")
def scheduled_tree():
    params = SINRParameters()
    rng = np.random.default_rng(9)
    nodes = uniform_random(36, rng)
    outcome = InitialTreeBuilder(params).build(nodes, rng)
    return params, outcome.tree, outcome.power


class TestConvergecast:
    def test_counts_all_nodes(self, scheduled_tree):
        params, tree, power = scheduled_tree
        outcome = simulate_convergecast(tree, power, params)
        assert outcome.correct
        assert outcome.root_value == pytest.approx(float(tree.size))
        assert outcome.failed_links == 0

    def test_latency_equals_schedule_length(self, scheduled_tree):
        params, tree, power = scheduled_tree
        outcome = simulate_convergecast(tree, power, params)
        assert outcome.slots == tree.aggregation_schedule.length

    def test_custom_values_and_combiner(self, scheduled_tree):
        params, tree, power = scheduled_tree
        values = {node_id: float(node_id) for node_id in tree.nodes}
        outcome = simulate_convergecast(tree, power, params, values=values, combine=max)
        assert outcome.correct
        assert outcome.root_value == pytest.approx(max(values.values()))

    def test_underpowered_tree_fails(self, scheduled_tree):
        params, tree, _ = scheduled_tree
        bad_power = UniformPower(1e-9)
        outcome = simulate_convergecast(tree, bad_power, params)
        assert not outcome.correct
        assert outcome.failed_links > 0

    def test_single_node_tree(self, params):
        from repro.core import BiTree

        tree = BiTree.from_parent_map([make_node(0, 0, 0)], 0, {})
        outcome = simulate_convergecast(tree, UniformPower(1.0), params)
        assert outcome.correct
        assert outcome.slots == 0


class TestBroadcast:
    def test_reaches_every_node(self, scheduled_tree):
        params, tree, power = scheduled_tree
        outcome = simulate_broadcast(tree, power, params)
        assert outcome.complete
        assert outcome.reached == tree.size

    def test_latency_equals_schedule_length(self, scheduled_tree):
        params, tree, power = scheduled_tree
        outcome = simulate_broadcast(tree, power, params)
        assert outcome.slots == tree.dissemination_schedule.length

    def test_underpowered_broadcast_incomplete(self, scheduled_tree):
        params, tree, _ = scheduled_tree
        outcome = simulate_broadcast(tree, UniformPower(1e-9), params)
        assert not outcome.complete

    def test_mst_baseline_tree_broadcasts(self, params, rng):
        nodes = uniform_random(25, rng)
        baseline = CentralizedMSTBaseline(params).build(nodes)
        outcome = simulate_broadcast(baseline.tree, baseline.power, params)
        assert outcome.complete


class TestPairwise:
    def test_delivery_and_latency_bound(self, scheduled_tree):
        params, tree, power = scheduled_tree
        ids = sorted(tree.nodes)
        outcome = pairwise_latency(tree, power, params, ids[0], ids[-1])
        assert outcome.delivered
        assert outcome.slots <= 2 * tree.aggregation_schedule.length

    def test_unknown_nodes_rejected(self, scheduled_tree):
        params, tree, power = scheduled_tree
        with pytest.raises(KeyError):
            pairwise_latency(tree, power, params, -1, 10**9)
