"""Tests for repro.geometry.node."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Node, Point, node_distance_matrix, nodes_from_points, nodes_to_array


class TestNode:
    def test_coordinates_exposed(self):
        node = Node(id=3, position=Point(1.5, -2.0))
        assert node.x == pytest.approx(1.5)
        assert node.y == pytest.approx(-2.0)

    def test_distance_to(self):
        a = Node(0, Point(0, 0))
        b = Node(1, Point(0, 7))
        assert a.distance_to(b) == pytest.approx(7.0)

    def test_nodes_are_hashable(self):
        node = Node(0, Point(1, 1))
        assert node in {node}

    def test_ordering_by_id_then_position(self):
        a = Node(0, Point(5, 5))
        b = Node(1, Point(0, 0))
        assert a < b


class TestConstructors:
    def test_nodes_from_points_assigns_consecutive_ids(self):
        nodes = nodes_from_points([Point(0, 0), Point(1, 1)], start_id=10)
        assert [node.id for node in nodes] == [10, 11]
        assert nodes[1].position == Point(1, 1)

    def test_nodes_to_array(self):
        nodes = nodes_from_points([Point(0, 0), Point(2, 3)])
        arr = nodes_to_array(nodes)
        assert arr.shape == (2, 2)
        assert arr[1, 1] == pytest.approx(3.0)

    def test_node_distance_matrix(self):
        nodes = nodes_from_points([Point(0, 0), Point(0, 4)])
        matrix = node_distance_matrix(nodes)
        assert matrix[0, 1] == pytest.approx(4.0)
        assert np.allclose(matrix, matrix.T)
