"""Tests for repro.links.independence (Appendix A)."""

from __future__ import annotations

import pytest

from repro.links import (
    Link,
    LinkSet,
    are_q_independent,
    is_q_independent_set,
    partition_into_independent_sets,
)

from .conftest import make_node


class TestPairwiseIndependence:
    def test_far_apart_links_are_independent(self):
        first = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        second = Link(make_node(2, 100, 0), make_node(3, 101, 0))
        assert are_q_independent(first, second, q=2.0)

    def test_adjacent_links_are_not_independent(self):
        shared = make_node(1, 1, 0)
        first = Link(make_node(0, 0, 0), shared)
        second = Link(shared, make_node(2, 2, 0))
        assert not are_q_independent(first, second, q=1.0)

    def test_symmetry(self):
        first = Link(make_node(0, 0, 0), make_node(1, 2, 0))
        second = Link(make_node(2, 10, 0), make_node(3, 13, 0))
        assert are_q_independent(first, second, 1.5) == are_q_independent(second, first, 1.5)

    def test_q_monotonicity(self):
        first = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        second = Link(make_node(2, 6, 0), make_node(3, 7, 0))
        assert are_q_independent(first, second, q=1.0)
        assert not are_q_independent(first, second, q=10.0)

    def test_invalid_q(self):
        first = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        second = Link(make_node(2, 5, 0), make_node(3, 6, 0))
        with pytest.raises(ValueError):
            are_q_independent(first, second, q=0.0)


class TestSetsAndPartition:
    def test_is_q_independent_set(self, far_apart_links):
        assert is_q_independent_set(far_apart_links, q=2.0)

    def test_chain_is_not_independent(self, chain_links):
        assert not is_q_independent_set(chain_links, q=1.0)

    def test_partition_covers_all_links(self, chain_links):
        classes = partition_into_independent_sets(chain_links, q=1.0)
        total = sum(len(cls) for cls in classes)
        assert total == len(chain_links)

    def test_partition_classes_are_independent(self, chain_links):
        for cls in partition_into_independent_sets(chain_links, q=1.0):
            assert is_q_independent_set(cls, q=1.0)

    def test_partition_of_spread_links_is_single_class(self, far_apart_links):
        classes = partition_into_independent_sets(far_apart_links, q=2.0)
        assert len(classes) == 1

    def test_partition_of_empty_set(self):
        assert partition_into_independent_sets(LinkSet(), q=1.0) == []
