"""Tests for the tiled near/far geometry store (``repro.state.tiled``).

Three layers of claims are pinned here:

* **Kernel parity (RL005)** - every tile kernel is bit-for-bit equal to its
  reference oracle: ``tile_codes`` vs ``_tile_codes_reference``,
  ``far_tile_power_sums`` vs ``_far_tile_reference``,
  ``distance_rect_from_xy`` vs ``pairwise_distances`` and
  ``attenuation_rect_from_xy`` vs ``attenuation_from_distances``.
* **Store parity** - everything a decode consumes from a
  ``TiledNetworkState`` (rectangles, cached rows, fades, cache blocks,
  channel resolutions) is bitwise equal to the dense store, through seeded
  add/remove/move churn that crosses capacity-growth boundaries.
* **Approximation contract** - ``TiledAffectanceTotals`` is bitwise equal to
  the dense ``AffectanceAccumulator`` when everything is near, and within
  the declared ``far_error_bound()`` when far tiles aggregate; the
  peak-hold budget throttle shrinks the near radius under load and relaxes
  with hysteresis, never below one ring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InitialTreeBuilder, TreeRepairer
from repro.dynamics import LogNormalShadowing, RayleighFading
from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig
from repro.geometry import Node, Point
from repro.links import Link
from repro.obs import OBS, MetricsRegistry, telemetry
from repro.sinr import (
    AffectanceAccumulator,
    CachedChannel,
    LinearPower,
    LinkArrayCache,
    NodeArrayCache,
    SINRParameters,
    TiledAffectanceTotals,
)
from repro.state import (
    DecodeWorkspace,
    NetworkState,
    PeakHoldEstimator,
    TiledNetworkState,
    attach_state,
    export_state,
)
from repro.state.kernels import (
    _far_tile_reference,
    _tile_codes_reference,
    attenuation_from_distances,
    attenuation_rect_from_xy,
    distance_rect_from_xy,
    far_tile_power_sums,
    pairwise_distances,
    tile_codes,
)
from repro.state.tiled import build_tile_grid

ALPHAS = (2.5, 3.0)
SHADOW = LogNormalShadowing(sigma_db=5.0, seed=42)


def _make_nodes(rng: np.random.Generator, count: int, *, start_id: int = 0) -> list[Node]:
    points = rng.uniform(0.0, 100.0, size=(count, 2))
    return [
        Node(id=start_id + i, position=Point(float(x), float(y)))
        for i, (x, y) in enumerate(points)
    ]


def _make_links(rng: np.random.Generator, count: int, *, span: float = 400.0) -> list[Link]:
    """Short links scattered over a wide field (far tiles exist)."""
    links = []
    for i in range(count):
        a = rng.uniform(0.0, span, size=2)
        b = a + rng.uniform(-2.0, 2.0, size=2)
        links.append(
            Link(
                Node(2 * i, Point(float(a[0]), float(a[1]))),
                Node(2 * i + 1, Point(float(b[0]), float(b[1]))),
            )
        )
    return links


class TestTileKernelParity:
    def test_tile_codes_matches_tile_codes_reference(self, rng):
        xy = rng.uniform(-500.0, 500.0, size=(64, 2))
        for tile_size in (0.7, 13.0):
            assert np.array_equal(
                tile_codes(xy, tile_size), _tile_codes_reference(xy, tile_size)
            )

    def test_tile_codes_distinct_across_cells(self):
        xy = np.array([[0.5, 0.5], [1.5, 0.5], [0.5, 1.5], [-0.5, 0.5], [0.6, 0.6]])
        codes = tile_codes(xy, 1.0)
        assert codes[0] == codes[4]
        assert len({int(c) for c in codes[:4]}) == 4

    def test_distance_rect_from_xy_matches_pairwise_distances(self, rng):
        a = rng.uniform(0.0, 50.0, size=(9, 2))
        b = rng.uniform(0.0, 50.0, size=(13, 2))
        expected = pairwise_distances(a, b)
        assert np.array_equal(distance_rect_from_xy(a, b), expected)
        workspace = DecodeWorkspace()
        got = distance_rect_from_xy(a, b, workspace, "t.dist")
        assert np.array_equal(got, expected)

    def test_attenuation_rect_from_xy_matches_attenuation_from_distances(self, rng):
        a = rng.uniform(0.0, 50.0, size=(8, 2))
        b = np.concatenate([rng.uniform(0.0, 50.0, size=(5, 2)), a[:2]])  # colocated pairs
        for alpha in ALPHAS:
            expected = attenuation_from_distances(pairwise_distances(a, b), alpha)
            assert np.array_equal(attenuation_rect_from_xy(a, b, alpha), expected)
            workspace = DecodeWorkspace()
            got = attenuation_rect_from_xy(a, b, alpha, workspace, "t.att")
            assert np.array_equal(got, expected)

    def test_far_tile_power_sums_matches_far_tile_reference(self, rng):
        tx_xy = rng.uniform(0.0, 200.0, size=(17, 2))
        tx_power = rng.uniform(0.5, 8.0, size=17)
        centroids = rng.uniform(0.0, 200.0, size=(6, 2))
        for alpha in ALPHAS:
            assert np.array_equal(
                far_tile_power_sums(tx_xy, tx_power, centroids, alpha),
                _far_tile_reference(tx_xy, tx_power, centroids, alpha),
            )

    def test_far_tile_power_sums_empty_sides(self):
        none = np.empty((0, 2))
        assert far_tile_power_sums(none, np.empty(0), np.array([[1.0, 2.0]]), 2.5).tolist() == [0.0]
        assert far_tile_power_sums(np.array([[1.0, 2.0]]), np.ones(1), none, 2.5).shape == (0,)


class TestPeakHoldEstimator:
    def test_rises_instantly_holds_through_dips(self):
        estimator = PeakHoldEstimator(window=4, decay=0.5)
        assert estimator.observe(100.0) == 100.0
        for _ in range(3):  # three dips: inside the window, peak held
            assert estimator.observe(10.0) == 100.0
        assert estimator.observe(10.0) == 50.0  # fourth completes the window

    def test_decay_never_drops_below_current_load(self):
        estimator = PeakHoldEstimator(window=1, decay=0.01)
        estimator.observe(100.0)
        assert estimator.observe(90.0) == 90.0

    def test_new_peak_resets_the_quiet_window(self):
        estimator = PeakHoldEstimator(window=2, decay=0.5)
        estimator.observe(100.0)
        estimator.observe(10.0)
        estimator.observe(200.0)  # resets the below-counter
        assert estimator.observe(10.0) == 200.0  # one dip only: held

    def test_validation(self):
        with pytest.raises(ValueError):
            PeakHoldEstimator(window=0)
        with pytest.raises(ValueError):
            PeakHoldEstimator(decay=1.0)


class TestTileGrid:
    def test_grid_partitions_live_slots(self, rng):
        state = TiledNetworkState(_make_nodes(rng, 50))
        grid = state.grid()
        seen: list[int] = []
        for tile in range(grid.tile_count):
            members = grid.members(tile)
            assert members.size > 0
            seen.extend(int(s) for s in members)
            # every member binned into this tile, and back-indexed to it
            codes = tile_codes(state.xy[members], state.tile_size)
            assert len({int(c) for c in codes}) == 1
            assert (grid.tile_index_by_slot[members] == tile).all()
        assert sorted(seen) == sorted(int(s) for s in state.live_slots())

    def test_centroids_and_radii_cover_members(self, rng):
        state = TiledNetworkState(_make_nodes(rng, 40))
        grid = state.grid()
        for tile in range(grid.tile_count):
            members = grid.members(tile)
            points = state.xy[members]
            assert np.allclose(grid.centroids[tile], points.mean(axis=0))
            offsets = np.hypot(*(points - grid.centroids[tile]).T)
            assert offsets.max() <= grid.radii[tile] + 1e-12

    def test_empty_grid(self):
        grid = build_tile_grid(np.empty((0, 2)), np.empty(0, dtype=np.intp), 1.0, 4)
        assert grid.tile_count == 0
        assert (grid.tile_index_by_slot == -1).all()


class TestTiledNetworkStateParity:
    def test_rects_and_rows_match_dense_matrices(self, rng):
        nodes = _make_nodes(rng, 120)
        dense = NetworkState(nodes)
        tiled = TiledNetworkState(nodes)
        live = tiled.live_slots()
        some = live[rng.permutation(live.size)[:25]]
        assert np.array_equal(
            tiled.distance_rect(some, live), dense.distance_matrix()[np.ix_(some, live)]
        )
        for alpha in ALPHAS:
            dense_att = dense.attenuation_matrix(alpha)
            assert np.array_equal(
                tiled.attenuation_rect(alpha, some, live), dense_att[np.ix_(some, live)]
            )
            assert np.array_equal(tiled.attenuation_rows(alpha, some), dense_att[some, :])

    def test_churn_matches_fresh_dense_rebuild(self, rng):
        """Seeded add/remove/move churn, asserted bitwise after every step."""
        tiled = TiledNetworkState(_make_nodes(rng, 12), capacity=16)
        next_id = 12
        for step in range(30):
            choice = rng.integers(0, 3)
            if choice == 0 or len(tiled) < 4:
                batch = int(rng.integers(1, 8))
                tiled.add_nodes(_make_nodes(rng, batch, start_id=next_id))
                next_id += batch
            elif choice == 1:
                ids = [int(node.id) for node in tiled]
                victims = rng.choice(ids, size=min(3, len(ids)), replace=False)
                tiled.remove_nodes(int(v) for v in victims)
            else:
                live = tiled.live_slots()
                moved = live[rng.permutation(live.size)[:3]]
                tiled.move_nodes(moved, rng.uniform(0.0, 100.0, size=(moved.size, 2)))
            live = tiled.live_slots()
            fresh = NetworkState([tiled.node_at(int(s)) for s in live])
            assert np.array_equal(tiled.distance_rect(live, live), fresh.distance_matrix())
            for alpha in ALPHAS:
                fresh_att = fresh.attenuation_matrix(alpha)
                assert np.array_equal(
                    tiled.attenuation_rect(alpha, live, live), fresh_att
                )
                rows = tiled.attenuation_rows(alpha, live)
                assert np.array_equal(rows[:, live], fresh_att)
            grid = tiled.grid()
            assert sorted(int(s) for s in grid.slots) == sorted(int(s) for s in live)

    def test_free_list_reuse_and_capacity_growth(self, rng):
        tiled = TiledNetworkState(_make_nodes(rng, 8), capacity=8)
        assert tiled.capacity == 8
        tiled.add_nodes(_make_nodes(rng, 12, start_id=100))  # forces growth
        grown = tiled.capacity
        assert grown >= 20
        tiled.remove_nodes([100, 101, 102])
        tiled.add_nodes(_make_nodes(rng, 3, start_id=200))  # reuses freed slots
        assert tiled.capacity == grown
        assert len(tiled) == 20

    def test_attenuation_rows_cache_serves_and_invalidates(self, rng):
        nodes = _make_nodes(rng, 30)
        tiled = TiledNetworkState(nodes)
        dense = NetworkState(nodes)
        live = tiled.live_slots()
        first = tiled.attenuation_rows(2.5, live[:10])
        again = tiled.attenuation_rows(2.5, live[:10])
        assert np.array_equal(first, again)
        # workspace-staged gather is bitwise identical to the cached rows
        workspace = DecodeWorkspace()
        staged = tiled.attenuation_rows(2.5, live[:10], workspace=workspace)
        assert np.array_equal(staged, first)
        # mutation invalidates wholesale; served rows track the new geometry
        tiled.move_nodes(live[:2], rng.uniform(0.0, 100.0, size=(2, 2)))
        dense.move_nodes(live[:2], tiled.xy[live[:2]])
        assert np.array_equal(
            tiled.attenuation_rows(2.5, live[:10]), dense.attenuation_matrix(2.5)[live[:10], :]
        )

    def test_attenuation_rows_tiny_budget_still_exact(self, rng):
        """A budget holding almost no rows evicts FIFO but never serves wrong."""
        nodes = _make_nodes(rng, 24)
        tiled = TiledNetworkState(nodes, budget_bytes=24 * 8 * 6)  # ~3 cached rows
        dense = NetworkState(nodes)
        expected = dense.attenuation_matrix(3.0)
        live = tiled.live_slots()
        for _ in range(4):
            request = live[rng.permutation(live.size)[: int(rng.integers(1, 9))]]
            assert np.array_equal(
                tiled.attenuation_rows(3.0, request), expected[request, :]
            )

    def test_fade_rect_matches_dense_fade_matrix(self, rng):
        nodes = _make_nodes(rng, 20)
        dense = NetworkState(nodes)
        tiled = TiledNetworkState(nodes)
        live = tiled.live_slots()
        fade = dense.fade_matrix(SHADOW)
        assert np.array_equal(
            tiled.fade_rect(SHADOW, live[:6], live), fade[np.ix_(live[:6], live)]
        )
        assert np.array_equal(tiled.fade_rect(SHADOW, live[:6], None), fade[live[:6], :])
        with pytest.raises(ValueError, match="slot-dependent"):
            tiled.fade_rect(RayleighFading(seed=1), live[:2], live)

    def test_matrix_accessors_refuse_to_materialize(self, rng):
        tiled = TiledNetworkState(_make_nodes(rng, 5))
        with pytest.raises(RuntimeError, match="distance"):
            tiled.distance_matrix()
        with pytest.raises(RuntimeError, match="attenuation"):
            tiled.attenuation_matrix(2.5)
        with pytest.raises(RuntimeError, match="fade"):
            tiled.fade_matrix(SHADOW)

    def test_constructor_validation(self, rng):
        nodes = _make_nodes(rng, 4)
        with pytest.raises(ValueError, match="budget_bytes"):
            TiledNetworkState(nodes, budget_bytes=0)
        with pytest.raises(ValueError, match="near_rings"):
            TiledNetworkState(nodes, near_rings=0)
        with pytest.raises(ValueError, match="tile_size"):
            TiledNetworkState(nodes, tile_size=-1.0)
        assert TiledNetworkState(()).tile_size == 1.0  # empty-state fallback

    def test_store_flags(self, rng):
        nodes = _make_nodes(rng, 3)
        assert NetworkState(nodes).store == "dense"
        assert NetworkState(nodes).materializes_matrices
        tiled = TiledNetworkState(nodes)
        assert tiled.store == "tiled"
        assert not tiled.materializes_matrices

    def test_export_attach_roundtrip(self, rng):
        tiled = TiledNetworkState(_make_nodes(rng, 25), tile_size=7.0, near_rings=3)
        live = tiled.live_slots()
        with export_state(tiled) as export:
            assert export.spec.store == "tiled"
            attached = attach_state(export.spec)
            assert isinstance(attached, TiledNetworkState)
            assert attached.tile_size == tiled.tile_size
            assert attached.near_rings == tiled.near_rings
            assert attached.budget_bytes == tiled.budget_bytes
            assert np.array_equal(
                attached.distance_rect(live[:5], live), tiled.distance_rect(live[:5], live)
            )

    def test_from_arrays_rejects_dense_blocks(self, rng):
        xy = rng.uniform(0.0, 10.0, size=(4, 2))
        ids = np.arange(4, dtype=np.int64)
        with pytest.raises(ValueError, match="coordinates only"):
            TiledNetworkState.from_arrays(xy, ids, distances=np.zeros((4, 4)))

    def test_throttle_shrinks_under_load_and_relaxes_with_hysteresis(self, rng):
        # Budget of 320 bytes -> budget_pairs = 10; loads above that throttle.
        tiled = TiledNetworkState(_make_nodes(rng, 10), budget_bytes=320, near_rings=3)
        assert tiled.near_rings == 3
        tiled.note_near_load(50)
        assert tiled.near_rings == 2
        assert tiled.throttle_events == 1
        tiled.note_near_load(50)
        assert tiled.near_rings == 1
        tiled.note_near_load(50)  # floor: never below one ring
        assert tiled.near_rings == 1
        assert tiled.throttle_events == 2
        # The held peak ignores transient dips: no relaxation yet.
        tiled.note_near_load(0)
        assert tiled.near_rings == 1
        # After a full quiet window the peak decays below a quarter of the
        # budget and the radius steps back out.
        for _ in range(200):
            tiled.note_near_load(0)
        assert tiled.near_rings == 3
        assert tiled.near_cutoff == 3 * tiled.tile_size


class TestNodeArrayCacheTiledDispatch:
    @pytest.fixture()
    def caches(self, rng):
        nodes = _make_nodes(rng, 80)
        return NodeArrayCache(nodes), NodeArrayCache(state=TiledNetworkState(nodes))

    def test_blocks_match_dense_cache(self, caches, rng):
        dense, tiled = caches
        rows = rng.permutation(80)[:12].astype(np.intp)
        cols = rng.permutation(80)[:30].astype(np.intp)
        assert np.array_equal(tiled.distance_block(rows, cols), dense.distance_block(rows, cols))
        for alpha in ALPHAS:
            assert np.array_equal(
                tiled.attenuation_block(alpha, rows, cols),
                dense.attenuation_block(alpha, rows, cols),
            )
            # cols=None: the decode hot path's whole-row gather (row cache)
            assert np.array_equal(
                tiled.attenuation_block(alpha, rows), dense.attenuation_block(alpha, rows)
            )
        assert np.array_equal(
            tiled.fade_block(SHADOW, rows, cols), dense.fade_block(SHADOW, rows, cols)
        )
        assert np.array_equal(tiled.fade_block(SHADOW, rows), dense.fade_block(SHADOW, rows))

    def test_blocks_match_with_workspace(self, caches, rng):
        dense, tiled = caches
        workspace = DecodeWorkspace()
        rows = np.arange(7, dtype=np.intp)
        got = tiled.attenuation_block(2.5, rows, workspace=workspace)
        assert np.array_equal(np.array(got), dense.attenuation_block(2.5, rows))

    def test_cached_channel_resolution_parity(self, rng):
        nodes = _make_nodes(rng, 90)
        params = SINRParameters()
        dense_channel = CachedChannel(params, nodes)
        tiled_channel = CachedChannel(params.with_overrides(store="tiled"), nodes)
        assert tiled_channel.cache.state.store == "tiled"
        tx = np.arange(0, 30, dtype=np.intp)
        rx = np.arange(30, 70, dtype=np.intp)
        powers = np.full(30, 2.5)
        for slot in (0, 1):
            got = tiled_channel.resolve_indices(tx, rx, powers, slot=slot)
            want = dense_channel.resolve_indices(tx, rx, powers, slot=slot)
            for a, b in zip(got, want):
                assert np.array_equal(np.asarray(a), np.asarray(b))


class TestTiledAffectanceTotals:
    @pytest.fixture()
    def setup(self, rng):
        links = _make_links(rng, 60)
        params = SINRParameters()
        power = LinearPower.for_noise(params)
        cache = LinkArrayCache(links)
        dense = AffectanceAccumulator(cache.affectance_matrix(power, params))
        return links, params, power, cache, dense

    def test_all_near_is_bitwise_equal_to_dense_accumulator(self, setup, rng):
        links, params, power, cache, dense = setup
        tiled = TiledAffectanceTotals(cache, power, params, near_cutoff=1e9)
        order = rng.permutation(len(links))[:35]
        for index in order:
            dense.add(int(index))
            tiled.add(int(index))
        assert tiled.far_error_bound() == 0.0  # nothing was approximated
        assert np.array_equal(dense.totals(), tiled.totals())
        for j in range(len(links)):
            assert dense.total(j) == tiled.total(j)
            if j not in tiled:  # candidates only; members reject the query
                assert dense.max_total_with(j) == tiled.max_total_with(j)
                assert dense.fits(j, 0.05) == tiled.fits(j, 0.05)
        assert tiled.members == dense.members
        assert len(tiled) == len(order)
        assert int(order[0]) in tiled

    def test_far_field_error_within_declared_bound(self, setup, rng):
        links, params, power, cache, dense = setup
        tiled = TiledAffectanceTotals(cache, power, params, tile_size=40.0)
        order = rng.permutation(len(links))[:35]
        for index in order:
            dense.add(int(index))
            tiled.add(int(index))
        bound = tiled.far_error_bound()
        assert bound > 0.0  # far tiles were actually aggregated
        exact = dense.totals()
        approx = tiled.totals()
        positive = exact > 0.0
        relative = np.abs(approx[positive] - exact[positive]) / exact[positive]
        assert relative.max() <= bound + 1e-12
        for j in range(len(links)):
            assert tiled.total(j) == approx[j]

    def test_remove_inverts_add(self, setup, rng):
        links, params, power, cache, _ = setup
        tiled = TiledAffectanceTotals(cache, power, params, tile_size=40.0)
        for index in range(0, 30):
            tiled.add(index)
        before = tiled.totals().copy()
        pairs_before = tiled.near_pairs_held
        tiled.add(45)
        tiled.remove(45)
        assert tiled.near_pairs_held == pairs_before
        after = tiled.totals()
        residue = np.abs(after - before) / np.maximum(np.abs(before), 1e-30)
        assert residue.max() < 1e-9  # fp subtraction residue only

    def test_reports_bound_and_load_to_the_state(self, setup, rng):
        links, params, power, cache, _ = setup
        state = TiledNetworkState.from_links(links)
        tiled = TiledAffectanceTotals(cache, power, params, state=state, tile_size=40.0)
        for index in range(20):
            tiled.add(index)
        assert state.far_error_bound() == tiled.far_error_bound()

    def test_rejects_gain_models_and_bad_powers(self, setup):
        links, params, power, cache, _ = setup
        faded = params.with_overrides(gain_model=SHADOW)
        with pytest.raises(ValueError, match="gain model"):
            TiledAffectanceTotals(cache, power, faded)

    def test_duplicate_membership_rejected(self, setup):
        links, params, power, cache, _ = setup
        tiled = TiledAffectanceTotals(cache, power, params, near_cutoff=1e9)
        tiled.add(3)
        with pytest.raises(ValueError):
            tiled.add(3)
        tiled.remove(3)
        with pytest.raises(ValueError):
            tiled.remove(3)


class TestTiledObservability:
    def test_counters_and_gauges_behind_telemetry(self, rng):
        nodes = _make_nodes(rng, 30)
        with telemetry() as registry:
            tiled = TiledNetworkState(nodes, near_rings=2)
            tiled.grid()
            tiled.attenuation_rows(2.5, tiled.live_slots()[:4])
            assert registry.counter_value("tiled.far_tile_refresh") == 1
            assert registry.counter_value("tiled.row_cache_miss") == 4
            # A second gather of cached rows records no new misses.
            tiled.attenuation_rows(2.5, tiled.live_slots()[:4])
            assert registry.counter_value("tiled.row_cache_miss") == 4
            # Throttling needs a load above the budget: a tiny-budget state.
            strained = TiledNetworkState(nodes, budget_bytes=320, near_rings=2)
            strained.note_near_load(50)
            assert registry.counter_value("tiled.budget_throttle") == 1
            gauges = {name: value for name, _, value in registry.gauges()}
            assert gauges["tiled.near_pairs"] == 50.0
            assert gauges["tiled.resident_bytes"] > 0.0

    def test_silent_when_telemetry_off(self, rng):
        assert not OBS.enabled
        registry = MetricsRegistry()
        previous = OBS.registry
        OBS.registry = registry
        try:
            tiled = TiledNetworkState(_make_nodes(rng, 10))
            tiled.grid()
            tiled.attenuation_rows(2.5, tiled.live_slots()[:2])
            tiled.note_near_load(5)
        finally:
            OBS.registry = previous
        assert registry.counter_value("tiled.far_tile_refresh") == 0
        assert registry.counter_value("tiled.row_cache_miss") == 0


class TestTiledThroughTheStack:
    def test_experiment_rows_identical_dense_vs_tiled(self):
        config = ExperimentConfig(sizes=(12,), delta_targets=(1.0e2,), seeds=(1,))
        dense_rows = ALL_EXPERIMENTS["E1"](config).rows
        tiled_rows = ALL_EXPERIMENTS["E1"](config.with_overrides(store="tiled")).rows
        assert tiled_rows == dense_rows

    def test_worker_fanout_identical_under_tiled(self):
        config = ExperimentConfig(
            sizes=(12,), delta_targets=(1.0e2,), seeds=(1,), store="tiled"
        )
        sequential = ALL_EXPERIMENTS["E1"](config).rows
        fanned = ALL_EXPERIMENTS["E1"](config.with_overrides(workers=2)).rows
        assert fanned == sequential

    def test_config_store_override_threads_into_params(self):
        config = ExperimentConfig(store="tiled")
        assert config.params.store == "tiled"
        with pytest.raises(Exception):
            SINRParameters(store="sparse-ish")

    def test_repair_splices_tiled_state(self, rng):
        params = SINRParameters()
        nodes = _make_nodes(rng, 24)
        outcome = InitialTreeBuilder(params).build(nodes, rng)
        state = TiledNetworkState(nodes)
        failed = [nodes[3].id, nodes[7].id]
        arrivals = _make_nodes(rng, 2, start_id=500)
        result = TreeRepairer(params).integrate(
            outcome.tree,
            outcome.power,
            failed_ids=failed,
            arrivals=arrivals,
            rng=rng,
            state=state,
        )
        assert result.tree.is_strongly_connected()
        assert all(node_id not in state for node_id in failed)
        assert all(node.id in state for node in arrivals)
        # The splice stayed O(k) bookkeeping, and the rebuilt grid + rects
        # still match a fresh dense rebuild of the surviving membership.
        assert state.cells_patched == 0
        live = state.live_slots()
        fresh = NetworkState([state.node_at(int(s)) for s in live])
        assert np.array_equal(state.distance_rect(live, live), fresh.distance_matrix())
