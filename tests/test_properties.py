"""Property-based tests (hypothesis) on the core data structures and physics.

These check the invariants the paper's analysis leans on, over randomly
generated geometry rather than hand-picked examples:

* affectance is correctly thresholded, zero on self, and the matrix form
  agrees with the scalar form;
* feasibility is monotone under removing links and under increasing the
  interferer-to-receiver distances;
* the duality relation between a link's uniform-power affectance and its
  dual's linear-power affectance (Claim 8.3) holds up to the cap;
* length classes, sparsity and q-independence behave as set-level invariants;
* schedules never lose links under normalization/reversal.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import Schedule
from repro.geometry import Node, Point
from repro.links import (
    Link,
    LinkSet,
    are_q_independent,
    length_class_index,
    partition_by_length_class,
    partition_into_independent_sets,
    sparsity,
)
from repro.sinr import (
    LinearPower,
    SINRParameters,
    UniformPower,
    affectance,
    affectance_between_links,
    affectance_matrix,
    is_feasible,
)

PARAMS = SINRParameters(alpha=3.0, beta=1.5, noise=1.0, epsilon=0.1)

# Coordinates are drawn on a modest grid so distances stay in a sane range and
# the minimum separation of 1.0 (the paper's normalization) can be enforced.
coordinate = st.integers(min_value=-30, max_value=30).map(float)


@st.composite
def distinct_points(draw, count: int) -> list[Point]:
    points: list[Point] = []
    attempts = 0
    while len(points) < count and attempts < 200:
        attempts += 1
        candidate = Point(draw(coordinate), draw(coordinate))
        if all(candidate.distance_to(existing) >= 1.0 for existing in points):
            points.append(candidate)
    assume(len(points) == count)
    return points


@st.composite
def random_links(draw, min_links: int = 2, max_links: int = 6) -> list[Link]:
    count = draw(st.integers(min_value=min_links, max_value=max_links))
    points = draw(distinct_points(2 * count))
    nodes = [Node(i, point) for i, point in enumerate(points)]
    return [Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(count)]


class TestAffectanceProperties:
    @given(random_links())
    @settings(max_examples=60, deadline=None)
    def test_matrix_matches_scalar_and_is_capped(self, links):
        power = UniformPower.for_max_length(PARAMS, max(link.length for link in links))
        matrix = affectance_matrix(links, power, PARAMS)
        cap = 1.0 + PARAMS.epsilon
        for i, source in enumerate(links):
            for j, target in enumerate(links):
                assert matrix[i, j] <= cap + 1e-12
                if i == j or source.sender.id == target.sender.id:
                    assert matrix[i, j] == 0.0
                else:
                    scalar = affectance_between_links(source, target, power, PARAMS)
                    assert math.isclose(matrix[i, j], scalar, rel_tol=1e-9, abs_tol=1e-12)

    @given(random_links(), st.floats(min_value=1.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_affectance_decreases_when_interferer_moves_away(self, links, factor):
        link = links[0]
        interferer = links[1].sender
        assume(interferer.distance_to(link.receiver) > 0.5)
        power = PARAMS.min_power_for(link.length)
        near = affectance(interferer, power, link, power, PARAMS)
        receiver = link.receiver
        direction_x = interferer.x - receiver.x
        direction_y = interferer.y - receiver.y
        moved = Node(
            interferer.id,
            Point(receiver.x + direction_x * factor, receiver.y + direction_y * factor),
        )
        far = affectance(moved, power, link, power, PARAMS)
        assert far <= near + 1e-12

    @given(random_links())
    @settings(max_examples=40, deadline=None)
    def test_duality_relation_up_to_cap(self, links):
        # Claim 8.3: under linear power on duals vs uniform power on originals,
        # the two affectances agree up to a constant; with identical link
        # lengths on both sides of the dual pair the uncapped values coincide.
        linear = LinearPower.for_noise(PARAMS)
        uniform = UniformPower.for_max_length(PARAMS, max(link.length for link in links))
        cap = 1.0 + PARAMS.epsilon
        first, second = links[0], links[1]
        forward = affectance_between_links(first, second, uniform, PARAMS)
        dual = affectance_between_links(second.dual, first.dual, linear, PARAMS)
        if forward < cap and dual < cap:
            ratio_bound = 16.0  # loose constant absorbing the c(u,v) spread
            assert dual <= ratio_bound * forward + 1e-9 or forward <= 1e-9
            assert forward <= ratio_bound * dual + 1e-9 or dual <= 1e-9


class TestFeasibilityProperties:
    @given(random_links(min_links=3, max_links=6))
    @settings(max_examples=50, deadline=None)
    def test_feasibility_monotone_under_subsets(self, links):
        power = UniformPower.for_max_length(PARAMS, max(link.length for link in links))
        if is_feasible(links, power, PARAMS):
            assert is_feasible(links[:-1], power, PARAMS)
            assert is_feasible(links[1:], power, PARAMS)

    @given(random_links(min_links=2, max_links=5))
    @settings(max_examples=50, deadline=None)
    def test_singletons_with_adequate_power_are_feasible(self, links):
        for link in links:
            power = UniformPower(PARAMS.min_power_for(link.length))
            assert is_feasible([link], power, PARAMS)

    @given(random_links(min_links=2, max_links=5), st.floats(min_value=10.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_spreading_links_apart_preserves_feasibility(self, links, shift):
        power = UniformPower.for_max_length(PARAMS, max(link.length for link in links))
        spread = []
        for index, link in enumerate(links):
            offset = index * shift * max(link.length for link in links)
            spread.append(
                Link(
                    Node(link.sender.id, Point(link.sender.x + offset, link.sender.y)),
                    Node(link.receiver.id, Point(link.receiver.x + offset, link.receiver.y)),
                )
            )
        if is_feasible(links, power, PARAMS):
            assert is_feasible(spread, power, PARAMS)


class TestLinkSetProperties:
    @given(random_links(min_links=2, max_links=8))
    @settings(max_examples=50, deadline=None)
    def test_length_class_partition_is_a_partition(self, links):
        shortest = min(link.length for link in links)
        classes = partition_by_length_class(links, min_length=shortest)
        total = sum(len(class_links) for class_links in classes.values())
        assert total == len(LinkSet(links))
        for index, class_links in classes.items():
            for link in class_links:
                assert length_class_index(link.length, shortest) == index

    @given(random_links(min_links=2, max_links=8))
    @settings(max_examples=50, deadline=None)
    def test_duals_preserve_lengths_and_sparsity(self, links):
        link_set = LinkSet(links)
        duals = link_set.duals()
        assert sorted(link.length for link in link_set) == sorted(link.length for link in duals)
        assert sparsity(link_set).psi == sparsity(duals).psi

    @given(random_links(min_links=2, max_links=7), st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_independent_partition_is_valid(self, links, q):
        link_set = LinkSet(links)
        classes = partition_into_independent_sets(link_set, q)
        assert sum(len(cls) for cls in classes) == len(link_set)
        for cls in classes:
            members = list(cls)
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    assert are_q_independent(first, second, q)

    @given(random_links(min_links=2, max_links=8))
    @settings(max_examples=50, deadline=None)
    def test_sparsity_monotone_under_subsets(self, links):
        link_set = LinkSet(links)
        subset = LinkSet(links[:-1])
        assert sparsity(subset).psi <= sparsity(link_set).psi


class TestScheduleProperties:
    @given(random_links(min_links=2, max_links=8), st.lists(st.integers(0, 20), min_size=8, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_normalization_and_reversal_preserve_links(self, links, slots):
        schedule = Schedule({link: slots[i] for i, link in enumerate(links)})
        assert len(schedule.normalized()) == len(schedule)
        assert schedule.normalized().length == schedule.length
        assert schedule.reversed().length == schedule.length
        # Normalized slots are exactly 0..length-1.
        assert schedule.normalized().used_slots() == list(range(schedule.length))

    @given(random_links(min_links=2, max_links=6))
    @settings(max_examples=40, deadline=None)
    def test_one_link_per_slot_is_always_feasible_with_adequate_power(self, links):
        power = UniformPower.for_max_length(PARAMS, max(link.length for link in links))
        schedule = Schedule({link: index for index, link in enumerate(links)})
        assert schedule.is_feasible(power, PARAMS)
