"""Tests for repro.core.capacity (Kesselheim selection + first-fit scheduling)."""

from __future__ import annotations

import pytest

from repro.core import (
    first_fit_schedule,
    first_fit_schedule_result,
    is_power_controllable,
    pair_weight,
    select_feasible_subset,
    select_power_controllable_subset,
    solve_power,
    total_pair_weight,
)
from repro.links import Link, LinkSet
from repro.sinr import MeanPower, UniformPower, is_feasible

from .conftest import make_node


def _scattered_links(count: int, spacing: float = 25.0) -> LinkSet:
    """Unit links scattered on a row, `spacing` apart (mutually compatible)."""
    links = []
    for i in range(count):
        links.append(Link(make_node(2 * i, i * spacing, 0.0), make_node(2 * i + 1, i * spacing + 1.0, 0.0)))
    return LinkSet(links)


def _crowded_links(count: int) -> LinkSet:
    """Unit links packed tightly together (heavy mutual interference)."""
    links = []
    for i in range(count):
        links.append(Link(make_node(2 * i, i * 1.5, 0.0), make_node(2 * i + 1, i * 1.5 + 1.0, 0.0)))
    return LinkSet(links)


class TestSelectFeasibleSubset:
    def test_selects_everything_when_compatible(self, params):
        links = _scattered_links(5)
        result = select_feasible_subset(links, params)
        assert len(result.selected) == 5

    def test_selected_subset_is_power_controllable(self, params):
        links = _crowded_links(8)
        result = select_feasible_subset(links, params)
        assert len(result.selected) >= 1
        power = solve_power(list(result.selected), params, margin=1.05)
        assert is_feasible(list(result.selected), power, params)

    def test_crowded_set_is_thinned(self, params):
        links = _crowded_links(10)
        result = select_feasible_subset(links, params)
        assert len(result.selected) < len(links)

    def test_exclusive_nodes_respected(self, params):
        hub = make_node(0, 0, 0)
        links = LinkSet(
            [Link(make_node(1, 1, 0), hub), Link(make_node(2, 0, 1), hub), Link(make_node(3, -1, 0), hub)]
        )
        result = select_feasible_subset(links, params, exclusive_nodes=True)
        assert len(result.selected) == 1

    def test_empty_input(self, params):
        result = select_feasible_subset(LinkSet(), params)
        assert len(result.selected) == 0
        assert result.considered == 0

    def test_invalid_tau(self, params):
        with pytest.raises(ValueError):
            select_feasible_subset(_scattered_links(2), params, tau=0.0)

    def test_power_controllable_selection_always_solvable(self, params, rng):
        from repro.geometry import uniform_random
        from repro.links import Link

        nodes = uniform_random(80, rng)
        links = [Link(nodes[i], nodes[i + 1]) for i in range(0, 78, 2)]
        selected = select_power_controllable_subset(links, params)
        assert len(selected) >= 1
        assert is_power_controllable(list(selected), params, margin=1.05)
        power = solve_power(list(selected), params, margin=1.05)
        assert is_feasible(list(selected), power, params)

    def test_power_controllable_selection_even_with_loose_tau(self, params):
        links = _crowded_links(12)
        selected = select_power_controllable_subset(links, params, tau=3.0)
        assert is_power_controllable(list(selected), params, margin=1.05)


class TestPairWeight:
    def test_zero_when_first_longer(self, params):
        long_link = Link(make_node(0, 0, 0), make_node(1, 8, 0))
        short_link = Link(make_node(2, 20, 0), make_node(3, 21, 0))
        assert pair_weight(long_link, short_link, params) == 0.0
        assert pair_weight(short_link, long_link, params) > 0.0

    def test_decreases_with_separation(self, params):
        short_near = Link(make_node(2, 5, 0), make_node(3, 6, 0))
        short_far = Link(make_node(2, 50, 0), make_node(3, 51, 0))
        long_link = Link(make_node(0, 0, 0), make_node(1, 4, 0))
        assert pair_weight(short_near, long_link, params) > pair_weight(short_far, long_link, params)

    def test_total_pair_weight_excludes_self(self, params):
        links = list(_scattered_links(3))
        assert total_pair_weight(links[0], links, params) == pytest.approx(
            sum(pair_weight(links[0], other, params) for other in links[1:])
        )

    def test_feasible_set_has_bounded_weight(self, params):
        # Eqn. (5): for a feasible set R and any link, f_l(R) = O(1).  With the
        # scattered construction the weights should be far below 1.
        links = list(_scattered_links(6))
        for link in links:
            assert total_pair_weight(link, links, params) < 1.0


class TestFirstFitSchedule:
    def test_compatible_links_share_one_slot(self, params):
        links = _scattered_links(5)
        power = UniformPower.for_max_length(params, 1.0)
        schedule = first_fit_schedule(links, power, params)
        assert schedule.length == 1

    def test_schedule_covers_and_is_feasible(self, params):
        links = _crowded_links(10)
        power = MeanPower.for_max_length(params, 2.0)
        schedule = first_fit_schedule(links, power, params)
        schedule.validate_covers(links)
        assert schedule.is_feasible(power, params)

    def test_crowded_links_use_multiple_slots(self, params):
        links = _crowded_links(10)
        power = UniformPower.for_max_length(params, 2.0)
        schedule = first_fit_schedule(links, power, params)
        assert 1 < schedule.length <= len(links)

    def test_exclusive_nodes_in_slots(self, params):
        hub = make_node(0, 0, 0)
        links = LinkSet([Link(make_node(1, 200, 0), hub), Link(make_node(2, 0, 200), hub)])
        power = UniformPower.for_max_length(params, 200.0)
        schedule = first_fit_schedule(links, power, params)
        assert schedule.length == 2

    def test_result_wrapper(self, params):
        links = _scattered_links(3)
        power = UniformPower.for_max_length(params, 1.0)
        result = first_fit_schedule_result(links, power, params)
        assert result.power is power
        assert result.schedule.length >= 1
