"""Tests for repro.sinr.feasibility."""

from __future__ import annotations

import pytest

from repro.links import Link
from repro.sinr import (
    UniformPower,
    duplicate_senders,
    feasibility_report,
    is_feasible,
    is_schedulable_slot,
    sinr_values,
    violates_half_duplex,
)

from .conftest import make_node


class TestStructuralChecks:
    def test_half_duplex_violation_detected(self):
        a, b, c = make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 2, 0)
        assert violates_half_duplex([Link(a, b), Link(b, c)])
        assert not violates_half_duplex([Link(a, b), Link(c, make_node(3, 3, 0))])

    def test_duplicate_senders_detected(self):
        a = make_node(0, 0, 0)
        links = [Link(a, make_node(1, 1, 0)), Link(a, make_node(2, 0, 1))]
        assert duplicate_senders(links)
        assert not duplicate_senders(links[:1])


class TestFeasibility:
    def test_far_apart_links_are_feasible(self, params, far_apart_links):
        power = UniformPower.for_max_length(params, 1.0)
        assert is_feasible(list(far_apart_links), power, params)

    def test_chain_is_infeasible_in_one_slot(self, params, chain_links):
        power = UniformPower.for_max_length(params, 1.0)
        assert not is_feasible(list(chain_links), power, params)

    def test_single_link_with_sufficient_power(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 2, 0))
        power = UniformPower.for_max_length(params, 2.0)
        assert is_feasible([link], power, params)

    def test_single_link_with_insufficient_power_fails(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 2, 0))
        assert not is_feasible([link], UniformPower(1e-6), params)

    def test_empty_set_is_feasible(self, params):
        assert is_feasible([], UniformPower(1.0), params)

    def test_sinr_values_match_threshold(self, params, far_apart_links):
        power = UniformPower.for_max_length(params, 1.0)
        values = sinr_values(list(far_apart_links), power, params)
        assert (values >= params.beta).all()

    def test_feasibility_report_fields(self, params, far_apart_links):
        power = UniformPower.for_max_length(params, 1.0)
        report = feasibility_report(list(far_apart_links), power, params)
        assert report.feasible
        assert report.sinr_ok and report.half_duplex_ok and report.senders_ok
        assert 0.0 <= report.worst_affectance <= 1.0

    def test_structure_check_rejects_shared_nodes(self, params):
        a, b, c = make_node(0, 0, 0), make_node(1, 200, 0), make_node(2, 400, 0)
        links = [Link(a, b), Link(b, c)]
        power = UniformPower.for_max_length(params, 200.0)
        # SINR-wise this may pass, but a node cannot send and receive at once.
        assert not is_schedulable_slot(links, power, params)

    def test_feasible_subset_of_feasible_set(self, params, far_apart_links):
        # Feasibility is monotone under taking subsets.
        power = UniformPower.for_max_length(params, 1.0)
        links = list(far_apart_links)
        assert is_feasible(links, power, params)
        assert is_feasible(links[:2], power, params)

    def test_report_identifies_worst_link(self, params, chain_links):
        power = UniformPower.for_max_length(params, 1.0)
        report = feasibility_report(list(chain_links), power, params)
        assert report.worst_link_index is not None
        assert 0 <= report.worst_link_index < len(chain_links)
