"""End-to-end integration tests across the full pipeline.

These tests exercise the complete paper pipeline on several deployments:
build the initial tree distributively, reschedule it, build the efficient
trees, and verify every structure against the physical channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    simulate_broadcast,
    simulate_convergecast,
    tree_sparsity,
    validate_bitree,
)
from repro.baselines import CentralizedMSTBaseline, naive_tdma_schedule
from repro.core import ConnectivityProtocol, degree_bounded_subset, upsilon
from repro.geometry import clustered, exponential_chain, grid, two_scale, uniform_random
from repro.sinr import SINRParameters


@pytest.mark.parametrize(
    "deployment",
    [
        pytest.param(lambda rng: uniform_random(36, rng), id="uniform"),
        pytest.param(lambda rng: grid(36, rng, spacing=2.0, jitter=0.3), id="grid"),
        pytest.param(lambda rng: clustered(36, rng, clusters=3), id="clustered"),
        pytest.param(lambda rng: two_scale(30, rng, delta_target=1e4), id="two-scale"),
        pytest.param(lambda rng: exponential_chain(14), id="exp-chain"),
    ],
)
def test_initial_tree_valid_on_all_deployments(deployment):
    params = SINRParameters()
    rng = np.random.default_rng(77)
    nodes = deployment(rng)
    protocol = ConnectivityProtocol(params)
    outcome = protocol.build_initial_tree(nodes, rng)
    report = validate_bitree(outcome.tree, nodes, outcome.power, params)
    assert report.ok, report.issues


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        params = SINRParameters()
        protocol = ConnectivityProtocol(params)
        rng = np.random.default_rng(55)
        nodes = uniform_random(48, rng)
        initial = protocol.build_initial_tree(nodes, rng)
        rescheduled = protocol.reschedule_with_mean_power(initial, rng)
        efficient = protocol.build_efficient_tree(nodes, rng, power_mode="arbitrary")
        return params, nodes, initial, rescheduled, efficient

    def test_initial_tree_sparsity_is_logarithmic(self, pipeline):
        _, nodes, initial, _, _ = pipeline
        assert tree_sparsity(initial.tree) <= 4 * np.log2(len(nodes))

    def test_degree_bounded_subset_is_large_and_sparser(self, pipeline):
        _, _, initial, _, _ = pipeline
        links = initial.tree.aggregation_links()
        subset = degree_bounded_subset(links, 6)
        assert subset.fraction >= 0.5

    def test_rescheduled_schedule_feasible_and_covers_tree(self, pipeline):
        params, _, initial, rescheduled, _ = pipeline
        rescheduled.schedule.validate_covers(initial.tree.aggregation_links())
        assert rescheduled.schedule.is_feasible(rescheduled.power, params)

    def test_efficient_tree_valid(self, pipeline):
        params, nodes, _, _, efficient = pipeline
        report = validate_bitree(efficient.tree, nodes, efficient.power, params)
        assert report.ok, report.issues

    def test_efficient_schedule_beats_tdma_and_is_logarithmic_ish(self, pipeline):
        _, nodes, _, _, efficient = pipeline
        tdma = len(nodes) - 1
        assert efficient.schedule_length < tdma
        assert efficient.schedule_length <= 8 * np.log2(len(nodes))

    def test_efficient_schedule_not_longer_than_initial(self, pipeline):
        _, _, initial, _, efficient = pipeline
        assert efficient.schedule_length <= initial.tree.aggregation_schedule.length

    def test_convergecast_and_broadcast_work_on_efficient_tree(self, pipeline):
        params, _, _, _, efficient = pipeline
        up = simulate_convergecast(efficient.tree, efficient.power, params)
        down = simulate_broadcast(efficient.tree, efficient.power, params)
        assert up.correct and down.complete

    def test_centralized_baseline_comparable(self, pipeline):
        params, nodes, _, _, efficient = pipeline
        baseline = CentralizedMSTBaseline(params).build(nodes)
        # The distributed power-control schedule should be within a small
        # factor of the centralized mean-power baseline.
        assert efficient.schedule_length <= 4 * max(baseline.schedule_length, 1)


class TestMeanPowerPipeline:
    def test_mean_mode_tracks_upsilon_bound(self):
        params = SINRParameters()
        protocol = ConnectivityProtocol(params)
        rng = np.random.default_rng(66)
        nodes = uniform_random(40, rng)
        outcome = protocol.build_efficient_tree(nodes, rng, power_mode="mean")
        assert outcome.aggregation_feasible
        bound = upsilon(len(nodes), max(outcome.delta, 1.0)) * np.log2(len(nodes))
        assert outcome.schedule_length <= 2 * bound

    def test_high_delta_instance_mean_vs_arbitrary(self):
        params = SINRParameters()
        protocol = ConnectivityProtocol(params)
        rng = np.random.default_rng(88)
        nodes = two_scale(32, rng, delta_target=1e6)
        arbitrary = protocol.build_efficient_tree(nodes, rng, power_mode="arbitrary")
        tdma = naive_tdma_schedule(arbitrary.tree.aggregation_links(), params)
        assert arbitrary.aggregation_feasible
        assert arbitrary.schedule_length < tdma.schedule_length
