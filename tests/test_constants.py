"""Tests for repro.constants."""

from __future__ import annotations

import pytest

from repro.constants import (
    AlgorithmConstants,
    PaperConstants,
    PracticalConstants,
    paper_broadcast_probability,
)


class TestBroadcastProbability:
    def test_matches_lemma5_formula(self):
        alpha, beta = 3.0, 1.0
        expected = 1.0 / (64.0 * (1.0 + 6.0 * beta * 8.0 / 1.0))
        assert paper_broadcast_probability(alpha, beta) == pytest.approx(expected)

    def test_decreases_with_beta(self):
        assert paper_broadcast_probability(3.0, 2.0) < paper_broadcast_probability(3.0, 1.0)

    def test_alpha_must_exceed_two(self):
        with pytest.raises(ValueError):
            paper_broadcast_probability(2.0, 1.0)


class TestAlgorithmConstants:
    def test_slot_pairs_scale_with_log_n(self):
        constants = AlgorithmConstants(slot_pairs_per_round_factor=2.0, min_slot_pairs_per_round=1)
        assert constants.slot_pairs_per_round(1024) == 20
        assert constants.slot_pairs_per_round(2) == 2

    def test_minimum_slot_pairs_enforced(self):
        constants = AlgorithmConstants(min_slot_pairs_per_round=16)
        assert constants.slot_pairs_per_round(2) >= 16

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            AlgorithmConstants().slot_pairs_per_round(0)

    def test_with_overrides(self):
        constants = AlgorithmConstants().with_overrides(broadcast_probability=0.3)
        assert constants.broadcast_probability == 0.3
        assert constants.capacity_tau == AlgorithmConstants().capacity_tau

    def test_practical_constants_are_algorithm_constants(self):
        assert isinstance(PracticalConstants(), AlgorithmConstants)


class TestPaperConstants:
    def test_paper_constants_are_far_more_conservative(self):
        paper = PaperConstants(alpha=3.0, beta=1.0)
        practical = AlgorithmConstants()
        assert paper.broadcast_probability < practical.broadcast_probability
        assert paper.slot_pairs_per_round(64) > practical.slot_pairs_per_round(64)
        assert paper.degree_cap_rho > practical.degree_cap_rho

    def test_paper_rho_matches_formula(self):
        paper = PaperConstants(alpha=3.0, beta=1.0)
        p = paper.broadcast_probability
        assert paper.degree_cap_rho == pytest.approx(160.0 / (p * p), rel=0.01)
