"""Tests for repro.dynamics.mobility and the incremental NodeArrayCache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import RandomWalk, RandomWaypoint, StaticMobility, bounding_rectangle
from repro.exceptions import ConfigurationError
from repro.geometry import Rectangle, uniform_random
from repro.sinr import CachedChannel, NodeArrayCache, SINRParameters


class TestIncrementalNodeArrayCache:
    def _moved_cache(self, rng, n=30, k=7, alphas=(2.5, 3.0)):
        nodes = uniform_random(n, rng)
        cache = NodeArrayCache(nodes)
        for alpha in alphas:  # materialize before moving
            cache.attenuation_matrix(alpha)
        indices = rng.choice(n, size=k, replace=False).astype(np.intp)
        new_xy = cache.xy[indices] + rng.normal(0.0, 2.0, size=(k, 2))
        cache.update_positions(indices, new_xy)
        return cache, alphas

    def test_update_matches_full_rebuild_bitwise(self, rng):
        cache, alphas = self._moved_cache(rng)
        fresh = NodeArrayCache(cache.nodes)
        assert np.array_equal(cache.xy, fresh.xy)
        assert np.array_equal(cache.distance_matrix(), fresh.distance_matrix())
        for alpha in alphas:
            assert np.array_equal(
                cache.attenuation_matrix(alpha), fresh.attenuation_matrix(alpha)
            )

    def test_node_objects_reflect_new_positions(self, rng):
        cache, _ = self._moved_cache(rng)
        for i, node in enumerate(cache.nodes):
            assert node.x == cache.xy[i, 0]
            assert node.y == cache.xy[i, 1]
            assert node.id == cache.ids[i]

    def test_update_before_materialization_is_lazy(self, rng):
        nodes = uniform_random(10, rng)
        cache = NodeArrayCache(nodes)
        cache.update_positions(np.array([2, 5]), np.array([[0.0, 0.0], [50.0, 50.0]]))
        fresh = NodeArrayCache(cache.nodes)
        assert np.array_equal(cache.distance_matrix(), fresh.distance_matrix())

    def test_empty_update_is_noop(self, rng):
        nodes = uniform_random(5, rng)
        cache = NodeArrayCache(nodes)
        before = cache.distance_matrix().copy()
        cache.update_positions(np.empty(0, dtype=np.intp), np.empty((0, 2)))
        assert np.array_equal(cache.distance_matrix(), before)

    def test_cached_channel_decodes_like_fresh_channel_after_move(self, rng):
        params = SINRParameters()
        nodes = uniform_random(20, rng)
        channel = CachedChannel(params, nodes)
        channel.cache.attenuation_matrix(params.alpha)
        indices = np.array([0, 7, 13], dtype=np.intp)
        new_xy = channel.cache.xy[indices] + rng.normal(0.0, 3.0, size=(3, 2))
        channel.cache.update_positions(indices, new_xy)

        fresh = CachedChannel(params, channel.cache.nodes)
        tx = np.array([1, 7, 15], dtype=np.intp)
        rx = np.array([0, 2, 5, 13, 19], dtype=np.intp)
        powers = np.full(3, params.min_power_for(2.0))
        for moved, rebuilt in zip(
            channel.resolve_indices(tx, rx, powers), fresh.resolve_indices(tx, rx, powers)
        ):
            assert np.array_equal(moved, rebuilt)


class TestRandomWalk:
    def test_moves_all_nodes_within_bounds(self, rng):
        bounds = Rectangle(0.0, 0.0, 10.0, 10.0)
        walk = RandomWalk(sigma=5.0, bounds=bounds)
        xy = rng.uniform(0.0, 10.0, size=(40, 2))
        walk.reset(xy, rng)
        indices, new_xy = walk.move(xy, rng)
        assert len(indices) == 40
        assert np.all(new_xy[:, 0] >= 0.0) and np.all(new_xy[:, 0] <= 10.0)
        assert np.all(new_xy[:, 1] >= 0.0) and np.all(new_xy[:, 1] <= 10.0)

    def test_fraction_moves_subset(self, rng):
        walk = RandomWalk(sigma=1.0, fraction=0.3)
        xy = rng.uniform(0.0, 50.0, size=(200, 2))
        walk.reset(xy, rng)
        indices, _ = walk.move(xy, rng)
        assert 0 < len(indices) < 200

    def test_zero_sigma_never_moves(self, rng):
        walk = RandomWalk(sigma=0.0)
        xy = rng.uniform(0.0, 10.0, size=(5, 2))
        walk.reset(xy, rng)
        indices, new_xy = walk.move(xy, rng)
        assert len(indices) == 0 and len(new_xy) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWalk(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            RandomWalk(sigma=1.0, fraction=0.0)


class TestRandomWaypoint:
    def test_step_length_bounded_by_speed(self, rng):
        waypoint = RandomWaypoint(speed=1.5)
        xy = rng.uniform(0.0, 30.0, size=(25, 2))
        waypoint.reset(xy, rng)
        indices, new_xy = waypoint.move(xy, rng)
        steps = np.hypot(*(new_xy - xy[indices]).T)
        assert np.all(steps <= 1.5 + 1e-9)

    def test_travels_toward_waypoint_until_arrival(self, rng):
        bounds = Rectangle(0.0, 0.0, 4.0, 4.0)
        waypoint = RandomWaypoint(speed=10.0, bounds=bounds)
        xy = np.array([[1.0, 1.0]])
        waypoint.reset(xy, rng)
        target = waypoint._waypoints[0].copy()
        indices, new_xy = waypoint.move(xy, rng)
        # speed exceeds the region diameter, so the node lands on its target.
        assert np.allclose(new_xy[0], target)

    def test_pause_steps_rest_at_waypoint(self, rng):
        waypoint = RandomWaypoint(speed=100.0, bounds=Rectangle(0, 0, 5, 5), pause_steps=2)
        xy = np.array([[1.0, 1.0]])
        waypoint.reset(xy, rng)
        indices, new_xy = waypoint.move(xy, rng)  # arrives, schedules pause
        xy[indices] = new_xy
        for _ in range(2):  # pauses for exactly two steps
            indices, _ = waypoint.move(xy, rng)
            assert len(indices) == 0
        indices, _ = waypoint.move(xy, rng)
        assert len(indices) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed=0.0)
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed=1.0, pause_steps=-1)

    def test_begin_run_clears_state_for_a_fresh_deployment(self, rng):
        """One model instance may drive several runs without leaking geography."""
        walk = RandomWalk(sigma=0.5)
        first = rng.uniform(0.0, 10.0, size=(8, 2))
        walk.begin_run(first, rng)
        first_bounds = walk._bounds
        second = rng.uniform(1000.0, 1010.0, size=(8, 2))
        walk.begin_run(second, rng)
        assert walk._bounds != first_bounds
        indices, moved = walk.move(second, rng)
        assert np.all(moved[:, 0] >= 1000.0 - 10.0)  # stays near the new cloud

        waypoint = RandomWaypoint(speed=1.0)
        waypoint.begin_run(first, rng, np.arange(8))
        waypoint.begin_run(second, rng, np.arange(8))
        assert np.all(waypoint._waypoints[:, 0] >= 990.0)  # fresh targets, new region

    def test_reset_with_ids_carries_survivor_state_across_churn(self, rng):
        """Survivors keep their journeys when churn re-anchors the universe."""
        waypoint = RandomWaypoint(speed=0.5, bounds=Rectangle(0, 0, 100, 100))
        xy = rng.uniform(0.0, 100.0, size=(6, 2))
        ids = np.array([10, 11, 12, 13, 14, 15])
        waypoint.reset(xy, rng, ids)
        targets_before = waypoint._waypoints.copy()
        # Node 12 dies, node 99 arrives; indices shift.
        survivors = [0, 1, 3, 4, 5]
        new_ids = np.array([10, 11, 13, 14, 15, 99])
        new_xy = np.vstack([xy[survivors], [[50.0, 50.0]]])
        waypoint.reset(new_xy, rng, new_ids)
        for new_pos, old_pos in zip(range(5), survivors):
            assert np.array_equal(waypoint._waypoints[new_pos], targets_before[old_pos])


class TestStaticAndBounds:
    def test_static_mobility_never_moves(self, rng):
        static = StaticMobility()
        xy = rng.uniform(0.0, 10.0, size=(8, 2))
        static.reset(xy, rng)
        indices, new_xy = static.move(xy, rng)
        assert len(indices) == 0 and len(new_xy) == 0

    def test_bounding_rectangle_contains_points_with_margin(self, rng):
        xy = rng.uniform(-5.0, 15.0, size=(30, 2))
        bounds = bounding_rectangle(xy)
        assert bounds.x_min < xy[:, 0].min() and bounds.x_max > xy[:, 0].max()
        assert bounds.y_min < xy[:, 1].min() and bounds.y_max > xy[:, 1].max()

    def test_bounding_rectangle_of_empty(self):
        bounds = bounding_rectangle(np.empty((0, 2)))
        assert bounds.area() > 0
