"""Tests for repro.dynamics.gain and its threading through the SINR kernels."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.dynamics import (
    ComposedGain,
    DeterministicPathLoss,
    LogNormalShadowing,
    RayleighFading,
)
from repro.exceptions import ConfigurationError
from repro.geometry import uniform_random
from repro.links import Link, LinkSet
from repro.runtime import NodeAgent, Simulator, spawn_agent_rngs
from repro.sinr import (
    CachedChannel,
    Channel,
    LinkArrayCache,
    SINRParameters,
    Transmission,
    UniformPower,
    decode_arrays,
)
from repro.sinr.channel import decode_reference

from .conftest import make_node


class TestModelProperties:
    def test_same_seed_same_fades(self):
        ids = np.arange(12)
        a = RayleighFading(seed=5).fade(ids, ids, slot=3)
        b = RayleighFading(seed=5).fade(ids, ids, slot=3)
        assert np.array_equal(a, b)

    def test_different_seed_different_fades(self):
        ids = np.arange(12)
        a = RayleighFading(seed=5).fade(ids, ids, slot=3)
        b = RayleighFading(seed=6).fade(ids, ids, slot=3)
        assert not np.array_equal(a, b)

    def test_rayleigh_slot_dependence_and_blocks(self):
        ids = np.arange(8)
        model = RayleighFading(seed=1, block_slots=4)
        assert np.array_equal(model.fade(ids, ids, slot=0), model.fade(ids, ids, slot=3))
        assert not np.array_equal(model.fade(ids, ids, slot=3), model.fade(ids, ids, slot=4))
        # slot=None is the slot-0 block, so slotless contexts are well defined.
        assert np.array_equal(model.fade(ids, ids, slot=None), model.fade(ids, ids, slot=0))

    def test_shadowing_is_symmetric_and_static(self):
        ids = np.arange(10)
        model = LogNormalShadowing(sigma_db=6.0, seed=2)
        fade = model.fade(ids, ids)
        assert np.array_equal(fade, fade.T)
        assert np.array_equal(fade, model.fade(ids, ids, slot=99))

    def test_subset_consistency(self):
        """Fades are functions of node ids: subsets slice the full matrix."""
        ids = np.arange(20)
        for model in (RayleighFading(seed=3), LogNormalShadowing(sigma_db=4.0, seed=3)):
            full = model.fade(ids, ids, slot=7)
            rows, cols = np.array([2, 11, 19]), np.array([0, 5, 6, 18])
            assert np.array_equal(
                model.fade(ids[rows], ids[cols], slot=7), full[np.ix_(rows, cols)]
            )

    def test_fade_pairs_matches_fade_diagonal(self):
        model = RayleighFading(seed=9)
        tx, rx = np.array([3, 1, 4]), np.array([7, 8, 2])
        pairs = model.fade_pairs(tx, rx, slot=5)
        full = model.fade(tx, rx, slot=5)
        assert np.array_equal(pairs, np.diagonal(full))

    def test_statistics_are_plausible(self):
        ids = np.arange(500)
        exp = RayleighFading(seed=0).fade(ids, ids)
        assert exp.mean() == pytest.approx(1.0, abs=0.02)
        assert np.all(exp > 0)
        shadow_db = 10.0 * np.log10(LogNormalShadowing(10.0, 0).fade(ids, ids))
        assert shadow_db.mean() == pytest.approx(0.0, abs=0.1)
        assert shadow_db.std() == pytest.approx(10.0, abs=0.2)

    def test_composition_multiplies(self):
        ids = np.arange(6)
        a = LogNormalShadowing(sigma_db=4.0, seed=1)
        b = RayleighFading(seed=2)
        combined = ComposedGain((a, b)).fade(ids, ids, slot=3)
        assert np.array_equal(combined, a.fade(ids, ids, slot=3) * b.fade(ids, ids, slot=3))

    def test_composed_of_deterministic_is_deterministic(self):
        assert ComposedGain((DeterministicPathLoss(),)).deterministic
        assert not ComposedGain((DeterministicPathLoss(), RayleighFading())).deterministic
        with pytest.raises(ConfigurationError):
            ComposedGain(())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalShadowing(sigma_db=-1.0)
        with pytest.raises(ConfigurationError):
            RayleighFading(block_slots=0)

    def test_models_are_hashable_and_picklable(self):
        model = RayleighFading(seed=4)
        params = SINRParameters(gain_model=model)
        assert hash(params) == hash(SINRParameters(gain_model=RayleighFading(seed=4)))
        clone = pickle.loads(pickle.dumps(params))
        ids = np.arange(5)
        assert np.array_equal(
            clone.gain_model.fade(ids, ids, slot=1), model.fade(ids, ids, slot=1)
        )


class TestDeterministicParity:
    """gain_model=None and DeterministicPathLoss must be bit-for-bit equal."""

    def _links(self, rng, m=24):
        nodes = uniform_random(2 * m, rng)
        return LinkSet(Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(m))

    def test_decode_arrays_parity(self, params, rng):
        plain = params
        tagged = params.with_overrides(gain_model=DeterministicPathLoss())
        dist = rng.uniform(0.1, 30.0, size=(6, 14))
        powers = rng.uniform(0.5, 80.0, size=6)
        for a, b in zip(decode_arrays(dist, powers, plain), decode_arrays(dist, powers, tagged)):
            assert np.array_equal(a, b)

    def test_link_cache_matrices_parity(self, params, rng):
        links = self._links(rng)
        tagged = params.with_overrides(gain_model=DeterministicPathLoss())
        power = UniformPower(params.min_power_for(max(l.length for l in links)))
        plain_cache, tagged_cache = LinkArrayCache(links), LinkArrayCache(links)
        assert np.array_equal(
            plain_cache.affectance_matrix(power, params),
            tagged_cache.affectance_matrix(power, tagged),
        )
        assert np.array_equal(
            plain_cache.sinr_values(power, params),
            tagged_cache.sinr_values(power, tagged),
        )
        assert np.array_equal(
            plain_cache.gain_matrix(params), tagged_cache.gain_matrix(tagged)
        )
        idx = np.array([1, 5, 9, 17])
        assert np.array_equal(
            plain_cache.sinr_values(power, params, idx),
            tagged_cache.sinr_values(power, tagged, idx),
        )
        rows, cols = np.array([0, 3, 7]), np.array([2, 4, 11, 20])
        assert np.array_equal(
            plain_cache.affectance_block(rows, cols, power, params),
            tagged_cache.affectance_block(rows, cols, power, tagged),
        )

    def test_channel_resolve_parity(self, params, rng):
        nodes = uniform_random(20, rng)
        tagged = params.with_overrides(gain_model=DeterministicPathLoss())
        power = params.min_power_for(3.0)
        transmissions = [Transmission(nodes[i], power, ("m", i)) for i in (0, 4, 9)]
        a = Channel(params).resolve(transmissions, nodes)
        b = Channel(tagged).resolve(transmissions, nodes, slot=17)
        assert set(a) == set(b)
        for node_id in a:
            assert a[node_id].sinr == b[node_id].sinr
            assert a[node_id].sender.id == b[node_id].sender.id

    def test_zero_sigma_shadowing_is_unit_fade(self, params, rng):
        """sigma_db=0 exercises the stochastic path with exact unit fades."""
        model = LogNormalShadowing(sigma_db=0.0, seed=7)
        ids = np.arange(9)
        assert np.array_equal(model.fade(ids, ids), np.ones((9, 9)))
        dist = rng.uniform(0.5, 10.0, size=(3, 9))
        powers = rng.uniform(1.0, 10.0, size=3)
        plain = decode_arrays(dist, powers, params)
        faded = decode_arrays(dist, powers, params, fade=model.fade(np.arange(3), ids))
        for a, b in zip(plain, faded):
            assert np.array_equal(a, b)

    def test_experiment_row_parity(self):
        """A full experiment produces identical rows under the tagged model."""
        from repro.experiments import ExperimentConfig, e1_init

        base = ExperimentConfig.quick().with_overrides(sizes=(24,))
        tagged = base.with_overrides(
            params=base.params.with_overrides(gain_model=DeterministicPathLoss())
        )
        assert e1_init.run(base).rows == e1_init.run(tagged).rows


class _Beacon(NodeAgent):
    """Deterministic beacon agent used for fading-channel engine parity."""

    def __init__(self, node, rng, power):
        super().__init__(node, rng)
        self.power = power
        self.heard: list[tuple[int, int]] = []

    def act_batch(self, slot):
        if slot % 5 == self.node_id % 5:
            return self.power, ("b", self.node_id)
        return None

    def act(self, slot):
        action = self.act_batch(slot)
        if action is None:
            return None
        return Transmission(self.node, action[0], action[1])

    def observe(self, slot, reception):
        if reception is not None:
            self.heard.append((slot, reception.sender.id))


class TestFadingChannel:
    def _run(self, params, engine, slots=60, n=24):
        nodes = uniform_random(n, np.random.default_rng(42))
        rngs = spawn_agent_rngs(np.random.default_rng(43), n)
        power = params.min_power_for(2.0)
        agents = [_Beacon(node, rng, power) for node, rng in zip(nodes, rngs)]
        simulator = Simulator(agents, Channel(params), engine=engine)
        simulator.run(slots)
        return [agent.heard for agent in agents], simulator.trace

    @pytest.mark.parametrize(
        "model",
        [RayleighFading(seed=3), LogNormalShadowing(sigma_db=6.0, seed=3)],
        ids=["rayleigh", "shadowing"],
    )
    def test_batch_and_legacy_engines_agree_under_fading(self, params, model):
        faded = params.with_overrides(gain_model=model)
        batch, _ = self._run(faded, "batch")
        legacy, _ = self._run(faded, "legacy")
        assert batch == legacy

    def test_same_seed_reproduces_trace(self, params):
        faded = params.with_overrides(gain_model=RayleighFading(seed=11))
        a, trace_a = self._run(faded, "batch")
        b, trace_b = self._run(faded, "batch")
        assert a == b
        assert trace_a.successful_receptions == trace_b.successful_receptions

    def test_fading_changes_outcomes(self, params):
        plain, _ = self._run(params, "batch")
        faded, _ = self._run(
            params.with_overrides(gain_model=RayleighFading(seed=11)), "batch"
        )
        assert plain != faded

    def test_cached_shadowing_fade_matches_direct_evaluation(self, params):
        """Slot-invariant fades come from the NodeArrayCache cache, bitwise."""
        nodes = uniform_random(14, np.random.default_rng(3))
        model = LogNormalShadowing(sigma_db=5.0, seed=13)
        channel = CachedChannel(params.with_overrides(gain_model=model), nodes)
        cache = channel.cache
        full = cache.fade_matrix(model)
        assert full is cache.fade_matrix(model)  # computed once
        assert np.array_equal(full, model.fade(cache.ids, cache.ids))
        tx = np.array([1, 6], dtype=np.intp)
        rx = np.array([0, 3, 9], dtype=np.intp)
        powers = np.full(2, params.min_power_for(2.0))
        via_cache = channel.resolve_indices(tx, rx, powers, slot=5)
        direct = decode_arrays(
            cache.distance_matrix()[np.ix_(tx, rx)],
            powers,
            params,
            fade=model.fade(cache.ids[tx], cache.ids[rx], 5),
        )
        for a, b in zip(via_cache, direct):
            assert np.array_equal(a, b)

    def test_resolve_indices_full_matches_subset_under_fading(self, params):
        nodes = uniform_random(16, np.random.default_rng(1))
        faded = params.with_overrides(gain_model=RayleighFading(seed=5))
        channel = CachedChannel(faded, nodes)
        tx = np.array([0, 3, 8], dtype=np.intp)
        powers = np.full(3, params.min_power_for(2.0))
        rx = np.array([i for i in range(16) if i not in {0, 3, 8}], dtype=np.intp)
        best_f, sinr_f, ok_f = channel.resolve_indices_full(tx, powers, slot=9)
        best_s, sinr_s, ok_s = channel.resolve_indices(tx, rx, powers, slot=9)
        assert np.array_equal(best_f[rx], best_s)
        assert np.array_equal(sinr_f[rx], sinr_s)
        assert np.array_equal(ok_f[rx], ok_s)

    def test_decode_reference_agrees_with_decode_arrays_under_fade(self, params, rng):
        nodes = [make_node(i, float(i), 0.5 * i) for i in range(10)]
        transmissions = [
            Transmission(nodes[i], float(p), ("x", i))
            for i, p in zip((0, 2, 5), rng.uniform(5.0, 50.0, 3))
        ]
        listeners = [n for n in nodes if n.id not in (0, 2, 5)]
        tx_xy = np.array([[t.sender.x, t.sender.y] for t in transmissions])
        rx_xy = np.array([[n.x, n.y] for n in listeners])
        diff = tx_xy[:, None, :] - rx_xy[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        powers = np.array([t.power for t in transmissions])
        fade = RayleighFading(seed=2).fade(
            np.array([t.sender.id for t in transmissions]),
            np.array([n.id for n in listeners]),
            slot=4,
        )
        best, sinr, ok = decode_arrays(dist, powers, params, fade=fade)
        reference = decode_reference(transmissions, listeners, dist, powers, params, fade)
        for j, listener in enumerate(listeners):
            if ok[j]:
                assert listener.id in reference
                assert reference[listener.id].sinr == float(sinr[j])
            else:
                assert listener.id not in reference


class TestFadedLinkMatrices:
    def test_sinr_values_match_manual_computation(self, params):
        nodes = [make_node(i, 3.0 * i, 0.0) for i in range(6)]
        links = [Link(nodes[0], nodes[1]), Link(nodes[2], nodes[3]), Link(nodes[4], nodes[5])]
        cache = LinkArrayCache(links)
        model = LogNormalShadowing(sigma_db=5.0, seed=8)
        faded = params.with_overrides(gain_model=model)
        power = UniformPower(500.0)
        got = cache.sinr_values(power, faded)

        sender_ids = np.array([l.sender.id for l in links])
        receiver_ids = np.array([l.receiver.id for l in links])
        cross = model.fade(sender_ids, receiver_ids)
        signal_fade = model.fade_pairs(sender_ids, receiver_ids)
        expected = np.empty(3)
        for j, link in enumerate(links):
            signal = 500.0 * signal_fade[j] / link.length**params.alpha
            interference = sum(
                500.0
                * cross[i, j]
                / links[i].sender.distance_to(link.receiver) ** params.alpha
                for i in range(3)
                if i != j
            )
            expected[j] = signal / (params.noise + interference)
        assert np.allclose(got, expected, rtol=1e-12)

    def test_faded_affectance_subset_slicing_consistent(self, params, rng):
        nodes = uniform_random(40, rng)
        links = [Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(20)]
        faded = params.with_overrides(gain_model=RayleighFading(seed=6))
        power = UniformPower(params.min_power_for(max(l.length for l in links)))
        cache = LinkArrayCache(links)
        full = cache.affectance_matrix(power, faded)
        idx = np.array([1, 4, 9, 15])
        assert np.array_equal(
            cache.affectance_matrix(power, faded, idx), full[np.ix_(idx, idx)]
        )
        assert np.array_equal(
            cache.affectance_block(idx, idx, power, faded), full[np.ix_(idx, idx)]
        )

    def test_scalar_affectance_consistent_with_matrix_under_fading(self, params, rng):
        """The scalar helpers and the matrix kernel share one faded model."""
        from repro.sinr import affectance_between_links, link_cost

        nodes = uniform_random(12, rng)
        links = [Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(6)]
        faded = params.with_overrides(gain_model=LogNormalShadowing(sigma_db=7.0, seed=4))
        power = UniformPower(params.min_power_for(max(l.length for l in links)))
        matrix = LinkArrayCache(links).affectance_matrix(power, faded)
        for i in range(len(links)):
            for j in range(len(links)):
                if i == j:
                    continue
                scalar = affectance_between_links(links[i], links[j], power, faded)
                assert scalar == pytest.approx(matrix[i, j], rel=1e-12)
        plain_cost = link_cost(links[0], power.power(links[0]), params)
        faded_cost = link_cost(links[0], power.power(links[0]), faded)
        assert faded_cost != plain_cost  # the fade reaches the scalar cost too

    def test_faded_and_plain_matrices_differ(self, params, rng):
        nodes = uniform_random(20, rng)
        links = [Link(nodes[2 * i], nodes[2 * i + 1]) for i in range(10)]
        faded = params.with_overrides(gain_model=RayleighFading(seed=6))
        power = UniformPower(params.min_power_for(max(l.length for l in links)))
        cache = LinkArrayCache(links)
        assert not np.array_equal(
            cache.affectance_matrix(power, params),
            cache.affectance_matrix(power, faded),
        )
        assert not np.array_equal(
            cache.gain_matrix(params), cache.gain_matrix(faded)
        )
