"""Tests for repro.geometry.point."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry import (
    Point,
    distance,
    distance_matrix,
    distance_ratio,
    max_pairwise_distance,
    min_pairwise_distance,
    points_to_array,
)


class TestPoint:
    def test_distance_to_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.0, 2.0), Point(-3.0, 7.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated(self):
        assert Point(1.0, 1.0).translated(2.0, -1.0) == Point(3.0, 0.0)

    def test_scaled(self):
        assert Point(1.0, -2.0).scaled(3.0) == Point(3.0, -6.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_points_are_hashable_and_frozen(self):
        point = Point(1.0, 2.0)
        assert {point: "x"}[Point(1.0, 2.0)] == "x"
        with pytest.raises(AttributeError):
            point.x = 3.0  # type: ignore[misc]

    def test_module_level_distance(self):
        assert distance(Point(0, 0), Point(0, 2)) == pytest.approx(2.0)


class TestDistanceMatrix:
    def test_matches_pairwise_distances(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 2)]
        matrix = distance_matrix(points)
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[0, 2] == pytest.approx(2.0)
        assert matrix[1, 2] == pytest.approx(math.sqrt(5))

    def test_diagonal_is_zero(self):
        points = [Point(3, 4), Point(-1, 2)]
        matrix = distance_matrix(points)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_symmetry(self):
        points = [Point(0, 0), Point(2, 5), Point(-3, 1)]
        matrix = distance_matrix(points)
        assert np.allclose(matrix, matrix.T)

    def test_empty_input(self):
        assert distance_matrix([]).shape == (0, 0)

    def test_points_to_array_shape(self):
        arr = points_to_array([Point(1, 2), Point(3, 4)])
        assert arr.shape == (2, 2)
        assert arr[1, 0] == pytest.approx(3.0)


class TestExtremes:
    def test_min_pairwise_distance(self):
        points = [Point(0, 0), Point(5, 0), Point(0, 1)]
        assert min_pairwise_distance(points) == pytest.approx(1.0)

    def test_max_pairwise_distance(self):
        points = [Point(0, 0), Point(5, 0), Point(0, 1)]
        assert max_pairwise_distance(points) == pytest.approx(math.sqrt(26))

    def test_distance_ratio(self):
        points = [Point(0, 0), Point(1, 0), Point(9, 0)]
        assert distance_ratio(points) == pytest.approx(9.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            min_pairwise_distance([Point(0, 0)])
        with pytest.raises(ValueError):
            max_pairwise_distance([Point(0, 0)])

    def test_distance_ratio_rejects_duplicates(self):
        with pytest.raises(ValueError):
            distance_ratio([Point(0, 0), Point(0, 0), Point(1, 1)])
