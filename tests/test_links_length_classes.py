"""Tests for repro.links.length_classes."""

from __future__ import annotations

import pytest

from repro.links import Link, length_class_index, num_length_classes, partition_by_length_class

from .conftest import make_node


class TestLengthClassIndex:
    def test_class_zero_covers_unit_lengths(self):
        assert length_class_index(1.0) == 0
        assert length_class_index(1.9) == 0

    def test_doubling_boundaries(self):
        assert length_class_index(2.0) == 1
        assert length_class_index(3.99) == 1
        assert length_class_index(4.0) == 2

    def test_custom_min_length(self):
        assert length_class_index(10.0, min_length=5.0) == 1
        assert length_class_index(5.0, min_length=5.0) == 0

    def test_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            length_class_index(0.5, min_length=1.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            length_class_index(0.0)
        with pytest.raises(ValueError):
            length_class_index(1.0, min_length=0.0)


class TestPartition:
    def test_partition_groups_by_factor_two(self):
        nodes = [make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 3, 0), make_node(3, 9, 0)]
        links = [Link(nodes[0], nodes[1]), Link(nodes[0], nodes[2]), Link(nodes[0], nodes[3])]
        classes = partition_by_length_class(links)
        assert sorted(classes) == [0, 1, 3]
        assert len(classes[0]) == 1

    def test_lengths_within_class_differ_by_at_most_two(self):
        nodes = [make_node(i, 1.3**i, 0.0) for i in range(12)]
        links = [Link(nodes[0], nodes[i]) for i in range(1, 12)]
        for class_links in partition_by_length_class(links, min_length=0.25).values():
            lengths = class_links.lengths()
            assert max(lengths) / min(lengths) <= 2.0 + 1e-9


class TestNumClasses:
    def test_small_delta(self):
        assert num_length_classes(1.0) == 1
        assert num_length_classes(2.0) == 2

    def test_large_delta(self):
        assert num_length_classes(1024.0) == 11

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            num_length_classes(0.5)
