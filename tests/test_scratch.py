"""Scratch-arena parity: workspace decode == allocating decode, bit for bit.

The :class:`~repro.state.DecodeWorkspace` paths must be *indistinguishable*
from the allocating paths they replace: same elementwise operations, reused
destinations.  These tests pin that across random shapes, consecutive
decodes reusing one arena (the no-aliasing property), capacity growth of
the workspace, all three gain models, and the trial-stacked kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import ComposedGain, DeterministicPathLoss, LogNormalShadowing, RayleighFading
from repro.geometry import deployment_by_name
from repro.links import Link
from repro.sinr import (
    CachedChannel,
    LinearPower,
    LinkArrayCache,
    SINRParameters,
    decode_arrays,
    decode_many,
)
from repro.state import DecodeWorkspace

GAIN_MODELS = (
    None,
    LogNormalShadowing(sigma_db=6.0, seed=11),
    RayleighFading(seed=7),
)


def _model_name(model) -> str:
    return "deterministic" if model is None else type(model).__name__


def assert_same(left, right) -> None:
    fb, fs, fo = left
    bb, bs, bo = right
    assert np.array_equal(fb, bb)
    assert np.array_equal(fs, bs, equal_nan=True)
    assert np.array_equal(fo, bo)


def _copy(result):
    return tuple(np.array(part, copy=True) for part in result)


class TestDecodeWorkspace:
    def test_same_key_reuses_memory(self):
        ws = DecodeWorkspace()
        first = ws.floats("k", 4, 8)
        second = ws.floats("k", 4, 8)
        assert first.base is second.base
        assert ws.allocations == 1

    def test_growth_and_shrink_reuse(self):
        ws = DecodeWorkspace()
        small = ws.floats("k", 8)
        assert small.shape == (8,)
        big = ws.floats("k", 16, 4)
        assert big.shape == (16, 4)
        assert ws.allocations == 2
        # Shrinking back reuses the grown pool: no further allocation.
        again = ws.floats("k", 8)
        assert again.shape == (8,)
        assert ws.allocations == 2

    def test_dtypes_and_contiguity(self):
        ws = DecodeWorkspace()
        assert ws.floats("f", 3, 3).dtype == np.float64
        assert ws.ints("i", 5).dtype == np.intp
        assert ws.bools("b", 2, 2).dtype == np.bool_
        for array in (ws.floats("f", 3, 3), ws.ints("i", 5), ws.bools("b", 2, 2)):
            assert array.flags.c_contiguous
        assert ws.nbytes > 0


class TestDecodeArraysParity:
    @pytest.mark.parametrize("model", GAIN_MODELS, ids=_model_name)
    def test_random_shapes_one_arena(self, model):
        """One workspace across many differently-shaped decodes == allocating.

        Reusing a single arena for every iteration is the property under
        test: consecutive decodes must never alias each other's results,
        including across capacity growth of the pools (shapes vary, so the
        pools grow mid-sequence).
        """
        params = SINRParameters(gain_model=model)
        rng = np.random.default_rng(3)
        ws = DecodeWorkspace()
        for trial in range(25):
            ntx = int(rng.integers(1, 12))
            nrx = int(rng.integers(1, 48))
            dist = rng.random((ntx, nrx)) * 10.0
            if trial % 4 == 0:
                dist.flat[int(rng.integers(dist.size))] = 0.0  # colocated pair
            powers = rng.random(ntx) + 0.1
            fade = None
            if model is not None:
                fade = model.fade(
                    np.arange(ntx, dtype=np.int64),
                    np.arange(nrx, dtype=np.int64),
                    trial,
                )
            expected = decode_arrays(dist, powers, params, fade=fade)
            got = decode_arrays(dist, powers, params, fade=fade, workspace=ws)
            assert_same(got, expected)

    def test_consecutive_decodes_do_not_corrupt_each_other(self):
        """Snapshot of decode A survives decode B through the same arena."""
        params = SINRParameters()
        rng = np.random.default_rng(9)
        ws = DecodeWorkspace()
        dist_a = rng.random((6, 20)) + 0.5
        dist_b = rng.random((6, 20)) + 0.5
        powers = rng.random(6) + 0.5
        snap_a = _copy(decode_arrays(dist_a, powers, params, workspace=ws))
        live_a = decode_arrays(dist_a, powers, params, workspace=ws)
        decode_arrays(dist_b, powers, params, workspace=ws)
        # The live views were overwritten by decode B (that is the arena
        # contract)...
        assert_same(_copy(live_a), decode_arrays(dist_b, powers, params))
        # ...but the snapshot equals the allocating result of decode A.
        assert_same(snap_a, decode_arrays(dist_a, powers, params))


class TestChannelWorkspaceParity:
    @pytest.fixture(scope="class")
    def universe(self):
        nodes = deployment_by_name("uniform", 40, np.random.default_rng(12))
        return nodes

    @pytest.mark.parametrize("model", GAIN_MODELS, ids=_model_name)
    def test_resolve_indices_paths(self, universe, model):
        params = SINRParameters(gain_model=model)
        channel = CachedChannel(params, universe)
        rng = np.random.default_rng(5)
        ws = DecodeWorkspace()
        n = len(universe)
        for slot in range(12):
            ntx = int(rng.integers(1, 8))
            tx = np.sort(rng.choice(n, size=ntx, replace=False)).astype(np.intp)
            powers = rng.random(ntx) + 0.2
            expected = channel.resolve_indices_full(tx, powers, slot=slot)
            got = channel.resolve_indices_full(tx, powers, slot=slot, workspace=ws)
            assert_same(got, expected)
            rx = np.setdiff1d(np.arange(n, dtype=np.intp), tx)
            rx = rx[rng.random(rx.size) < 0.7]
            if rx.size == 0:
                continue
            expected = channel.resolve_indices(tx, rx, powers, slot=slot)
            got = channel.resolve_indices(tx, rx, powers, slot=slot, workspace=ws)
            assert_same(got, expected)

    def test_simulator_batch_engine_unchanged(self, universe):
        """The workspace-backed batch engine equals the legacy seed engine."""
        from repro.runtime import NodeAgent, Simulator, spawn_agent_rngs
        from repro.sinr import Channel, Transmission

        params = SINRParameters()

        class Beacon(NodeAgent):
            def __init__(self, node, rng, power):
                super().__init__(node, rng)
                self.power = power
                self.heard = 0

            def act_batch(self, slot):
                if slot % 5 == self.node.id % 5:
                    return self.power, ("b", self.node.id)
                return None

            def act(self, slot):
                action = self.act_batch(slot)
                if action is None:
                    return None
                return Transmission(self.node, action[0], action[1])

            def observe(self, slot, reception):
                if reception is not None:
                    self.heard += 1

        power = params.min_power_for(1.5)

        def run(engine):
            rngs = spawn_agent_rngs(np.random.default_rng(2), len(universe))
            agents = [Beacon(node, rng, power) for node, rng in zip(universe, rngs)]
            simulator = Simulator(agents, Channel(params), engine=engine)
            simulator.run(60)
            return [agent.heard for agent in agents], simulator.trace

        batch_heard, batch_trace = run("batch")
        legacy_heard, legacy_trace = run("legacy")
        assert batch_heard == legacy_heard
        assert batch_trace.successful_receptions == legacy_trace.successful_receptions


class TestStackedDecodeParity:
    @pytest.mark.parametrize("model", GAIN_MODELS, ids=_model_name)
    def test_decode_many_equals_looped_decode_arrays(self, model):
        params = SINRParameters(gain_model=model)
        rng = np.random.default_rng(21)
        ws = DecodeWorkspace()
        for _ in range(6):
            trials = int(rng.integers(1, 6))
            ntx = int(rng.integers(1, 9))
            nrx = int(rng.integers(1, 30))
            dist = rng.random((ntx, nrx)) * 5.0
            powers = rng.random((trials, ntx)) + 0.1
            tx_ids = np.arange(ntx, dtype=np.int64)
            rx_ids = np.arange(nrx, dtype=np.int64)
            slots = np.arange(trials, dtype=np.int64)
            fade = None if model is None else model.fade_stack(tx_ids, rx_ids, slots)
            best, sinr, ok = decode_many(dist, powers, params, fade=fade, workspace=ws)
            assert best.shape == sinr.shape == ok.shape == (trials, nrx)
            for t in range(trials):
                trial_fade = None if model is None else model.fade(tx_ids, rx_ids, int(slots[t]))
                expected = decode_arrays(dist, powers[t], params, fade=trial_fade)
                assert_same((best[t], sinr[t], ok[t]), expected)

    def test_decode_many_requires_a_stack(self):
        params = SINRParameters()
        with pytest.raises(ValueError, match="trial dimension"):
            decode_many(np.ones((2, 3)), np.ones(2), params)

    @pytest.mark.parametrize(
        "model",
        (
            None,
            DeterministicPathLoss(),
            LogNormalShadowing(sigma_db=4.0, seed=3),
            RayleighFading(seed=5),
            ComposedGain((LogNormalShadowing(sigma_db=2.0, seed=1), RayleighFading(seed=2))),
        ),
        ids=lambda m: "none" if m is None else type(m).__name__,
    )
    def test_resolve_indices_many_equals_per_slot(self, model):
        params = SINRParameters(gain_model=model)
        nodes = deployment_by_name("uniform", 30, np.random.default_rng(8))
        channel = CachedChannel(params, nodes)
        rng = np.random.default_rng(17)
        tx = np.sort(rng.choice(30, size=6, replace=False)).astype(np.intp)
        trials = 5
        powers = rng.random((trials, 6)) + 0.3
        slots = np.arange(100, 100 + trials, dtype=np.int64)
        ws = DecodeWorkspace()
        best, sinr, ok = channel.resolve_indices_many(tx, powers, slots=slots, workspace=ws)
        for t in range(trials):
            expected = channel.resolve_indices_full(tx, powers[t], slot=int(slots[t]))
            assert_same((best[t], sinr[t], ok[t]), expected)

    def test_fade_stack_matches_per_slot_fades(self):
        tx = np.array([3, 9, 27], dtype=np.int64)
        rx = np.array([1, 2, 5, 8], dtype=np.int64)
        slots = np.array([0, 4, 9], dtype=np.int64)
        for model in (
            RayleighFading(seed=13, block_slots=3),
            ComposedGain((LogNormalShadowing(sigma_db=3.0, seed=4), RayleighFading(seed=6))),
        ):
            stack = model.fade_stack(tx, rx, slots)
            assert stack.shape == (3, 3, 4)
            for t, slot in enumerate(slots.tolist()):
                assert np.array_equal(stack[t], model.fade(tx, rx, slot))
        shadowing = LogNormalShadowing(sigma_db=5.0, seed=2)
        assert np.array_equal(shadowing.fade_stack(tx, rx, slots), shadowing.fade(tx, rx, None))
        assert DeterministicPathLoss().fade_stack(tx, rx, slots) is None


class TestAffectanceWorkspaceParity:
    def _links(self, n_nodes: int, seed: int) -> list[Link]:
        nodes = deployment_by_name("uniform", n_nodes, np.random.default_rng(seed))
        return [Link(nodes[i], nodes[(i + 1) % n_nodes]) for i in range(n_nodes)]

    @pytest.mark.parametrize("noise", [0.0, None], ids=["zero-noise", "default-noise"])
    def test_affectance_block(self, noise):
        params = SINRParameters() if noise is None else SINRParameters(noise=0.0)
        links = self._links(14, seed=31)
        power = LinearPower.for_noise(params)
        ws = DecodeWorkspace()
        rng = np.random.default_rng(2)
        for _ in range(6):
            cache = LinkArrayCache(links)
            rows = np.sort(rng.choice(len(links), size=5, replace=False)).astype(np.intp)
            cols = np.sort(rng.choice(len(links), size=7, replace=False)).astype(np.intp)
            expected = cache.affectance_block(rows, cols, power, params)
            got = cache.affectance_block(rows, cols, power, params, workspace=ws)
            assert np.array_equal(got, expected)

    def test_affectance_block_with_fading_falls_back(self):
        params = SINRParameters(gain_model=LogNormalShadowing(sigma_db=3.0, seed=9))
        links = self._links(10, seed=5)
        cache = LinkArrayCache(links)
        power = LinearPower.for_noise(params)
        rows = np.arange(4, dtype=np.intp)
        cols = np.arange(4, 10, dtype=np.intp)
        expected = cache.affectance_block(rows, cols, power, params)
        got = cache.affectance_block(rows, cols, power, params, workspace=DecodeWorkspace())
        assert np.array_equal(got, expected)
