"""Tests for repro.core.init_tree (the ``Init`` protocol, Theorem 2/7)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import InitialTreeBuilder, round_power
from repro.exceptions import ProtocolError
from repro.geometry import grid, linear_chain, uniform_random
from repro.links import length_class_index
from repro.sinr import SINRParameters

from .conftest import make_node


class TestRoundPower:
    def test_round_power_covers_round_reach(self, params):
        # Power of round r must keep c(u, v) <= 2 beta for links up to 2**r.
        from repro.links import Link
        from repro.sinr import link_cost

        for round_index in (1, 3, 6):
            reach = 2.0**round_index
            link = Link(make_node(0, 0, 0), make_node(1, reach * 0.99, 0))
            cost = link_cost(link, round_power(round_index, params), params)
            assert cost <= 2 * params.beta + 1e-9

    def test_round_power_monotone(self, params):
        assert round_power(2, params) < round_power(3, params)

    def test_round_index_validated(self, params):
        with pytest.raises(ValueError):
            round_power(0, params)

    def test_zero_noise_power_positive(self):
        params = SINRParameters(noise=0.0)
        assert round_power(1, params) > 0


class TestInitSmall:
    def test_single_node(self, params, constants, rng):
        result = InitialTreeBuilder(params, constants).build([make_node(0, 0, 0)], rng)
        assert result.tree.size == 1
        assert result.slots_used == 0
        assert result.tree.root_id == 0

    def test_two_nodes_form_one_link(self, params, constants, rng):
        nodes = [make_node(0, 0, 0), make_node(1, 1.5, 0)]
        result = InitialTreeBuilder(params, constants).build(nodes, rng)
        assert result.tree.size == 2
        assert len(result.tree.aggregation_links()) == 1
        assert result.tree.is_strongly_connected()

    def test_empty_input_rejected(self, params, constants, rng):
        with pytest.raises(ProtocolError):
            InitialTreeBuilder(params, constants).build([], rng)

    def test_invalid_max_sweeps(self, params, constants):
        with pytest.raises(ValueError):
            InitialTreeBuilder(params, constants, max_sweeps=0)


class TestInitStructure:
    @pytest.fixture(scope="class")
    def outcome(self):
        params = SINRParameters()
        rng = np.random.default_rng(42)
        nodes = uniform_random(48, rng)
        return nodes, InitialTreeBuilder(params).build(nodes, rng), params

    def test_spanning_tree(self, outcome):
        nodes, result, _ = outcome
        result.tree.validate()
        assert set(result.tree.nodes) == {node.id for node in nodes}

    def test_strongly_connected(self, outcome):
        _, result, _ = outcome
        assert result.tree.is_strongly_connected()

    def test_aggregation_order_respected(self, outcome):
        _, result, _ = outcome
        result.tree.validate_aggregation_order()

    def test_schedule_feasible_under_recorded_powers(self, outcome):
        _, result, params = outcome
        assert result.tree.aggregation_schedule.is_feasible(result.power, params)

    def test_link_lengths_match_recorded_rounds(self, outcome):
        _, result, _ = outcome
        for (sender, receiver), round_index in result.link_rounds.items():
            link = next(
                l for l in result.tree.aggregation_links() if l.endpoint_ids == (sender, receiver)
            )
            assert length_class_index(max(link.length, 1.0)) + 1 == pytest.approx(round_index)

    def test_slots_accounted(self, outcome):
        _, result, _ = outcome
        assert result.slots_used == result.trace.slots_used
        assert result.slots_used > 0

    def test_degree_bound_is_modest(self, outcome):
        _, result, _ = outcome
        n = result.tree.size
        assert result.tree.max_degree() <= 4 * math.log2(n) + 4

    def test_stored_degrees_cover_all_nodes(self, outcome):
        nodes, result, _ = outcome
        assert set(result.stored_degrees) == {node.id for node in nodes}


class TestInitDeployments:
    def test_grid_deployment(self, params, rng):
        nodes = grid(36, spacing=2.0)
        result = InitialTreeBuilder(params).build(nodes, rng)
        assert result.tree.is_strongly_connected()

    def test_linear_chain_deployment(self, params, rng):
        nodes = linear_chain(20, spacing=1.0)
        result = InitialTreeBuilder(params).build(nodes, rng)
        assert result.tree.is_strongly_connected()

    def test_rounds_scale_with_log_delta(self, params, rng):
        small = InitialTreeBuilder(params).build(linear_chain(8), rng)
        large = InitialTreeBuilder(params).build(linear_chain(64), rng)
        assert large.rounds_used > small.rounds_used

    def test_determinism_with_same_seed(self, params):
        nodes = grid(16, spacing=2.0)
        first = InitialTreeBuilder(params).build(nodes, np.random.default_rng(5))
        second = InitialTreeBuilder(params).build(nodes, np.random.default_rng(5))
        assert first.tree.parent == second.tree.parent
        assert first.slots_used == second.slots_used
