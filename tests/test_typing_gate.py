"""The strict-typing gate on ``repro.state`` / ``repro.sinr``.

The mypy run itself only happens where mypy is installed (the CI lint job);
locally the structural half still has teeth: the PEP 561 marker must ship,
the alias module must resolve, and — mirroring ``disallow_untyped_defs`` —
every function in the gated packages must be fully annotated.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GATED_PACKAGES = ("src/repro/state", "src/repro/sinr")


def test_py_typed_marker_ships():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


def test_typed_aliases_resolve():
    from repro._types import (  # noqa: F401
        BoolArray,
        DecodeTriple,
        FloatArray,
        IdArray,
        IntpArray,
    )

    import numpy as np

    assert FloatArray is not None
    # The aliases stay usable at runtime (isinstance-able origins).
    assert np.zeros(3).dtype == np.float64


def test_gated_packages_are_fully_annotated():
    """Structural mirror of mypy's ``disallow_untyped_defs`` for the gate."""
    gaps = []
    for package in GATED_PACKAGES:
        for path in sorted((REPO_ROOT / package).rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.returns is None:
                    gaps.append(f"{path}:{node.lineno} {node.name} (return)")
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.annotation is None and arg.arg not in ("self", "cls"):
                        gaps.append(f"{path}:{node.lineno} {node.name} ({arg.arg})")
                for vararg in (args.vararg, args.kwarg):
                    if vararg is not None and vararg.annotation is None:
                        gaps.append(f"{path}:{node.lineno} {node.name} (*{vararg.arg})")
    assert gaps == [], "unannotated defs in gated packages:\n" + "\n".join(gaps)


def test_mypy_gate_passes():
    """The committed config must come up clean (runs only where mypy exists)."""
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
