"""Tests for repro.links.link."""

from __future__ import annotations

import pytest

from repro.links import Link

from .conftest import make_node


class TestLink:
    def test_length(self):
        link = Link(make_node(0, 0, 0), make_node(1, 3, 4))
        assert link.length == pytest.approx(5.0)

    def test_dual_swaps_endpoints(self):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        dual = link.dual
        assert dual.sender.id == 1
        assert dual.receiver.id == 0
        assert dual.length == pytest.approx(link.length)

    def test_dual_of_dual_is_original(self):
        link = Link(make_node(0, 0, 0), make_node(1, 2, 2))
        assert link.dual.dual == link

    def test_self_loop_rejected(self):
        node = make_node(0, 0, 0)
        with pytest.raises(ValueError):
            Link(node, node)

    def test_endpoint_ids(self):
        link = Link(make_node(4, 0, 0), make_node(9, 1, 1))
        assert link.endpoint_ids == (4, 9)

    def test_shares_node_with(self):
        a, b, c, d = (make_node(i, float(i), 0.0) for i in range(4))
        assert Link(a, b).shares_node_with(Link(b, c))
        assert not Link(a, b).shares_node_with(Link(c, d))

    def test_is_dual_of(self):
        a, b = make_node(0, 0, 0), make_node(1, 1, 0)
        assert Link(a, b).is_dual_of(Link(b, a))
        assert not Link(a, b).is_dual_of(Link(a, b))

    def test_links_hashable_and_comparable(self):
        a, b = make_node(0, 0, 0), make_node(1, 1, 0)
        link = Link(a, b)
        assert link in {Link(a, b)}
        assert Link(a, b) == Link(a, b)
