"""Tests for repro.analysis.validation and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    format_markdown_table,
    format_table,
    format_value,
    validate_bitree,
    validate_connectivity_solution,
)
from repro.core import InitialTreeBuilder, Schedule, BiTree
from repro.exceptions import ScheduleError
from repro.geometry import uniform_random
from repro.sinr import SINRParameters, UniformPower

from .conftest import make_node


@pytest.fixture(scope="module")
def valid_solution():
    params = SINRParameters()
    rng = np.random.default_rng(17)
    nodes = uniform_random(30, rng)
    outcome = InitialTreeBuilder(params).build(nodes, rng)
    return params, nodes, outcome


class TestValidateBitree:
    def test_valid_solution_passes(self, valid_solution):
        params, nodes, outcome = valid_solution
        report = validate_bitree(outcome.tree, nodes, outcome.power, params)
        assert report.ok
        assert report.issues == ()

    def test_underpowered_schedule_flagged(self, valid_solution):
        params, nodes, outcome = valid_solution
        report = validate_bitree(outcome.tree, nodes, UniformPower(1e-9), params)
        assert not report.ok
        assert not report.schedule_feasible
        assert any("infeasible" in issue for issue in report.issues)

    def test_wrong_node_set_flagged(self, valid_solution):
        params, nodes, outcome = valid_solution
        extra = list(nodes) + [make_node(10**6, 1e6, 1e6)]
        report = validate_bitree(outcome.tree, extra, outcome.power, params)
        assert not report.spanning

    def test_ordering_violation_flagged(self, params):
        nodes = [make_node(i, 5.0 * i, 0.0) for i in range(3)]
        tree = BiTree.from_parent_map(nodes, 2, {0: 1, 1: 2}, slots={0: 5, 1: 1})
        power = UniformPower.for_max_length(params, 5.0)
        report = validate_bitree(tree, nodes, power, params)
        assert not report.aggregation_order

    def test_raise_wrapper(self, valid_solution):
        params, nodes, outcome = valid_solution
        validate_connectivity_solution(outcome.tree, nodes, outcome.power, params)
        with pytest.raises(ScheduleError):
            validate_connectivity_solution(outcome.tree, nodes, UniformPower(1e-9), params)

    def test_latency_checks_can_be_skipped(self, valid_solution):
        params, nodes, outcome = valid_solution
        report = validate_bitree(
            outcome.tree, nodes, outcome.power, params, check_latency=False
        )
        assert report.convergecast_ok and report.broadcast_ok


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.14"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_markdown_table(self):
        rows = [{"x": 1, "y": 2}]
        markdown = format_markdown_table(rows)
        assert markdown.splitlines()[0] == "| x | y |"
        assert "| 1 | 2 |" in markdown

    def test_missing_columns_filled_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        table = format_table(rows)
        assert "a" in table and "b" in table
