"""Tests for repro.dynamics.churn and the DynamicSimulator driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InitialTreeBuilder, TreeRepairer
from repro.dynamics import (
    ChurnProcess,
    DynamicScenario,
    DynamicSimulator,
    LogNormalShadowing,
    RandomWalk,
    RayleighFading,
)
from repro.exceptions import ConfigurationError, ProtocolError
from repro.geometry import Node, Point, uniform_random
from repro.sinr import SINRParameters, is_feasible


class TestChurnProcess:
    def test_events_are_deterministic_per_seed_and_epoch(self, rng):
        nodes = uniform_random(30, rng)
        churn = ChurnProcess(failure_prob=0.2, arrival_rate=1.0, seed=5)
        a = churn.events_for(3, nodes, next_id=100)
        b = ChurnProcess(failure_prob=0.2, arrival_rate=1.0, seed=5).events_for(
            3, nodes, next_id=100
        )
        assert a == b
        assert a != churn.events_for(4, nodes, next_id=100)

    def test_never_kills_everyone(self):
        nodes = [Node(i, Point(3.0 * i, 0.0)) for i in range(5)]
        churn = ChurnProcess(failure_prob=1.0, seed=1)
        event = churn.events_for(0, nodes, next_id=10)
        assert len(event.failed) == len(nodes) - 1

    def test_protected_ids_never_fail(self):
        nodes = [Node(i, Point(3.0 * i, 0.0)) for i in range(10)]
        churn = ChurnProcess(failure_prob=1.0, seed=2, protected_ids=[0, 3])
        for epoch in range(5):
            event = churn.events_for(epoch, nodes, next_id=100)
            assert 0 not in event.failed and 3 not in event.failed

    def test_arrivals_respect_min_separation(self, rng):
        nodes = uniform_random(20, rng)
        churn = ChurnProcess(failure_prob=0.0, arrival_rate=3.0, seed=3)
        event = churn.events_for(1, nodes, next_id=1000)
        positions = [(n.x, n.y) for n in nodes] + [(a.x, a.y) for a in event.arrivals]
        for i, (xi, yi) in enumerate(positions):
            for xj, yj in positions[i + 1 :]:
                assert (xi - xj) ** 2 + (yi - yj) ** 2 >= 1.0 - 1e-9
        assert all(a.id >= 1000 for a in event.arrivals)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnProcess(failure_prob=1.5)
        with pytest.raises(ConfigurationError):
            ChurnProcess(arrival_rate=-1.0)
        with pytest.raises(ConfigurationError):
            ChurnProcess(min_separation=0.0)


class TestIntegrateArrivals:
    @pytest.fixture(scope="class")
    def built(self):
        params = SINRParameters()
        rng = np.random.default_rng(7)
        nodes = uniform_random(24, rng)
        outcome = InitialTreeBuilder(params).build(nodes, rng)
        return params, outcome

    def test_arrivals_attach_and_span(self, built, rng):
        params, outcome = built
        arrivals = [Node(id=500, position=Point(-5.0, -5.0)), Node(id=501, position=Point(60.0, 60.0))]
        result = TreeRepairer(params).integrate(
            outcome.tree, outcome.power, arrivals=arrivals, rng=rng
        )
        result.tree.validate()
        assert result.tree.is_strongly_connected()
        assert set(result.tree.nodes) == set(outcome.tree.nodes) | {500, 501}
        assert result.arrived == frozenset({500, 501})
        assert result.slots_used > 0

    def test_simultaneous_failures_and_arrivals(self, built, rng):
        params, outcome = built
        victims = [n for n in outcome.tree.nodes if n != outcome.tree.root_id][:3]
        arrivals = [Node(id=600, position=Point(100.0, 0.0))]
        result = TreeRepairer(params).integrate(
            outcome.tree, outcome.power, failed_ids=victims, arrivals=arrivals, rng=rng
        )
        result.tree.validate()
        assert result.tree.is_strongly_connected()
        assert set(result.tree.nodes) == (set(outcome.tree.nodes) - set(victims)) | {600}

    def test_new_slot_groups_feasible_under_recorded_powers(self, built, rng):
        params, outcome = built
        arrivals = [Node(id=700, position=Point(-8.0, 20.0))]
        result = TreeRepairer(params).integrate(
            outcome.tree, outcome.power, arrivals=arrivals, rng=rng
        )
        old_span = outcome.tree.aggregation_schedule.span
        schedule = result.tree.aggregation_schedule
        new_slots = [slot for slot in schedule.used_slots() if slot > old_span]
        assert new_slots
        for slot in new_slots:
            assert is_feasible(list(schedule.links_in_slot(slot)), result.power, params)

    def test_arrival_id_clash_rejected(self, built, rng):
        params, outcome = built
        existing = next(iter(outcome.tree.nodes))
        with pytest.raises(ProtocolError):
            TreeRepairer(params).integrate(
                outcome.tree,
                outcome.power,
                arrivals=[Node(id=existing, position=Point(0.0, 99.0))],
                rng=rng,
            )

    def test_empty_event_is_noop(self, built, rng):
        params, outcome = built
        result = TreeRepairer(params).integrate(outcome.tree, outcome.power, rng=rng)
        assert result.slots_used == 0
        assert result.tree.parent == outcome.tree.parent
        assert not result.root_changed


class TestDynamicSimulator:
    def _scenario(self):
        return DynamicScenario(
            mobility=RandomWalk(sigma=0.4),
            churn=ChurnProcess(failure_prob=0.08, arrival_rate=0.5, seed=21),
            gain_model=LogNormalShadowing(sigma_db=3.0, seed=22),
            epochs=5,
        )

    def test_run_is_reproducible(self):
        params = SINRParameters()
        nodes = uniform_random(20, np.random.default_rng(9))
        a = DynamicSimulator(nodes, params, self._scenario(), seed=4).run()
        b = DynamicSimulator(list(nodes), params, self._scenario(), seed=4).run()
        assert a.records == b.records
        assert a.total_repair_slots == b.total_repair_slots

    def test_structure_stays_connected_through_churn(self):
        params = SINRParameters()
        nodes = uniform_random(20, np.random.default_rng(10))
        result = DynamicSimulator(nodes, params, self._scenario(), seed=5).run()
        assert len(result.records) == 5
        assert all(record.strongly_connected for record in result.records)
        assert result.tree is not None and result.tree.is_strongly_connected()

    def test_static_deterministic_scenario_never_degrades(self):
        params = SINRParameters()
        nodes = uniform_random(16, np.random.default_rng(11))
        scenario = DynamicScenario(epochs=3)
        result = DynamicSimulator(nodes, params, scenario, seed=6).run()
        assert all(record.repair_slots == 0 for record in result.records)
        assert all(record.moved == 0 for record in result.records)
        first = result.records[0]
        assert all(
            record.feasible_fraction == first.feasible_fraction for record in result.records
        )

    def test_half_life_reported_under_aggressive_mobility(self):
        params = SINRParameters()
        nodes = uniform_random(20, np.random.default_rng(12))
        scenario = DynamicScenario(mobility=RandomWalk(sigma=4.0), epochs=10)
        result = DynamicSimulator(nodes, params, scenario, seed=7).run()
        half_life = result.half_life()
        assert half_life is not None and 0 <= half_life < 10

    def test_rayleigh_fading_scenario_runs(self):
        params = SINRParameters()
        nodes = uniform_random(16, np.random.default_rng(13))
        scenario = DynamicScenario(gain_model=RayleighFading(seed=31), epochs=3)
        result = DynamicSimulator(nodes, params, scenario, seed=8).run()
        assert len(result.records) == 3
        assert all(0.0 <= record.link_success_rate <= 1.0 for record in result.records)

    def test_gain_model_on_params_is_honored(self):
        """Fading configured on SINRParameters works like everywhere else."""
        nodes = uniform_random(16, np.random.default_rng(15))
        faded_params = SINRParameters(gain_model=LogNormalShadowing(sigma_db=8.0, seed=41))
        scenario = DynamicScenario(epochs=2)
        via_params = DynamicSimulator(list(nodes), faded_params, scenario, seed=10).run()
        via_scenario = DynamicSimulator(
            list(nodes),
            SINRParameters(),
            DynamicScenario(epochs=2, gain_model=LogNormalShadowing(sigma_db=8.0, seed=41)),
            seed=10,
        ).run()
        assert via_params.records == via_scenario.records
        plain = DynamicSimulator(list(nodes), SINRParameters(), scenario, seed=10).run()
        assert via_params.records != plain.records

    def test_health_table_renders_every_epoch(self):
        from repro.analysis import dynamics_health_table

        params = SINRParameters()
        nodes = uniform_random(16, np.random.default_rng(14))
        result = DynamicSimulator(nodes, params, self._scenario(), seed=9).run()
        table = dynamics_health_table(result.records, title="health")
        lines = table.splitlines()
        assert lines[0] == "health"
        assert "repair_slots" in lines[1]
        assert len(lines) == 3 + len(result.records)
