"""Tests for repro.baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CentralizedMSTBaseline,
    UniformScheduler,
    euclidean_mst_tree,
    naive_tdma_schedule,
)
from repro.exceptions import ProtocolError
from repro.geometry import grid, uniform_random
from repro.links import Link, LinkSet, sparsity

from .conftest import make_node


class TestEuclideanMST:
    def test_spans_all_nodes(self, rng):
        nodes = uniform_random(30, rng)
        tree = euclidean_mst_tree(nodes)
        tree.validate()
        assert set(tree.nodes) == {node.id for node in nodes}
        assert tree.is_strongly_connected()

    def test_mst_total_length_minimal_on_chain(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(6)]
        tree = euclidean_mst_tree(nodes)
        assert sum(link.length for link in tree.aggregation_links()) == pytest.approx(5.0)

    def test_mst_is_constant_sparse(self, rng):
        nodes = uniform_random(40, rng)
        tree = euclidean_mst_tree(nodes)
        assert sparsity(tree.aggregation_links()).psi <= 8

    def test_custom_root(self, rng):
        nodes = grid(9, spacing=2.0)
        tree = euclidean_mst_tree(nodes, root_id=nodes[4].id)
        assert tree.root_id == nodes[4].id

    def test_aggregation_order_valid(self, rng):
        nodes = uniform_random(20, rng)
        euclidean_mst_tree(nodes).validate_aggregation_order()

    def test_single_node_and_errors(self):
        only = make_node(0, 0, 0)
        assert euclidean_mst_tree([only]).size == 1
        with pytest.raises(ProtocolError):
            euclidean_mst_tree([])
        with pytest.raises(ProtocolError):
            euclidean_mst_tree([only], root_id=5)


class TestCentralizedBaseline:
    def test_schedule_is_feasible(self, params, rng):
        nodes = uniform_random(30, rng)
        result = CentralizedMSTBaseline(params, power_scheme="mean").build(nodes)
        assert result.schedule.is_feasible(result.power, params)
        result.schedule.validate_covers(result.tree.aggregation_links())

    def test_schedule_much_shorter_than_tdma(self, params, rng):
        nodes = uniform_random(40, rng)
        result = CentralizedMSTBaseline(params).build(nodes)
        assert result.schedule_length < len(nodes) - 1

    def test_all_power_schemes_work(self, params, rng):
        nodes = grid(16, spacing=2.0)
        for scheme in ("mean", "linear", "uniform"):
            result = CentralizedMSTBaseline(params, power_scheme=scheme).build(nodes)
            assert result.schedule.is_feasible(result.power, params)
            assert result.power_scheme == scheme

    def test_unknown_scheme_rejected(self, params):
        with pytest.raises(ValueError):
            CentralizedMSTBaseline(params, power_scheme="bogus")

    def test_single_node(self, params):
        result = CentralizedMSTBaseline(params).build([make_node(0, 0, 0)])
        assert result.schedule_length == 0


class TestUniformScheduler:
    def test_covers_and_feasible(self, params, chain_links):
        result = UniformScheduler(params).schedule(chain_links)
        result.schedule.validate_covers(chain_links)
        assert result.schedule.is_feasible(result.power, params)

    def test_explicit_level_respected(self, params, chain_links):
        level = params.min_power_for(4.0)
        result = UniformScheduler(params, level=level).schedule(chain_links)
        assert result.power.power(chain_links[0]) == level

    def test_empty_input(self, params):
        result = UniformScheduler(params).schedule(LinkSet())
        assert result.schedule_length == 0

    def test_uniform_power_struggles_with_mixed_lengths(self, params):
        # A long link next to short links forces uniform power into many slots.
        nodes = [make_node(0, 0, 0), make_node(1, 50, 0), make_node(2, 2, 0), make_node(3, 3, 0)]
        links = LinkSet([Link(nodes[0], nodes[1]), Link(nodes[2], nodes[3])])
        result = UniformScheduler(params).schedule(links)
        assert result.schedule_length == 2


class TestNaiveTdma:
    def test_one_slot_per_link(self, params, chain_links):
        result = naive_tdma_schedule(chain_links, params)
        assert result.schedule_length == len(chain_links)
        assert result.schedule.is_feasible(result.power, params)

    def test_ordering_shortest_first(self, params):
        nodes = [make_node(0, 0, 0), make_node(1, 5, 0), make_node(2, 100, 0), make_node(3, 101, 0)]
        links = LinkSet([Link(nodes[0], nodes[1]), Link(nodes[2], nodes[3])])
        result = naive_tdma_schedule(links, params)
        assert result.schedule.slot_of(links[1]) == 0  # the unit link goes first
