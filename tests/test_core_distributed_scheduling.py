"""Tests for repro.core.distributed_scheduling and power_control (Thm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistributedScheduler,
    InitialTreeBuilder,
    MeanPowerRescheduler,
)
from repro.exceptions import ConvergenceError
from repro.geometry import uniform_random
from repro.links import Link, LinkSet
from repro.sinr import MeanPower, UniformPower

from .conftest import make_node


def _spread_links(count: int, spacing: float = 30.0) -> LinkSet:
    return LinkSet(
        Link(make_node(2 * i, i * spacing, 0.0), make_node(2 * i + 1, i * spacing + 1.0, 0.0))
        for i in range(count)
    )


class TestDistributedScheduler:
    def test_schedules_all_links(self, params, rng):
        links = _spread_links(6)
        power = UniformPower.for_max_length(params, 1.0)
        result = DistributedScheduler(params).schedule(links, power, rng)
        result.schedule.validate_covers(links)
        assert result.frames_elapsed >= 1
        assert result.slots_elapsed == 2 * result.frames_elapsed

    def test_slot_groups_are_feasible(self, params, rng):
        links = _spread_links(8, spacing=10.0)
        power = MeanPower.for_max_length(params, 1.0)
        result = DistributedScheduler(params).schedule(links, power, rng)
        assert result.schedule.is_feasible(power, params, check_structure=True)

    def test_empty_input(self, params, rng):
        result = DistributedScheduler(params).schedule(LinkSet(), UniformPower(1.0), rng)
        assert result.frames_elapsed == 0
        assert len(result.schedule) == 0

    def test_budget_exhaustion_raises(self, params, rng):
        links = _spread_links(4)
        power = UniformPower(1e-9)  # cannot overcome noise, so nothing ever succeeds
        with pytest.raises(ConvergenceError):
            DistributedScheduler(params).schedule(links, power, rng, max_frames=20)

    def test_invalid_parameters_rejected(self, params):
        with pytest.raises(ValueError):
            DistributedScheduler(params, decay=0.0)
        with pytest.raises(ValueError):
            DistributedScheduler(params, recovery=0.5)
        with pytest.raises(ValueError):
            DistributedScheduler(params, min_probability=0.0)

    def test_shared_node_links_get_distinct_slots(self, params, rng):
        # A node cannot send and receive simultaneously; the contention process
        # must put adjacent links in different slots.
        a, b, c = make_node(0, 0, 0), make_node(1, 1.5, 0), make_node(2, 3.0, 0)
        links = LinkSet([Link(a, b), Link(b, c)])
        power = UniformPower.for_max_length(params, 1.5)
        result = DistributedScheduler(params).schedule(links, power, rng)
        assert result.schedule.slot_of(links[0]) != result.schedule.slot_of(links[1])

    def test_deterministic_under_seed(self, params):
        links = _spread_links(5)
        power = UniformPower.for_max_length(params, 1.0)
        first = DistributedScheduler(params).schedule(links, power, np.random.default_rng(3))
        second = DistributedScheduler(params).schedule(links, power, np.random.default_rng(3))
        assert first.frames_elapsed == second.frames_elapsed


class TestMeanPowerRescheduler:
    @pytest.fixture(scope="class")
    def tree_links(self):
        from repro.sinr import SINRParameters

        params = SINRParameters()
        rng = np.random.default_rng(11)
        nodes = uniform_random(40, rng)
        outcome = InitialTreeBuilder(params).build(nodes, rng)
        return params, outcome

    def test_reschedules_all_tree_links(self, tree_links, rng):
        params, outcome = tree_links
        links = outcome.tree.aggregation_links()
        result = MeanPowerRescheduler(params).reschedule(links, rng)
        result.schedule.validate_covers(links)
        assert result.schedule_length >= 1

    def test_schedule_feasible_under_mean_power(self, tree_links, rng):
        params, outcome = tree_links
        links = outcome.tree.aggregation_links()
        result = MeanPowerRescheduler(params).reschedule(links, rng)
        assert result.schedule.is_feasible(result.power, params)

    def test_mean_power_assignment_used_by_default(self, tree_links, rng):
        params, outcome = tree_links
        rescheduler = MeanPowerRescheduler(params)
        links = outcome.tree.aggregation_links()
        assert isinstance(rescheduler.mean_power_for(links), MeanPower)

    def test_reschedule_beats_or_matches_initial_stamps(self, tree_links, rng):
        params, outcome = tree_links
        links = outcome.tree.aggregation_links()
        result = MeanPowerRescheduler(params).reschedule(links, rng)
        assert result.schedule_length <= outcome.tree.aggregation_schedule.length * 2

    def test_empty_input(self, params, rng):
        result = MeanPowerRescheduler(params).reschedule(LinkSet(), rng)
        assert result.schedule_length == 0
