"""Tests for the dynamics experiments E10 (fading), E11 (mobility), E12 (churn)."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, e10_fading, e11_mobility, e12_churn


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(sizes=(20,), seeds=(1,))


@pytest.fixture(scope="module")
def small_config() -> ExperimentConfig:
    return ExperimentConfig(sizes=(20, 32), seeds=(1, 2))


class TestE10Fading:
    def test_rows_cover_all_models(self, tiny_config):
        result = e10_fading.run(tiny_config)
        assert result.experiment_id == "E10"
        models = {row["model"] for row in result.rows}
        assert models == {"deterministic", "shadowing", "rayleigh"}
        sigmas = {
            row["sigma_db"] for row in result.rows if row["model"] == "shadowing"
        }
        assert sigmas == set(e10_fading.SHADOWING_SIGMAS_DB)

    def test_deterministic_schedule_delivers_everything(self, tiny_config):
        result = e10_fading.run(tiny_config)
        assert result.summary["deterministic_rate"] == 1.0

    def test_zero_sigma_shadowing_matches_deterministic(self, tiny_config):
        """The stochastic code path with unit fades is a live parity probe."""
        result = e10_fading.run(tiny_config)
        assert result.summary["zero_sigma_matches_deterministic"] is True

    def test_fading_degrades_delivery(self, small_config):
        result = e10_fading.run(small_config)
        worst_sigma = max(e10_fading.SHADOWING_SIGMAS_DB)
        faded = [
            row["delivery_rate"]
            for row in result.rows
            if row["model"] == "shadowing" and row["sigma_db"] == worst_sigma
        ]
        assert all(rate < 1.0 for rate in faded)
        assert result.summary["mean_rayleigh_rate"] < 1.0


class TestE11Mobility:
    def test_rows_and_half_life_fields(self, tiny_config):
        result = e11_mobility.run(tiny_config)
        assert result.experiment_id == "E11"
        assert len(result.rows) == len(e11_mobility.WALK_SIGMAS)
        for row in result.rows:
            assert 0 <= row["half_life"] <= e11_mobility.MOBILITY_EPOCHS
            assert 0.0 <= row["final_feasible_fraction"] <= 1.0

    def test_fast_walks_degrade_more_than_slow_walks(self, small_config):
        result = e11_mobility.run(small_config)
        by_sigma = result.summary["mean_half_life_by_sigma"]
        slowest, fastest = min(by_sigma), max(by_sigma)
        assert by_sigma[fastest] <= by_sigma[slowest]


class TestE12Churn:
    def test_repair_always_cheaper_than_rebuild(self, small_config):
        result = e12_churn.run(small_config)
        assert result.experiment_id == "E12"
        assert result.summary["all_repairs_cheaper_than_rebuild"] is True
        for row in result.rows:
            assert row["repair_slots"] < row["rebuild_slots"]

    def test_sustained_churn_stays_connected(self, tiny_config):
        result = e12_churn.run(tiny_config)
        assert result.summary["sustained_always_connected"] is True


class TestParallelParity:
    """Acceptance: E10-E12 run green and bit-identical under workers > 1."""

    @pytest.mark.parametrize(
        "module", [e10_fading, e11_mobility, e12_churn], ids=["e10", "e11", "e12"]
    )
    def test_workers_bit_identical(self, module, small_config):
        sequential = module.run(small_config)
        parallel = module.run(small_config.with_overrides(workers=2))
        assert sequential.rows == parallel.rows
        assert sequential.summary == parallel.summary
