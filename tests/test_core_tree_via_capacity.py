"""Tests for repro.core.tree_via_capacity and the connectivity facade (Thm 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ConnectivityProtocol, TreeViaCapacity
from repro.exceptions import ProtocolError
from repro.geometry import grid, uniform_random
from repro.sinr import SINRParameters

from .conftest import make_node


@pytest.fixture(scope="module")
def tvc_outcomes():
    params = SINRParameters()
    rng = np.random.default_rng(33)
    nodes = uniform_random(40, rng)
    arbitrary = TreeViaCapacity(params, power_mode="arbitrary").build(nodes, rng)
    mean = TreeViaCapacity(params, power_mode="mean").build(nodes, rng)
    return params, nodes, arbitrary, mean


class TestTreeViaCapacityStructure:
    def test_spanning_and_connected(self, tvc_outcomes):
        _, nodes, arbitrary, mean = tvc_outcomes
        for outcome in (arbitrary, mean):
            outcome.tree.validate()
            assert set(outcome.tree.nodes) == {node.id for node in nodes}
            assert outcome.tree.is_strongly_connected()

    def test_aggregation_order(self, tvc_outcomes):
        _, _, arbitrary, mean = tvc_outcomes
        arbitrary.tree.validate_aggregation_order()
        mean.tree.validate_aggregation_order()

    def test_schedules_feasible(self, tvc_outcomes):
        params, _, arbitrary, mean = tvc_outcomes
        assert arbitrary.aggregation_feasible
        assert arbitrary.tree.aggregation_schedule.is_feasible(arbitrary.power, params)
        assert mean.aggregation_feasible
        assert mean.tree.aggregation_schedule.is_feasible(mean.power, params)

    def test_schedule_length_equals_iterations(self, tvc_outcomes):
        _, _, arbitrary, mean = tvc_outcomes
        assert arbitrary.schedule_length == len(arbitrary.iterations)
        assert mean.schedule_length == len(mean.iterations)

    def test_schedule_length_modest_multiple_of_log_n(self, tvc_outcomes):
        _, nodes, arbitrary, _ = tvc_outcomes
        assert arbitrary.schedule_length <= 8 * math.log2(len(nodes))

    def test_arbitrary_schedule_shorter_than_tdma(self, tvc_outcomes):
        _, nodes, arbitrary, _ = tvc_outcomes
        assert arbitrary.schedule_length < len(nodes) - 1

    def test_iteration_records_are_consistent(self, tvc_outcomes):
        _, nodes, arbitrary, _ = tvc_outcomes
        populations = [record.population for record in arbitrary.iterations]
        assert populations[0] == len(nodes)
        assert all(populations[i] > populations[i + 1] for i in range(len(populations) - 1))
        for record in arbitrary.iterations:
            assert 0 < record.selected_links <= record.tree_links
            assert 0.0 < record.progress_fraction <= 1.0

    def test_construction_slots_accumulated(self, tvc_outcomes):
        _, _, arbitrary, _ = tvc_outcomes
        assert arbitrary.construction_slots >= sum(r.init_slots for r in arbitrary.iterations)


class TestTreeViaCapacityEdgeCases:
    def test_single_node(self, params, rng):
        outcome = TreeViaCapacity(params).build([make_node(0, 0, 0)], rng)
        assert outcome.tree.size == 1
        assert outcome.schedule_length == 0

    def test_two_nodes(self, params, rng):
        nodes = [make_node(0, 0, 0), make_node(1, 2, 0)]
        outcome = TreeViaCapacity(params).build(nodes, rng)
        assert outcome.schedule_length == 1
        assert outcome.tree.is_strongly_connected()

    def test_empty_input_rejected(self, params, rng):
        with pytest.raises(ProtocolError):
            TreeViaCapacity(params).build([], rng)

    def test_invalid_power_mode(self, params):
        with pytest.raises(ValueError):
            TreeViaCapacity(params, power_mode="magic")  # type: ignore[arg-type]

    def test_iteration_cap_enforced(self, params, rng):
        nodes = grid(16, spacing=2.0)
        with pytest.raises(ProtocolError):
            TreeViaCapacity(params, max_iterations=1).build(nodes, rng)


class TestConnectivityProtocolFacade:
    def test_full_pipeline(self, rng):
        params = SINRParameters()
        protocol = ConnectivityProtocol(params)
        nodes = grid(25, spacing=2.0)
        initial = protocol.build_initial_tree(nodes, rng)
        assert initial.tree.is_strongly_connected()
        rescheduled = protocol.reschedule_with_mean_power(initial, rng)
        assert rescheduled.schedule.is_feasible(rescheduled.power, params)
        efficient = protocol.build_efficient_tree(nodes, rng, power_mode="arbitrary")
        assert efficient.aggregation_feasible

    def test_default_parameters_constructed(self):
        protocol = ConnectivityProtocol()
        assert protocol.params.alpha > 2.0
