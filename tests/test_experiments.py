"""Tests for the experiment harness (repro.experiments)."""

from __future__ import annotations

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig, average_rows
from repro.experiments import e1_init, e2_degree, e5_tvc_arbitrary, f1_comparison


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        sizes=(16, 24),
        delta_targets=(1.0e2, 1.0e3),
        seeds=(1,),
        delta_sweep_size=20,
    )


class TestConfig:
    def test_trials_enumeration(self):
        config = ExperimentConfig(sizes=(8, 16), seeds=(1, 2))
        assert config.trials() == [(8, 1), (8, 2), (16, 1), (16, 2)]

    def test_quick_and_full_presets(self):
        assert len(ExperimentConfig.quick().sizes) <= len(ExperimentConfig.full().sizes)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(sizes=(8,))
        assert config.sizes == (8,)


class TestAverageRows:
    def test_grouping_and_averaging(self):
        rows = [
            {"n": 8, "value": 2.0},
            {"n": 8, "value": 4.0},
            {"n": 16, "value": 10.0},
        ]
        averaged = average_rows(rows, "n", ["value"])
        assert averaged == [{"n": 8, "value": 3.0}, {"n": 16, "value": 10.0}]

    def test_non_numeric_fields_take_first(self):
        rows = [{"n": 8, "tag": "a"}, {"n": 8, "tag": "b"}]
        assert average_rows(rows, "n", ["tag"])[0]["tag"] == "a"


class TestExperimentRegistry:
    def test_registry_covers_design_index(self):
        expected = {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
            "E10", "E11", "E12", "E13", "E14", "F1", "F2", "F3",
        }
        assert set(ALL_EXPERIMENTS) == expected


class TestSelectedExperiments:
    def test_e1_rows_and_summary(self, tiny_config):
        result = e1_init.run(tiny_config)
        assert result.experiment_id == "E1"
        assert len(result.rows) == len(tiny_config.trials())
        assert result.summary["all_strongly_connected"]
        assert "slots" in result.rows[0]

    def test_e2_degree_bounds(self, tiny_config):
        result = e2_degree.run(tiny_config)
        assert all(row["max_degree"] >= 1 for row in result.rows)
        assert result.summary["max_max_degree_per_log_n"] < 5.0

    def test_e5_valid_and_short(self, tiny_config):
        result = e5_tvc_arbitrary.run(tiny_config)
        assert result.summary["all_valid"]
        for row in result.rows:
            assert row["schedule_len"] < row["n"]

    def test_f1_ordering(self, tiny_config):
        result = f1_comparison.run(tiny_config)
        assert result.summary["ordering_expected"]
        for row in result.rows:
            assert row["tvc_arbitrary"] <= row["naive_tdma"]

    def test_result_rendering(self, tiny_config):
        result = e1_init.run(tiny_config)
        assert "E1" in result.table()
        assert result.markdown().startswith("### E1")
