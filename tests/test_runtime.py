"""Tests for repro.runtime (agents, simulator, trace, messages)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.runtime import (
    AckMessage,
    BroadcastMessage,
    DataMessage,
    ExecutionTrace,
    NodeAgent,
    Simulator,
    SlotRecord,
    spawn_agent_rngs,
)
from repro.sinr import Channel, Reception, SINRParameters, Transmission

from .conftest import make_node


class _BeaconAgent(NodeAgent):
    """Transmits in every even slot; records what it hears otherwise."""

    def __init__(self, node, rng, power: float, transmit: bool):
        super().__init__(node, rng)
        self.power = power
        self.transmit = transmit
        self.heard: list[tuple[int, int]] = []

    def act(self, slot: int):
        if self.transmit and slot % 2 == 0:
            return Transmission(self.node, self.power, BroadcastMessage(self.node))
        return None

    def observe(self, slot: int, reception: Reception | None) -> None:
        if reception is not None:
            self.heard.append((slot, reception.sender.id))

    def is_done(self) -> bool:
        return bool(self.heard)


def _make_simulator(params) -> tuple[Simulator, list[_BeaconAgent]]:
    power = params.min_power_for(2.0)
    nodes = [make_node(0, 0, 0), make_node(1, 1, 0), make_node(2, 2, 0)]
    rngs = spawn_agent_rngs(np.random.default_rng(0), len(nodes))
    agents = [
        _BeaconAgent(nodes[0], rngs[0], power, transmit=True),
        _BeaconAgent(nodes[1], rngs[1], power, transmit=False),
        _BeaconAgent(nodes[2], rngs[2], power, transmit=False),
    ]
    return Simulator(agents, Channel(params)), agents


class TestMessages:
    def test_broadcast_message_fields(self):
        node = make_node(3, 1, 2)
        message = BroadcastMessage(sender=node, round_index=2)
        assert message.sender_id == 3
        assert message.round_index == 2

    def test_ack_message_fields(self):
        node = make_node(4, 0, 0)
        ack = AckMessage(sender=node, target_id=7, round_index=1, slot_pair=9)
        assert ack.sender_id == 4
        assert ack.target_id == 7

    def test_data_message_defaults(self):
        message = DataMessage(sender=make_node(0, 0, 0), payload=42)
        assert message.payload == 42
        assert message.destination_id is None
        assert message.metadata == {}


class TestSpawnRngs:
    def test_count_and_independence(self):
        parent = np.random.default_rng(1)
        children = spawn_agent_rngs(parent, 3)
        assert len(children) == 3
        draws = {child.integers(0, 2**31) for child in children}
        assert len(draws) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_agent_rngs(np.random.default_rng(0), -1)


class TestSimulator:
    def test_step_delivers_receptions(self, params):
        simulator, agents = _make_simulator(params)
        record = simulator.step(label="beacon")
        assert record.transmitters == (0,)
        assert set(record.receptions) == {1, 2}
        assert agents[1].heard and agents[1].heard[0][1] == 0

    def test_run_counts_slots(self, params):
        simulator, _ = _make_simulator(params)
        trace = simulator.run(4, label="x")
        assert trace.slots_used == 4
        assert simulator.current_slot == 4

    def test_run_until_predicate(self, params):
        simulator, agents = _make_simulator(params)
        simulator.run_until(lambda sim: agents[1].is_done(), max_slots=10)
        assert agents[1].is_done()

    def test_run_until_budget_exhausted_raises(self, params):
        simulator, _ = _make_simulator(params)
        with pytest.raises(ProtocolError):
            simulator.run_until(lambda sim: False, max_slots=3)

    def test_duplicate_agent_ids_rejected(self, params):
        node = make_node(0, 0, 0)
        rngs = spawn_agent_rngs(np.random.default_rng(0), 2)
        agents = [
            _BeaconAgent(node, rngs[0], 1.0, True),
            _BeaconAgent(node, rngs[1], 1.0, False),
        ]
        with pytest.raises(ProtocolError):
            Simulator(agents, Channel(params))

    def test_all_done_and_agents_by_id(self, params):
        simulator, agents = _make_simulator(params)
        assert not simulator.all_done()
        assert simulator.agents_by_id()[0] is agents[0]


class TestTrace:
    def test_counts(self):
        trace = ExecutionTrace()
        trace.record(SlotRecord(slot=0, transmitters=(1, 2), receptions={3: 1}, label="a"))
        trace.record(SlotRecord(slot=1, transmitters=(), receptions={}, label="b"))
        assert trace.slots_used == 2
        assert trace.busy_slots() == 1
        assert trace.transmissions_sent == 2
        assert trace.successful_receptions == 1

    def test_label_filter_and_summary(self):
        trace = ExecutionTrace(metadata={"phase": "test"})
        trace.record(SlotRecord(slot=0, transmitters=(0,), receptions={}, label="x"))
        assert len(trace.slots_with_label("x")) == 1
        summary = trace.summary()
        assert summary["slots_used"] == 1
        assert summary["phase"] == "test"
