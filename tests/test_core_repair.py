"""Tests for repro.core.repair (node-failure repair, the dynamic extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InitialTreeBuilder, TreeRepairer
from repro.exceptions import ProtocolError
from repro.geometry import Node, Point, uniform_random
from repro.sinr import SINRParameters
from repro.state import NetworkState


@pytest.fixture(scope="module")
def built_tree():
    params = SINRParameters()
    rng = np.random.default_rng(101)
    nodes = uniform_random(40, rng)
    outcome = InitialTreeBuilder(params).build(nodes, rng)
    return params, nodes, outcome


def _leaves(tree):
    children_of = set(tree.parent.values())
    return [node_id for node_id in tree.nodes if node_id not in children_of and node_id != tree.root_id]


class TestTreeRepairer:
    def test_repair_after_internal_failures_restores_spanning_tree(self, built_tree, rng):
        params, _, outcome = built_tree
        internal = [
            node_id
            for node_id in outcome.tree.nodes
            if outcome.tree.children(node_id) and node_id != outcome.tree.root_id
        ][:3]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, internal, rng)
        result.tree.validate()
        assert result.tree.is_strongly_connected()
        assert set(result.tree.nodes) == set(outcome.tree.nodes) - set(internal)
        assert result.slots_used > 0
        assert result.reattached

    def test_leaf_failures_need_no_repair_slots(self, built_tree, rng):
        params, _, outcome = built_tree
        leaves = _leaves(outcome.tree)[:3]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, leaves, rng)
        assert result.slots_used == 0
        assert result.reattached == frozenset()
        assert result.tree.is_strongly_connected()
        assert not result.root_changed

    def test_root_failure_elects_new_root(self, built_tree, rng):
        params, _, outcome = built_tree
        result = TreeRepairer(params).repair(
            outcome.tree, outcome.power, [outcome.tree.root_id], rng
        )
        assert result.root_changed
        assert result.tree.root_id != outcome.tree.root_id
        assert result.tree.is_strongly_connected()

    def test_new_slot_groups_are_feasible(self, built_tree, rng):
        params, _, outcome = built_tree
        internal = [
            node_id
            for node_id in outcome.tree.nodes
            if outcome.tree.children(node_id) and node_id != outcome.tree.root_id
        ][:2]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, internal, rng)
        old_span = outcome.tree.aggregation_schedule.span
        schedule = result.tree.aggregation_schedule
        new_slots = [slot for slot in schedule.used_slots() if slot > old_span]
        assert new_slots, "repair should add fresh slots"
        for slot in new_slots:
            group = schedule.links_in_slot(slot)
            from repro.sinr import is_feasible

            assert is_feasible(list(group), result.power, params)

    def test_repair_cost_smaller_than_rebuild(self, built_tree, rng):
        params, nodes, outcome = built_tree
        internal = [
            node_id
            for node_id in outcome.tree.nodes
            if outcome.tree.children(node_id) and node_id != outcome.tree.root_id
        ][:2]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, internal, rng)
        assert result.slots_used < outcome.slots_used

    def test_unknown_failure_id_rejected(self, built_tree, rng):
        params, _, outcome = built_tree
        with pytest.raises(ProtocolError):
            TreeRepairer(params).repair(outcome.tree, outcome.power, [10**9], rng)

    def test_total_failure_rejected(self, built_tree, rng):
        params, _, outcome = built_tree
        with pytest.raises(ProtocolError):
            TreeRepairer(params).repair(outcome.tree, outcome.power, list(outcome.tree.nodes), rng)

    def test_integrate_splices_shared_state(self, built_tree, rng):
        params, _, outcome = built_tree
        tree_nodes = list(outcome.tree.nodes.values())
        state = NetworkState(tree_nodes)
        state.distance_matrix()
        victims = _leaves(outcome.tree)[:2]
        arrival = Node(id=max(outcome.tree.nodes) + 1, position=Point(3.0, 4.0))
        result = TreeRepairer(params).integrate(
            outcome.tree, outcome.power, failed_ids=victims, arrivals=[arrival],
            rng=rng, state=state,
        )
        assert set(int(i) for i in state.ids[state.live_slots()]) == set(result.tree.nodes)
        # The surviving block is still bitwise equal to a fresh rebuild.
        live = state.live_slots()
        fresh = NetworkState([state.node_at(s) for s in live.tolist()])
        assert np.array_equal(
            state.distance_matrix()[np.ix_(live, live)], fresh.distance_matrix()
        )

    def test_integrate_validates_state_before_mutating(self, built_tree, rng):
        """A bad splice target fails up front, leaving the state untouched."""
        params, _, outcome = built_tree
        tree_nodes = list(outcome.tree.nodes.values())
        victims = _leaves(outcome.tree)[:1]
        arrival_id = max(outcome.tree.nodes) + 1

        # Arrival id free in the tree but already live in the wider state.
        squatter = Node(id=arrival_id, position=Point(99.0, 99.0))
        state = NetworkState(tree_nodes + [squatter])
        before = len(state)
        with pytest.raises(ProtocolError):
            TreeRepairer(params).integrate(
                outcome.tree, outcome.power, failed_ids=victims,
                arrivals=[Node(id=arrival_id, position=Point(1.0, 2.0))],
                rng=rng, state=state,
            )
        assert len(state) == before and victims[0] in state

        # Failed id known to the tree but absent from the state.
        partial = NetworkState([n for n in tree_nodes if n.id != victims[0]])
        with pytest.raises(ProtocolError):
            TreeRepairer(params).integrate(
                outcome.tree, outcome.power, failed_ids=victims, rng=rng, state=partial,
            )


class TestMultiRoundChurnProperties:
    """Property-style checks of repair under randomized sustained churn.

    Every round kills a random subset of the current tree and repairs; the
    invariants must hold after *every* round, not just one repair from a
    pristine tree: survivors stay strongly connected, every newly formed slot
    group is SINR-feasible under the recorded powers, and the repair cost is
    bounded by the damage (an Init re-run among the affected subtree roots),
    not the network size.
    """

    ROUNDS = 4
    KILLS_PER_ROUND = 3

    def _churn_rounds(self, built_tree, seed):
        params, _, outcome = built_tree
        repairer = TreeRepairer(params)
        rng = np.random.default_rng(seed)
        tree, power = outcome.tree, outcome.power
        history = []
        for _ in range(self.ROUNDS):
            victims_pool = [n for n in tree.nodes if n != tree.root_id]
            kills = min(self.KILLS_PER_ROUND, len(victims_pool) - 1)
            victims = [int(v) for v in rng.choice(victims_pool, size=kills, replace=False)]
            old_span = tree.aggregation_schedule.span
            result = repairer.repair(tree, power, victims, rng)
            history.append((result, old_span, set(tree.nodes) - set(victims)))
            tree, power = result.tree, result.power
        return params, history

    @pytest.mark.parametrize("seed", [71, 72, 73])
    def test_survivors_always_strongly_connected(self, built_tree, seed):
        _, history = self._churn_rounds(built_tree, seed)
        for result, _, expected_survivors in history:
            result.tree.validate()
            assert result.tree.is_strongly_connected()
            assert set(result.tree.nodes) == expected_survivors

    @pytest.mark.parametrize("seed", [71, 72])
    def test_repaired_slot_groups_feasible_under_recorded_powers(self, built_tree, seed):
        from repro.sinr import is_feasible

        params, history = self._churn_rounds(built_tree, seed)
        for result, old_span, _ in history:
            schedule = result.tree.aggregation_schedule
            for slot in schedule.used_slots():
                if slot > old_span:
                    group = list(schedule.links_in_slot(slot))
                    assert is_feasible(group, result.power, params)

    @pytest.mark.parametrize("seed", [71, 72, 73])
    def test_repair_cost_bounded_by_damage_not_network_size(self, built_tree, seed):
        """Each round's cost matches an Init over the affected nodes only."""
        params, history = self._churn_rounds(built_tree, seed)
        patch_rng = np.random.default_rng(10_000 + seed)
        total_repair = 0
        total_rebuild = 0
        for result, _, survivors in history:
            # Far fewer participants than survivors -> cost must stay at or
            # below a fresh Init over the whole surviving network (measured,
            # not assumed; a tiny patch occasionally needs as many sweeps as
            # a rebuild, so the per-round bound is <= and the aggregate <).
            assert result.reattached <= set(result.tree.nodes)
            if result.reattached:
                survivor_nodes = list(result.tree.nodes.values())
                rebuild = InitialTreeBuilder(params).build(survivor_nodes, patch_rng)
                assert result.slots_used <= rebuild.slots_used
                total_repair += result.slots_used
                total_rebuild += rebuild.slots_used
            else:
                assert result.slots_used == 0
        if total_rebuild:
            assert total_repair < total_rebuild

    def test_power_fallback_chain_stays_flat_across_rounds(self, built_tree):
        """Round N's power resolves through one layer, not N chained ones."""
        params, _, outcome = built_tree
        repairer = TreeRepairer(params)
        rng = np.random.default_rng(99)
        tree, power = outcome.tree, outcome.power
        base_fallback = power.flattened()[1]
        for _ in range(self.ROUNDS):
            victims_pool = [n for n in tree.nodes if n != tree.root_id]
            victims = [int(v) for v in rng.choice(victims_pool, size=2, replace=False)]
            result = repairer.repair(tree, power, victims, rng)
            tree, power = result.tree, result.power
            # The fallback is the original oblivious assignment, never a
            # chained ExplicitPower, and failed nodes' powers are pruned.
            assert power.fallback is base_fallback
            assert not any(
                a in result.failed or b in result.failed for a, b in power.as_dict()
            )
