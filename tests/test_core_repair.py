"""Tests for repro.core.repair (node-failure repair, the dynamic extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InitialTreeBuilder, TreeRepairer
from repro.exceptions import ProtocolError
from repro.geometry import uniform_random
from repro.sinr import SINRParameters


@pytest.fixture(scope="module")
def built_tree():
    params = SINRParameters()
    rng = np.random.default_rng(101)
    nodes = uniform_random(40, rng)
    outcome = InitialTreeBuilder(params).build(nodes, rng)
    return params, nodes, outcome


def _leaves(tree):
    children_of = set(tree.parent.values())
    return [node_id for node_id in tree.nodes if node_id not in children_of and node_id != tree.root_id]


class TestTreeRepairer:
    def test_repair_after_internal_failures_restores_spanning_tree(self, built_tree, rng):
        params, _, outcome = built_tree
        internal = [
            node_id
            for node_id in outcome.tree.nodes
            if outcome.tree.children(node_id) and node_id != outcome.tree.root_id
        ][:3]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, internal, rng)
        result.tree.validate()
        assert result.tree.is_strongly_connected()
        assert set(result.tree.nodes) == set(outcome.tree.nodes) - set(internal)
        assert result.slots_used > 0
        assert result.reattached

    def test_leaf_failures_need_no_repair_slots(self, built_tree, rng):
        params, _, outcome = built_tree
        leaves = _leaves(outcome.tree)[:3]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, leaves, rng)
        assert result.slots_used == 0
        assert result.reattached == frozenset()
        assert result.tree.is_strongly_connected()
        assert not result.root_changed

    def test_root_failure_elects_new_root(self, built_tree, rng):
        params, _, outcome = built_tree
        result = TreeRepairer(params).repair(
            outcome.tree, outcome.power, [outcome.tree.root_id], rng
        )
        assert result.root_changed
        assert result.tree.root_id != outcome.tree.root_id
        assert result.tree.is_strongly_connected()

    def test_new_slot_groups_are_feasible(self, built_tree, rng):
        params, _, outcome = built_tree
        internal = [
            node_id
            for node_id in outcome.tree.nodes
            if outcome.tree.children(node_id) and node_id != outcome.tree.root_id
        ][:2]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, internal, rng)
        old_span = outcome.tree.aggregation_schedule.span
        schedule = result.tree.aggregation_schedule
        new_slots = [slot for slot in schedule.used_slots() if slot > old_span]
        assert new_slots, "repair should add fresh slots"
        for slot in new_slots:
            group = schedule.links_in_slot(slot)
            from repro.sinr import is_feasible

            assert is_feasible(list(group), result.power, params)

    def test_repair_cost_smaller_than_rebuild(self, built_tree, rng):
        params, nodes, outcome = built_tree
        internal = [
            node_id
            for node_id in outcome.tree.nodes
            if outcome.tree.children(node_id) and node_id != outcome.tree.root_id
        ][:2]
        result = TreeRepairer(params).repair(outcome.tree, outcome.power, internal, rng)
        assert result.slots_used < outcome.slots_used

    def test_unknown_failure_id_rejected(self, built_tree, rng):
        params, _, outcome = built_tree
        with pytest.raises(ProtocolError):
            TreeRepairer(params).repair(outcome.tree, outcome.power, [10**9], rng)

    def test_total_failure_rejected(self, built_tree, rng):
        params, _, outcome = built_tree
        with pytest.raises(ProtocolError):
            TreeRepairer(params).repair(outcome.tree, outcome.power, list(outcome.tree.nodes), rng)
