"""Telemetry parity: observing a run never changes it.

Two invariants from the observability contract, pinned on a lockstep
experiment (E1) and a netsim experiment (E13):

* *results are bit-identical with telemetry on vs. off* — the instruments
  never touch an RNG or mutate an input, at any worker count, even with
  kernel timers installed; and
* *counters merge exactly across worker counts* — every counter is a
  deterministic consequence of the simulated protocol, and the trial
  fabric's payload merge is a commutative sum, so workers=1 and workers=2
  produce identical counter snapshots (spans are wall-clock and excluded).
"""

import dataclasses

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig
from repro.obs import OBS, MetricsRegistry, instrument_kernels, telemetry

E1_CONFIG = ExperimentConfig(sizes=(16, 24), seeds=(1,))
E13_CONFIG = ExperimentConfig(sizes=(16,), seeds=(1,))

CASES = [("E1", E1_CONFIG), ("E13", E13_CONFIG)]


@pytest.fixture(autouse=True)
def _quiet_telemetry():
    """Every test starts and ends with telemetry off and a fresh registry."""
    previous = (OBS.enabled, OBS.registry)
    OBS.enabled = False
    OBS.registry = MetricsRegistry()
    yield
    OBS.enabled, OBS.registry = previous


def run_case(experiment_id, config, *, enabled, workers):
    runner = ALL_EXPERIMENTS[experiment_id]
    config = dataclasses.replace(config, workers=workers)
    if not enabled:
        return runner(config), None
    with telemetry() as registry:
        result = runner(config)
    return result, registry


def comparable(result):
    """Everything a result carries except object identity."""
    return (result.experiment_id, result.title, result.rows, result.summary)


@pytest.mark.parametrize("experiment_id,config", CASES)
@pytest.mark.parametrize("workers", [1, 2])
class TestOnOffParity:
    def test_results_bit_identical_with_kernel_timers(self, experiment_id, config, workers):
        off, _ = run_case(experiment_id, config, enabled=False, workers=workers)
        with instrument_kernels():
            on, registry = run_case(experiment_id, config, enabled=True, workers=workers)
        assert comparable(on) == comparable(off)
        totals = registry.counter_totals()
        assert totals.get("kernel.calls", 0) > 0
        assert totals.get("sim.slots", 0) > 0
        if experiment_id == "E13":
            assert totals.get("netsim.slots", 0) > 0
            assert totals.get("netsim.sends", 0) > 0


@pytest.mark.parametrize("experiment_id,config", CASES)
class TestWorkerCountParity:
    def test_counters_merge_exactly_across_worker_counts(self, experiment_id, config):
        solo, solo_registry = run_case(experiment_id, config, enabled=True, workers=1)
        duo, duo_registry = run_case(experiment_id, config, enabled=True, workers=2)
        assert comparable(solo) == comparable(duo)
        assert solo_registry.snapshot()["counters"] == duo_registry.snapshot()["counters"]
