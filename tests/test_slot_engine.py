"""Parity tests for the vectorized slot engine (PR 2).

Pins, on randomized instances and on the documented edge cases:

* the vectorized ``Channel._decode`` / ``decode_arrays`` against the seed
  per-listener loop (``decode_reference``), bit-for-bit;
* ``resolve_indices`` against ``Channel.resolve``;
* the batch simulator engine against the seed (legacy) engine, including
  delivered observations and traces;
* the columnar trace against the record-based trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Node, Point
from repro.runtime import ColumnarTrace, ExecutionTrace, NodeAgent, Simulator, SlotRecord, spawn_agent_rngs
from repro.sinr import (
    CachedChannel,
    Channel,
    NodeArrayCache,
    SINRParameters,
    Transmission,
    decode_arrays,
    decode_reference,
)

from .conftest import make_node


class _SeedDecodeChannel(Channel):
    """Channel whose decode is the seed per-listener loop (the oracle)."""

    def _decode(self, transmissions, active_listeners, dist, powers):
        return decode_reference(transmissions, active_listeners, dist, powers, self.params)


def _random_instance(rng: np.random.Generator, n: int, *, colocated: bool = False):
    """Random nodes, transmitter subset and powers; optionally colocate a pair."""
    xy = rng.uniform(0.0, 20.0, size=(n, 2))
    if colocated and n >= 2:
        xy[1] = xy[0]  # a transmitter sits exactly on a listener
    nodes = [Node(id=i, position=Point(float(x), float(y))) for i, (x, y) in enumerate(xy)]
    k = max(1, int(rng.integers(1, max(2, n // 2))))
    tx = list(rng.choice(n, size=k, replace=False))
    powers = rng.uniform(0.5, 50.0, size=k)
    transmissions = [
        Transmission(sender=nodes[i], power=float(p), message=("m", int(i)))
        for i, p in zip(tx, powers)
    ]
    return nodes, transmissions


def _assert_receptions_equal(a, b):
    assert set(a) == set(b)
    for listener_id, rec in a.items():
        other = b[listener_id]
        assert rec.sender.id == other.sender.id
        assert rec.message == other.message
        # bit-for-bit: identical float or both infinite
        assert rec.sinr == other.sinr


class TestDecodeParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_matches_reference(self, params, seed):
        rng = np.random.default_rng(seed)
        nodes, transmissions = _random_instance(rng, 24)
        vectorized = Channel(params).resolve(transmissions, nodes)
        reference = _SeedDecodeChannel(params).resolve(transmissions, nodes)
        _assert_receptions_equal(vectorized, reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_colocated_transmitter_matches_reference(self, params, seed):
        # dist <= 0 -> infinite received power; with two infinite signals the
        # seed loop decodes nothing (inf - inf = nan); one must still decode.
        rng = np.random.default_rng(100 + seed)
        nodes, transmissions = _random_instance(rng, 16, colocated=True)
        vectorized = Channel(params).resolve(transmissions, nodes)
        reference = _SeedDecodeChannel(params).resolve(transmissions, nodes)
        _assert_receptions_equal(vectorized, reference)

    def test_single_colocated_pair_decodes_nothing(self):
        # An infinitely strong signal makes interference = inf - inf = nan in
        # the seed loop, which decodes nothing; the vectorized pass must agree.
        params = SINRParameters(noise=0.0)
        sender, listener = make_node(0, 1.0, 1.0), make_node(1, 1.0, 1.0)
        transmissions = [Transmission(sender, 1.0, "x")]
        receptions = Channel(params).resolve(transmissions, [listener])
        reference = _SeedDecodeChannel(params).resolve(transmissions, [listener])
        assert receptions == reference == {}

    def test_zero_interference_zero_noise_gives_infinite_sinr(self):
        params = SINRParameters(noise=0.0)
        sender, listener = make_node(0, 0.0, 0.0), make_node(1, 3.0, 0.0)
        receptions = Channel(params).resolve([Transmission(sender, 1e-6, "x")], [listener])
        assert receptions[1].sinr == np.inf
        reference = _SeedDecodeChannel(params).resolve(
            [Transmission(sender, 1e-6, "x")], [listener]
        )
        _assert_receptions_equal(receptions, reference)

    def test_half_duplex_skips_transmitting_listeners(self, params):
        rng = np.random.default_rng(7)
        nodes, transmissions = _random_instance(rng, 12)
        vectorized = Channel(params).resolve(transmissions, nodes)
        transmitting = {t.sender.id for t in transmissions}
        assert not transmitting & set(vectorized)

    def test_decode_arrays_matches_reference_elementwise(self, params):
        rng = np.random.default_rng(3)
        dist = rng.uniform(0.0, 10.0, size=(6, 9))
        dist[0, 0] = 0.0  # colocated pair
        powers = rng.uniform(0.1, 10.0, size=6)
        best, sinr, ok = decode_arrays(dist, powers, params)
        with np.errstate(divide="ignore"):
            received = powers[:, None] / np.maximum(dist, 1e-300) ** params.alpha
        received = np.where(dist <= 0, np.inf, received)
        total = received.sum(axis=0) + params.noise
        for j in range(dist.shape[1]):
            signals = received[:, j]
            expected_best = int(np.argmax(signals))
            interference = total[j] - signals[expected_best]
            expected_sinr = np.inf if interference <= 0 else float(signals[expected_best] / interference)
            assert int(best[j]) == expected_best
            assert (np.isnan(sinr[j]) and np.isnan(expected_sinr)) or sinr[j] == expected_sinr
            assert bool(ok[j]) == (expected_sinr >= params.beta)


class TestResolveIndicesParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_resolve(self, params, seed):
        rng = np.random.default_rng(200 + seed)
        nodes, transmissions = _random_instance(rng, 20, colocated=(seed % 2 == 0))
        channel = CachedChannel(params, nodes)
        expected = channel.resolve(transmissions, nodes)

        transmitting = {t.sender.id for t in transmissions}
        listeners = [node for node in nodes if node.id not in transmitting]
        tx_idx = np.array([channel.cache.index_of_id(t.sender.id) for t in transmissions])
        rx_idx = np.array([channel.cache.index_of_id(n.id) for n in listeners])
        powers = np.array([t.power for t in transmissions])
        best, sinr, ok = channel.resolve_indices(tx_idx, rx_idx, powers)

        decoded = {
            listeners[j].id: (transmissions[int(best[j])], float(sinr[j]))
            for j in np.nonzero(ok)[0]
        }
        assert set(decoded) == set(expected)
        for listener_id, (transmission, value) in decoded.items():
            assert expected[listener_id].sender.id == transmission.sender.id
            assert expected[listener_id].sinr == value

    @pytest.mark.parametrize("seed", range(4))
    def test_full_universe_matches_subset(self, params, seed):
        # resolve_indices_full decodes every cache column; listener columns
        # must be bit-identical to a resolve_indices call on the subset.
        rng = np.random.default_rng(400 + seed)
        nodes, transmissions = _random_instance(rng, 20, colocated=(seed % 2 == 0))
        channel = CachedChannel(params, nodes)
        tx_idx = np.array([channel.cache.index_of_id(t.sender.id) for t in transmissions])
        powers = np.array([t.power for t in transmissions])
        transmitting = {t.sender.id for t in transmissions}
        rx_idx = np.array([i for i, node in enumerate(nodes) if node.id not in transmitting])

        best_full, sinr_full, ok_full = channel.resolve_indices_full(tx_idx, powers)
        best_sub, sinr_sub, ok_sub = channel.resolve_indices(tx_idx, rx_idx, powers)
        assert np.array_equal(best_full[rx_idx], best_sub)
        assert np.array_equal(sinr_full[rx_idx], sinr_sub, equal_nan=True)
        assert np.array_equal(ok_full[rx_idx], ok_sub)

    def test_plain_channel_takes_explicit_cache(self, params):
        nodes = [make_node(0, 0.0, 0.0), make_node(1, 1.0, 0.0), make_node(2, 5.0, 0.0)]
        cache = NodeArrayCache(nodes)
        channel = Channel(params)
        power = params.min_power_for(1.0)
        best, sinr, ok = channel.resolve_indices(
            np.array([0]), np.array([1, 2]), np.array([power]), cache
        )
        expected = channel.resolve([Transmission(nodes[0], power, "x")], nodes[1:])
        assert bool(ok[0]) == (1 in expected)
        assert bool(ok[1]) == (2 in expected)

    def test_empty_inputs(self, params):
        nodes = [make_node(0, 0.0, 0.0), make_node(1, 1.0, 0.0)]
        channel = CachedChannel(params, nodes)
        best, sinr, ok = channel.resolve_indices(np.array([]), np.array([0, 1]), np.array([]))
        assert best.size == 2 and not ok.any()
        best, sinr, ok = channel.resolve_indices(np.array([0]), np.array([]), np.array([1.0]))
        assert best.size == 0


class _CoinAgent(NodeAgent):
    """Transmits with probability 0.3; records everything it hears."""

    def __init__(self, node, rng, power):
        super().__init__(node, rng)
        self.power = power
        self.heard: list[tuple[int, int, float]] = []

    def act_batch(self, slot):
        if self.rng.random() < 0.3:
            return self.power, ("beacon", self.node.id, slot)
        return None

    def act(self, slot):
        action = self.act_batch(slot)
        if action is None:
            return None
        return Transmission(self.node, action[0], action[1])

    def observe(self, slot, reception):
        if reception is not None:
            self.heard.append((slot, reception.sender.id, reception.sinr))


def _coin_agents(params, n, seed):
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0.0, 15.0, size=(n, 2))
    nodes = [Node(id=i, position=Point(float(x), float(y))) for i, (x, y) in enumerate(xy)]
    power = params.min_power_for(3.0)
    return [
        _CoinAgent(node, agent_rng, power)
        for node, agent_rng in zip(nodes, spawn_agent_rngs(np.random.default_rng(seed + 1), n))
    ]


class TestEngineParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_batch_equals_legacy(self, params, seed):
        slots = 60
        batch_agents = _coin_agents(params, 25, seed)
        legacy_agents = _coin_agents(params, 25, seed)
        batch = Simulator(batch_agents, Channel(params), engine="batch")
        legacy = Simulator(legacy_agents, Channel(params), engine="legacy")
        batch.run(slots, label="parity")
        legacy.run(slots, label="parity")
        assert batch.trace.records == legacy.trace.records
        assert [a.heard for a in batch_agents] == [a.heard for a in legacy_agents]

    def test_batch_with_columnar_trace_equals_legacy_records(self, params):
        slots = 40
        batch_agents = _coin_agents(params, 18, 11)
        legacy_agents = _coin_agents(params, 18, 11)
        batch = Simulator(batch_agents, Channel(params), engine="batch", trace_level="columnar")
        legacy = Simulator(legacy_agents, Channel(params), engine="legacy")
        batch.run(slots, label="col")
        legacy.run(slots, label="col")
        assert batch.trace.records == legacy.trace.records
        assert batch.trace.slots_used == legacy.trace.slots_used
        assert batch.trace.transmissions_sent == legacy.trace.transmissions_sent
        assert batch.trace.successful_receptions == legacy.trace.successful_receptions
        assert batch.trace.busy_slots() == legacy.trace.busy_slots()

    def test_counts_trace_matches_records_trace(self, params):
        slots = 40
        counts_agents = _coin_agents(params, 18, 13)
        record_agents = _coin_agents(params, 18, 13)
        counts = Simulator(counts_agents, Channel(params), engine="batch", trace_level="counts")
        records = Simulator(record_agents, Channel(params), engine="batch")
        counts.run(slots)
        records.run(slots)
        assert counts.trace.slots_used == records.trace.slots_used
        assert counts.trace.transmissions_sent == records.trace.transmissions_sent
        assert counts.trace.successful_receptions == records.trace.successful_receptions
        assert counts.trace.busy_slots() == records.trace.busy_slots()
        assert counts.trace.summary() == records.trace.summary()
        with pytest.raises(ValueError):
            counts.trace.records

    def test_batch_engine_falls_back_on_custom_channel(self, params):
        # A Channel subclass may override resolve(); the batch engine must
        # route through the object path, not bypass it via index arrays.
        class MuteChannel(Channel):
            def resolve(self, transmissions, listeners):
                return {}

        agents = _coin_agents(params, 10, 17)
        simulator = Simulator(agents, MuteChannel(params), engine="batch")
        simulator.run(30)
        assert all(not agent.heard for agent in agents)
        assert simulator.trace.successful_receptions == 0

    def test_bad_power_raises_even_when_every_agent_transmits(self, params):
        # Matches the legacy engine, where Transmission.__post_init__ raises
        # for every action even in a slot with no listeners.
        class BadPowerAgent(_CoinAgent):
            def act_batch(self, slot):
                return 0.0, None

        agents = _coin_agents(params, 4, 23)
        bad = [BadPowerAgent(a.node, a.rng, a.power) for a in agents]
        simulator = Simulator(bad, Channel(params), engine="batch")
        with pytest.raises(ValueError, match="power must be positive"):
            simulator.step()

    def test_invalid_engine_and_trace_level_rejected(self, params):
        agents = _coin_agents(params, 4, 19)
        with pytest.raises(ValueError):
            Simulator(agents, Channel(params), engine="warp")
        with pytest.raises(ValueError):
            Simulator(agents[:2], Channel(params), trace_level="everything")


class TestColumnarTrace:
    def test_record_roundtrip(self):
        trace = ColumnarTrace(metadata={"phase": "t"})
        trace.record(SlotRecord(slot=0, transmitters=(1, 2), receptions={3: 1}, label="a"))
        trace.record(SlotRecord(slot=1, transmitters=(), receptions={}, label="b"))
        assert trace.slots_used == 2
        assert trace.busy_slots() == 1
        assert trace.transmissions_sent == 2
        assert trace.successful_receptions == 1
        assert trace.records[0] == SlotRecord(0, (1, 2), {3: 1}, "a")
        assert len(trace.slots_with_label("b")) == 1
        assert trace.summary()["phase"] == "t"

    def test_is_an_execution_trace(self):
        assert isinstance(ColumnarTrace(), ExecutionTrace)

    def test_counts_mode_aggregates_only(self):
        trace = ColumnarTrace(reception_detail=False)
        trace.append_slot(0, [5, 6], [(7, 5)], "x")
        assert trace.slots_used == 1
        assert trace.transmissions_sent == 2
        assert trace.successful_receptions == 1
        with pytest.raises(ValueError):
            trace.records
        with pytest.raises(ValueError):
            trace.slots_with_label("x")


class TestLinkSucceedsVectorized:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_reference(self, params, seed):
        rng = np.random.default_rng(300 + seed)
        nodes, transmissions = _random_instance(rng, 14)
        sender, receiver = nodes[-2], nodes[-1]
        power = float(rng.uniform(0.5, 20.0))
        channel = Channel(params)
        result = channel.link_succeeds(sender, receiver, power, transmissions)

        others = [
            (t.sender, t.power) for t in transmissions if t.sender.id != sender.id
        ]
        if any(node.id == receiver.id for node, _ in others):
            expected = False
        else:
            distance = sender.distance_to(receiver)
            signal = power / distance**params.alpha
            interference = sum(
                p / max(node.distance_to(receiver), 1e-300) ** params.alpha
                for node, p in others
            )
            expected = signal / (params.noise + interference) >= params.beta
        assert result == expected

    def test_cached_channel_agrees_with_plain(self, params):
        rng = np.random.default_rng(9)
        nodes, transmissions = _random_instance(rng, 14)
        sender, receiver = nodes[-2], nodes[-1]
        plain = Channel(params)
        cached = CachedChannel(params, nodes)
        for power in (0.5, 3.0, 40.0):
            assert plain.link_succeeds(sender, receiver, power, transmissions) == (
                cached.link_succeeds(sender, receiver, power, transmissions)
            )

    def test_outside_universe_falls_back(self, params):
        nodes = [make_node(0, 0.0, 0.0), make_node(1, 1.0, 0.0)]
        cached = CachedChannel(params, nodes)
        stranger = make_node(99, 0.5, 4.0)
        concurrent = [Transmission(stranger, 2.0, "j")]
        plain = Channel(params)
        assert cached.link_succeeds(nodes[0], nodes[1], 5.0, concurrent) == (
            plain.link_succeeds(nodes[0], nodes[1], 5.0, concurrent)
        )
