"""Tests for repro.sinr.affectance."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.links import Link
from repro.sinr import (
    SINRParameters,
    UniformPower,
    LinearPower,
    affectance,
    affectance_between_links,
    affectance_matrix,
    average_affectance,
    incoming_affectance,
    link_cost,
    outgoing_affectance,
    total_affectance,
)

from .conftest import make_node


def _two_links(gap: float) -> tuple[Link, Link]:
    """Two unit links separated horizontally by ``gap``."""
    first = Link(make_node(0, 0, 0), make_node(1, 1, 0))
    second = Link(make_node(2, gap, 0), make_node(3, gap + 1, 0))
    return first, second


class TestLinkCost:
    def test_cost_at_least_beta(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 2, 0))
        cost = link_cost(link, params.min_power_for(2.0), params)
        assert cost >= params.beta

    def test_cost_infinite_when_power_too_low(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 2, 0))
        assert math.isinf(link_cost(link, 1e-6, params))

    def test_zero_noise_cost_is_beta(self):
        params = SINRParameters(noise=0.0)
        link = Link(make_node(0, 0, 0), make_node(1, 2, 0))
        assert link_cost(link, 1.0, params) == pytest.approx(params.beta)

    def test_invalid_power_rejected(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        with pytest.raises(ValueError):
            link_cost(link, 0.0, params)


class TestScalarAffectance:
    def test_own_sender_has_zero_affectance(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        assert affectance(link.sender, 10.0, link, 10.0, params) == 0.0

    def test_decreases_with_distance(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        power = params.min_power_for(1.0)
        near = affectance(make_node(9, 3, 0), power, link, power, params)
        far = affectance(make_node(9, 30, 0), power, link, power, params)
        assert near > far

    def test_capped_at_one_plus_epsilon(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        power = params.min_power_for(1.0)
        value = affectance(make_node(9, 1.001, 0.0), 1e9 * power, link, power, params)
        assert value == pytest.approx(1.0 + params.epsilon)

    def test_colocated_interferer_saturates(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        power = params.min_power_for(1.0)
        value = affectance(make_node(9, 1.0, 0.0), power, link, power, params)
        assert value == pytest.approx(1.0 + params.epsilon)

    def test_scales_with_interferer_power(self, params):
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        power = params.min_power_for(1.0)
        weak = affectance(make_node(9, 10, 0), power, link, power, params)
        strong = affectance(make_node(9, 10, 0), 4 * power, link, power, params)
        assert strong == pytest.approx(4 * weak)


class TestAffectanceMatrix:
    def test_diagonal_is_zero(self, params, chain_links):
        power = UniformPower.for_max_length(params, 4.0)
        matrix = affectance_matrix(list(chain_links), power, params)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matches_scalar_computation(self, params):
        first, second = _two_links(10.0)
        power = UniformPower.for_max_length(params, 1.0)
        matrix = affectance_matrix([first, second], power, params)
        scalar = affectance_between_links(first, second, power, params)
        assert matrix[0, 1] == pytest.approx(scalar)

    def test_far_links_have_small_affectance(self, params):
        first, second = _two_links(1000.0)
        power = UniformPower.for_max_length(params, 1.0)
        matrix = affectance_matrix([first, second], power, params)
        assert matrix[0, 1] < 1e-6

    def test_incoming_and_outgoing_sums(self, params, chain_links):
        power = UniformPower.for_max_length(params, 4.0)
        matrix = affectance_matrix(list(chain_links), power, params)
        assert np.allclose(incoming_affectance(list(chain_links), power, params), matrix.sum(axis=0))
        assert np.allclose(outgoing_affectance(list(chain_links), power, params), matrix.sum(axis=1))

    def test_total_and_average(self, params, chain_links):
        power = UniformPower.for_max_length(params, 4.0)
        total = total_affectance(list(chain_links), power, params)
        avg = average_affectance(list(chain_links), power, params)
        assert avg == pytest.approx(total / len(chain_links))

    def test_empty_and_singleton(self, params):
        power = UniformPower(1.0)
        assert affectance_matrix([], power, params).shape == (0, 0)
        link = Link(make_node(0, 0, 0), make_node(1, 1, 0))
        assert average_affectance([link], UniformPower.for_max_length(params, 1.0), params) == 0.0

    def test_same_sender_entries_zeroed(self, params):
        shared = make_node(0, 0, 0)
        first = Link(shared, make_node(1, 1, 0))
        second = Link(shared, make_node(2, 0, 1))
        power = UniformPower.for_max_length(params, 1.0)
        matrix = affectance_matrix([first, second], power, params)
        assert matrix[0, 1] == 0.0
        assert matrix[1, 0] == 0.0

    def test_linear_power_favors_long_links_over_uniform(self, params):
        # Under linear power, a short interferer bothers a long link less than
        # under uniform power (relative to the long link's received signal).
        long_link = Link(make_node(0, 0, 0), make_node(1, 8, 0))
        short_link = Link(make_node(2, 20, 0), make_node(3, 21, 0))
        uniform = UniformPower.for_max_length(params, 8.0)
        linear = LinearPower.for_noise(params)
        a_uniform = affectance_between_links(short_link, long_link, uniform, params)
        a_linear = affectance_between_links(short_link, long_link, linear, params)
        assert a_linear < a_uniform
