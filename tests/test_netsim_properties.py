"""Property tests: fault reproducibility and crash-survivability invariants.

Two families:

* **Bit-reproducible faults** - every fault decision is a pure function of
  ``(seed, sender, receiver, slot)``, so traces must be identical across
  query orders, node subsets, repeated runs and worker counts.
* **Crash survivability** - whatever partial forest a crash-interrupted
  ``Init`` leaves behind, the repair machinery must complete it into a valid
  spanning tree of the survivors, on every seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import map_trials
from repro.geometry import uniform_random
from repro.netsim import CrashSchedule, FaultPlan, LatencyModel, NetInitBuilder
from repro.sinr import SINRParameters

PARAMS = SINRParameters(alpha=3.0, beta=1.5, noise=1.0, epsilon=0.1)


def _lossy_plan(seed: int, ids: list[int], *, crashes: int = 0) -> FaultPlan:
    schedule = (
        CrashSchedule.sample(ids, crashes, horizon=120, seed=seed, min_slot=8)
        if crashes
        else CrashSchedule()
    )
    return FaultPlan(
        seed=seed,
        drop_prob=0.12,
        latency=LatencyModel(delay_prob=0.05, mean_slots=1.5, max_slots=3),
        crashes=schedule,
    )


def _digest_trial(args: tuple[int, int]) -> tuple[str, int, tuple]:
    """Module-level (picklable) trial: run a lossy Init, return fingerprints."""
    n, seed = args
    nodes = uniform_random(n, np.random.default_rng(seed))
    ids = [node.id for node in nodes]
    plan = _lossy_plan(seed, ids, crashes=1)
    outcome = NetInitBuilder(PARAMS, plan=plan).build(nodes, np.random.default_rng(seed + 50))
    assert outcome.fault_digest is not None
    return (
        outcome.fault_digest,
        outcome.slots_used,
        tuple(sorted(outcome.tree.parent.items())),
    )


class TestFaultDeterminism:
    def test_drop_decisions_independent_of_query_order(self):
        plan = FaultPlan(seed=21, drop_prob=0.3)
        dst = np.arange(200, dtype=np.int64)
        forward = plan.dropped(5, dst, 17)
        # Reversed order, then undone: the per-message decision must match.
        backward = plan.dropped(5, dst[::-1], 17)[::-1]
        assert np.array_equal(forward, backward)

    def test_drop_decisions_independent_of_subset(self):
        plan = FaultPlan(seed=21, drop_prob=0.3)
        dst = np.arange(200, dtype=np.int64)
        full = plan.dropped(5, dst, 17)
        subset = np.array([3, 77, 141], dtype=np.int64)
        assert np.array_equal(plan.dropped(5, subset, 17), full[subset])

    def test_delay_decisions_independent_of_subset(self):
        model = LatencyModel(delay_prob=0.5, mean_slots=2.0, max_slots=5)
        dst = np.arange(150, dtype=np.int64)
        full = model.delays(33, 4, dst, 9)
        subset = np.array([0, 50, 149], dtype=np.int64)
        assert np.array_equal(model.delays(33, 4, subset, 9), full[subset])

    def test_repeated_runs_bit_identical(self):
        first = _digest_trial((32, 5))
        second = _digest_trial((32, 5))
        assert first == second

    def test_digest_identical_across_worker_counts(self):
        """The acceptance pin: workers=1 and workers=2 see the same faults."""
        jobs = [(32, 1), (32, 2), (24, 3)]
        sequential = map_trials(_digest_trial, jobs, workers=1)
        parallel = map_trials(_digest_trial, jobs, workers=2)
        assert sequential == parallel

    def test_heartbeat_loss_is_per_identity(self):
        plan = FaultPlan(seed=9, drop_prob=0.0, heartbeat_drop_prob=0.5)
        history = [plan.heartbeat_dropped(3, slot) for slot in range(100)]
        assert history == [plan.heartbeat_dropped(3, slot) for slot in range(100)]
        assert any(history) and not all(history)


class TestCrashSurvivability:
    @pytest.mark.parametrize("seed", range(6))
    def test_crash_during_init_always_completable(self, seed):
        """Whatever forest the crashes leave, the repairer completes it."""
        nodes = uniform_random(32, np.random.default_rng(seed))
        ids = [node.id for node in nodes]
        plan = _lossy_plan(seed, ids, crashes=2)
        outcome = NetInitBuilder(PARAMS, plan=plan, delivery="reliable").build(
            nodes, np.random.default_rng(seed + 100)
        )
        outcome.tree.validate()
        alive = set(ids) - set(outcome.crashed)
        assert set(outcome.tree.nodes) == alive
        assert outcome.tree.is_strongly_connected()

    def test_crash_recovery_rejoins_the_tree(self):
        """A crash window that closes before the end leaves the node spanned."""
        nodes = uniform_random(24, np.random.default_rng(40))
        ids = [node.id for node in nodes]
        schedule = CrashSchedule.sample(
            ids, 2, horizon=60, seed=40, min_slot=8, recover_after=12
        )
        plan = FaultPlan(seed=40, drop_prob=0.1, crashes=schedule)
        outcome = NetInitBuilder(PARAMS, plan=plan).build(
            nodes, np.random.default_rng(41)
        )
        outcome.tree.validate()
        assert outcome.crashed == frozenset()
        assert set(outcome.tree.nodes) == set(ids)
        assert outcome.fault_summary["recoveries"] == 2

    def test_completion_patch_continues_fault_streams(self):
        """A run that needed a patch reports patch slots and stays spanning."""
        found_patch = False
        for seed in range(12):
            nodes = uniform_random(32, np.random.default_rng(seed))
            ids = [node.id for node in nodes]
            plan = _lossy_plan(seed, ids, crashes=2)
            outcome = NetInitBuilder(PARAMS, plan=plan).build(
                nodes, np.random.default_rng(seed + 100)
            )
            if outcome.completed_by_repair:
                found_patch = True
                assert outcome.completion_slots >= 0
                assert outcome.reattached
                assert outcome.slots_used >= outcome.completion_slots
        assert found_patch, "no seed exercised the completion patch"
