"""Shared-memory NetworkState export/attach (repro.state.shared).

The fabric's zero-copy broadcast hinges on three properties: the attached
arrays are bitwise the exporter's, the attached state is usable by every
view/channel built on top, and it is immutable - a worker can never corrupt
geometry other workers (and the parent) are reading.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Node, Point, deployment_by_name
from repro.sinr import CachedChannel, SINRParameters
from repro.state import NetworkState, attach_state, export_state


@pytest.fixture
def state() -> NetworkState:
    nodes = deployment_by_name("uniform", 24, np.random.default_rng(3))
    state = NetworkState(nodes)
    state.distance_matrix()
    return state


class TestExportAttach:
    def test_roundtrip_is_bitwise(self, state):
        params = SINRParameters()
        state.attenuation_matrix(params.alpha)
        export = export_state(state, alphas=(params.alpha,))
        try:
            attached = attach_state(export.spec)
            n = len(state)
            assert np.array_equal(attached.xy, state.xy[:n])
            assert np.array_equal(attached.ids, state.ids[:n])
            assert np.array_equal(attached.distance_matrix(), state.distance_matrix()[:n, :n])
            assert np.array_equal(
                attached.attenuation_matrix(params.alpha),
                state.attenuation_matrix(params.alpha)[:n, :n],
            )
        finally:
            export.close()

    def test_attached_state_serves_channels(self, state):
        params = SINRParameters()
        export = export_state(state, alphas=(params.alpha,))
        try:
            attached = attach_state(export.spec)
            original = CachedChannel(params, state=state)
            shared = CachedChannel(params, state=attached)
            tx = np.array([0, 5, 11], dtype=np.intp)
            powers = np.full(3, params.min_power_for(1.5))
            expected = original.resolve_indices_full(tx, powers)
            got = shared.resolve_indices_full(tx, powers)
            for left, right in zip(got, expected):
                assert np.array_equal(left, right, equal_nan=True)
        finally:
            export.close()

    def test_attachment_survives_parent_unlink(self, state):
        export = export_state(state)
        attached = attach_state(export.spec)
        export.close()  # parent done with the sweep; mapping must stay valid
        assert np.isfinite(attached.distance_matrix()).all()
        assert attached.node_at(0).id == state.node_at(0).id

    def test_non_compact_state_rejected(self, state):
        state.remove_nodes([state.node_at(2).id])
        with pytest.raises(ValueError, match="compact"):
            export_state(state)

    def test_lookup_api_on_attached_state(self, state):
        export = export_state(state)
        try:
            attached = attach_state(export.spec)
            for slot in range(len(state)):
                node = state.node_at(slot)
                assert attached.slot_of_id(node.id) == slot
                assert attached.node_at(slot).id == node.id
                assert node.id in attached
            assert len(attached) == len(state)
        finally:
            export.close()


class TestReadOnlyGuard:
    def test_attached_state_rejects_mutation(self, state):
        export = export_state(state)
        try:
            attached = attach_state(export.spec)
            assert attached.readonly
            with pytest.raises(ValueError, match="read-only"):
                attached.add_nodes([Node(id=999, position=Point(0.5, 0.5))])
            with pytest.raises(ValueError, match="read-only"):
                attached.remove_nodes([attached.node_at(0).id])
            with pytest.raises(ValueError, match="read-only"):
                attached.move_nodes(np.array([0]), np.array([[0.1, 0.1]]))
        finally:
            export.close()

    def test_regular_state_stays_mutable(self, state):
        assert not state.readonly
        state.move_nodes(np.array([0]), np.array([[0.25, 0.25]]))


class TestFromArrays:
    def test_duplicate_ids_rejected(self):
        xy = np.zeros((2, 2))
        with pytest.raises(ValueError, match="duplicate"):
            NetworkState.from_arrays(xy, np.array([4, 4]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            NetworkState.from_arrays(np.zeros((3, 2)), np.array([1, 2]))

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            NetworkState.from_arrays(np.zeros((2, 2)), np.array([1, -1]))

    def test_lazy_matrices_on_adopted_arrays(self):
        rng = np.random.default_rng(1)
        xy = rng.random((6, 2))
        ids = np.arange(6)
        adopted = NetworkState.from_arrays(xy, ids)
        reference = NetworkState(
            [Node(id=int(i), position=Point(float(x), float(y))) for i, (x, y) in zip(ids, xy)]
        )
        assert np.array_equal(adopted.distance_matrix(), reference.distance_matrix())
        assert np.array_equal(adopted.attenuation_matrix(3.0), reference.attenuation_matrix(3.0))
