"""Tests for repro.sinr.parameters."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sinr import DEFAULT_PARAMETERS, SINRParameters


class TestValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_PARAMETERS.alpha > 2.0
        assert DEFAULT_PARAMETERS.beta > 0.0

    def test_alpha_must_exceed_two(self):
        with pytest.raises(ConfigurationError):
            SINRParameters(alpha=2.0)

    def test_beta_positive(self):
        with pytest.raises(ConfigurationError):
            SINRParameters(beta=0.0)

    def test_noise_non_negative(self):
        with pytest.raises(ConfigurationError):
            SINRParameters(noise=-0.1)

    def test_epsilon_positive(self):
        with pytest.raises(ConfigurationError):
            SINRParameters(epsilon=0.0)

    def test_max_power_positive_if_given(self):
        with pytest.raises(ConfigurationError):
            SINRParameters(max_power=0.0)
        assert SINRParameters(max_power=10.0).max_power == 10.0

    def test_max_power_negative_cap_rejected(self):
        """Non-positive caps must hit the ConfigurationError branch, not pass."""
        for bad_cap in (-1e-9, -1.0, -1e9, float("-inf")):
            with pytest.raises(ConfigurationError):
                SINRParameters(max_power=bad_cap)

    def test_max_power_unset_means_uncapped(self):
        assert SINRParameters().max_power is None
        assert SINRParameters(max_power=None).max_power is None

    def test_with_overrides(self):
        params = SINRParameters().with_overrides(alpha=4.0)
        assert params.alpha == 4.0
        assert params.beta == SINRParameters().beta


class TestMinPower:
    def test_matches_paper_formula_for_slack_two(self):
        params = SINRParameters(alpha=3.0, beta=2.0, noise=1.0)
        # P = 2 * beta * N * d**alpha for slack 2.
        assert params.min_power_for(4.0, slack=2.0) == pytest.approx(2 * 2.0 * 1.0 * 64.0)

    def test_larger_slack_needs_less_power(self):
        params = SINRParameters()
        assert params.min_power_for(2.0, slack=4.0) < params.min_power_for(2.0, slack=2.0)

    def test_zero_noise_needs_no_power(self):
        params = SINRParameters(noise=0.0)
        assert params.min_power_for(10.0) == 0.0

    def test_slack_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            SINRParameters().min_power_for(1.0, slack=1.0)

    def test_length_must_be_positive(self):
        with pytest.raises(ValueError):
            SINRParameters().min_power_for(0.0)

    def test_min_power_keeps_cost_below_slack_beta(self):
        from repro.links import Link
        from repro.sinr import link_cost

        from .conftest import make_node

        params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)
        link = Link(make_node(0, 0, 0), make_node(1, 3, 0))
        power = params.min_power_for(link.length, slack=2.0)
        assert link_cost(link, power, params) == pytest.approx(2.0 * params.beta)
