"""Unit tests for ``repro.obs``: registry, spans, kernel timers, exporters.

The parity claims (telemetry never perturbs experiment results, counters
merge exactly across worker counts) live in ``test_obs_parity.py``; this
file pins the mechanics — instrument bookkeeping, payload merges, the
enabled-guard fast path, exporter round-trips, and the Chrome trace
validator's accept/reject behaviour.
"""

import json

import numpy as np
import pytest

from repro.obs import (
    OBS,
    MetricsRegistry,
    begin_span,
    chrome_trace,
    disable,
    enable,
    end_span,
    instrument_kernels,
    kernel_timers_active,
    prometheus_text,
    read_jsonl,
    registry_to_jsonl,
    span,
    telemetry,
    telemetry_enabled,
    top_allocations,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _quiet_telemetry():
    """Every test starts and ends with telemetry off and a fresh registry."""
    previous = (OBS.enabled, OBS.registry)
    OBS.enabled = False
    OBS.registry = MetricsRegistry()
    yield
    OBS.enabled, OBS.registry = previous


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("sim.slots", 480)
    registry.inc("netsim.dropped", 13, loss=0.1)
    registry.inc("netsim.dropped", 7, loss=0.2)
    registry.gauge("fabric.workers").set(4)
    hist = registry.histogram("decode.dur_ns", buckets=(10.0, 100.0, 1000.0))
    for value in (5, 50, 500, 5000):
        hist.observe(value)
    registry.record_span("trial", 1_700_000_000_000_000_000, 2_500_000, {"index": 3}, pid=7, tid=1)
    return registry


class TestRegistry:
    def test_counters_are_keyed_by_labels(self):
        registry = populated_registry()
        assert registry.counter_value("netsim.dropped", loss=0.1) == 13
        assert registry.counter_value("netsim.dropped", loss=0.2) == 7
        assert registry.counter_value("netsim.dropped") == 0
        assert registry.counter_totals()["netsim.dropped"] == 20

    def test_payload_round_trip_is_exact(self):
        registry = populated_registry()
        rebuilt = MetricsRegistry.from_payload(registry.to_payload())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_merge_sums_counters_and_histograms(self):
        a = populated_registry()
        b = populated_registry()
        a.merge_payload(b.to_payload())
        assert a.counter_value("sim.slots") == 960
        assert a.counter_value("netsim.dropped", loss=0.1) == 26
        name, _, hist = next(iter(a.histograms()))
        assert name == "decode.dur_ns"
        assert hist.count == 8
        assert hist.counts == [2, 2, 2, 2]
        assert len(a.spans) == 2

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0))
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge_payload(b.to_payload())

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestRuntimeAndSpans:
    def test_enabled_guard_defaults_off(self):
        assert not telemetry_enabled()
        assert begin_span("anything") is None
        end_span(None)  # must be a no-op, not an error
        with span("ignored", label="x"):
            pass
        assert OBS.registry.snapshot()["spans"] == ()

    def test_telemetry_scope_restores_prior_state(self):
        outer = enable()
        outer.inc("outer")
        with telemetry() as inner:
            assert telemetry_enabled()
            inner.inc("inner")
            assert OBS.registry is inner
        assert OBS.registry is outer
        assert outer.counter_value("inner") == 0
        disable()
        assert not telemetry_enabled()

    def test_span_records_labels_and_duration(self):
        with telemetry() as registry:
            with span("netsim.phase", label="init", budget=100):
                pass
        (event,) = registry.spans
        assert event.name == "netsim.phase"
        assert dict(event.labels) == {"label": "init", "budget": "100"}
        assert event.dur_ns >= 0
        assert event.ts_ns > 0


class TestKernelTimers:
    def test_instrument_and_restore(self):
        from repro.state import kernels as state_kernels

        original = state_kernels.pairwise_distances
        assert not kernel_timers_active()
        instrumentation = instrument_kernels()
        try:
            assert kernel_timers_active()
            assert state_kernels.pairwise_distances is not original
            # Idempotent: a second call is a no-op handle over the same wrap.
            again = instrument_kernels()
            assert state_kernels.pairwise_distances.__repro_kernel_timer__
            again.restore()
        finally:
            instrumentation.restore()
        assert state_kernels.pairwise_distances is original
        assert not kernel_timers_active()

    def test_wrapped_kernel_counts_calls_and_preserves_output(self):
        from repro.state import kernels as state_kernels

        xy = np.array([[0.0, 0.0], [3.0, 4.0]])
        expected = state_kernels.pairwise_distances(xy)
        with instrument_kernels():
            with telemetry() as registry:
                timed = state_kernels.pairwise_distances(xy)
        np.testing.assert_array_equal(timed, expected)
        assert registry.counter_value("kernel.calls", kernel="pairwise_distances") == 1
        assert registry.counter_value("kernel.time_ns", kernel="pairwise_distances") > 0

    def test_disabled_telemetry_records_nothing_through_wrapper(self):
        from repro.state import kernels as state_kernels

        xy = np.array([[0.0, 0.0], [1.0, 0.0]])
        with instrument_kernels():
            state_kernels.pairwise_distances(xy)
        assert OBS.registry.counter_totals() == {}


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        registry = populated_registry()
        path = write_jsonl(registry, tmp_path / "metrics.jsonl")
        rebuilt = read_jsonl(path)
        assert rebuilt.snapshot() == registry.snapshot()

    def test_jsonl_rejects_unknown_rows(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_jsonl_text_is_line_delimited_json(self):
        lines = registry_to_jsonl(populated_registry()).splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows[0]["type"] == "meta"
        assert {"counter", "gauge", "histogram", "span"} <= {r["type"] for r in rows[1:]}

    def test_prometheus_text_shape(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE sim_slots counter" in text
        assert 'netsim_dropped{loss="0.1"} 13' in text
        assert "decode_dur_ns_bucket" in text
        assert 'le="+Inf"' in text
        assert "decode_dur_ns_count 4" in text

    def test_chrome_trace_validates_and_round_trips(self, tmp_path):
        registry = populated_registry()
        trace = chrome_trace(registry)
        validate_chrome_trace(trace)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        (event,) = events
        assert event["name"] == "trial"
        assert event["dur"] == pytest.approx(2500.0)  # 2.5 ms in microseconds
        assert event["args"] == {"index": "3"}
        path = write_chrome_trace(registry, tmp_path / "trace.json")
        validate_chrome_trace(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "trace",
        [
            {"traceEvents": "nope"},
            {"traceEvents": [{"ph": "X", "name": "t", "ts": 1.0}]},
            {"traceEvents": [{"ph": "X", "name": "t", "ts": 1.0, "dur": -5, "pid": 1, "tid": 1}]},
            {"traceEvents": [{"ph": "M", "name": "mystery_meta", "args": {}}]},
        ],
    )
    def test_chrome_trace_validator_rejects(self, trace):
        with pytest.raises(ValueError):
            validate_chrome_trace(trace)


class TestProfilingHelper:
    def test_top_allocations_returns_result_and_rows(self):
        result, rows = top_allocations(lambda: [bytearray(4096) for _ in range(8)], top=5)
        assert len(result) == 8
        assert rows
        assert {"kib", "blocks", "location"} <= set(rows[0])
        assert rows[0]["kib"] > 0
