"""Tests for the NetworkState backbone (repro.state).

The heart of the suite is a Hypothesis-style property test: seeded random
sequences of interleaved add/remove/move events are driven through one
``NetworkState`` (sized to cross capacity-growth boundaries repeatedly) and
after *every* step each derived matrix - distance, attenuation at several
exponents, fade under every gain model - is asserted bitwise equal to a
from-scratch rebuild at the current membership.  The view/channel layers are
pinned the same way: a cache that lived through churn must decode exactly
like one built fresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import DeterministicPathLoss, LogNormalShadowing, RayleighFading
from repro.geometry import Node, Point, uniform_random
from repro.links import Link
from repro.sinr import (
    CachedChannel,
    LinkArrayCache,
    NodeArrayCache,
    SINRParameters,
    UniformPower,
)
from repro.state import NetworkState, attenuation_from_distances, pairwise_distances

ALPHAS = (2.5, 3.0)
SHADOW = LogNormalShadowing(sigma_db=5.0, seed=42)


def _node(node_id: int, rng: np.random.Generator) -> Node:
    x, y = rng.uniform(0.0, 50.0, size=2)
    return Node(id=node_id, position=Point(float(x), float(y)))


def _seed_attenuation(dist: np.ndarray, alpha: float) -> np.ndarray:
    """Seed-convention oracle for :func:`attenuation_from_distances`."""
    return np.where(dist <= 0, 0.0, np.maximum(dist, 1e-300) ** alpha)


def _materialize(state: NetworkState) -> None:
    state.distance_matrix()
    for alpha in ALPHAS:
        state.attenuation_matrix(alpha)
    state.fade_matrix(SHADOW)


def _assert_matches_rebuild(state: NetworkState) -> None:
    """Every live-slot block of every derived matrix equals a fresh rebuild."""
    live = state.live_slots()
    nodes = [state.node_at(slot) for slot in live.tolist()]
    fresh = NetworkState(nodes)
    block = np.ix_(live, live)
    assert np.array_equal(state.xy[live], fresh.xy[: len(nodes)])
    assert np.array_equal(state.ids[live], fresh.ids[: len(nodes)])
    assert np.array_equal(state.distance_matrix()[block], fresh.distance_matrix())
    for alpha in ALPHAS:
        assert np.array_equal(
            state.attenuation_matrix(alpha)[block], fresh.attenuation_matrix(alpha)
        )
    assert np.array_equal(state.fade_matrix(SHADOW)[block], fresh.fade_matrix(SHADOW))


class TestKernels:
    def test_pairwise_distances_matches_hypot(self, rng):
        a = rng.uniform(0.0, 10.0, size=(6, 2))
        b = rng.uniform(0.0, 10.0, size=(4, 2))
        expected = np.hypot(a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1])
        assert np.array_equal(pairwise_distances(a, b), expected)
        assert np.array_equal(pairwise_distances(a), pairwise_distances(a, a))

    def test_attenuation_matches_seed_convention_exactly(self, rng):
        """Parity oracle: ``d**alpha`` with colocated pairs stored as zero."""
        dist = rng.uniform(0.0, 10.0, size=(7, 7))
        np.fill_diagonal(dist, 0.0)
        expected = _seed_attenuation(dist, 3.5)
        assert np.array_equal(attenuation_from_distances(dist, 3.5), expected)

    def test_attenuation_kernel_convention(self):
        dist = np.array([[0.0, 2.0], [3.0, 0.0]])
        att = attenuation_from_distances(dist, 3.0)
        assert att[0, 0] == 0.0 and att[1, 1] == 0.0
        assert att[0, 1] == 2.0**3.0 and att[1, 0] == 3.0**3.0
        # Dividing a positive power by the kernel output reproduces the
        # np.where(dist <= 0, inf, P / max(dist, 1e-300)**alpha) convention.
        with np.errstate(divide="ignore"):
            received = 5.0 / att
        assert received[0, 0] == np.inf

    def test_both_caches_route_through_one_kernel(self, rng, params):
        """The d**alpha denominator is the same kernel for nodes and links."""
        nodes = uniform_random(8, rng)
        node_cache = NodeArrayCache(nodes)
        expected = attenuation_from_distances(
            np.array(node_cache.distance_matrix()), params.alpha
        )
        assert np.array_equal(node_cache.attenuation_matrix(params.alpha), expected)

        links = [Link(nodes[i], nodes[i + 1]) for i in range(0, 6, 2)]
        link_cache = LinkArrayCache(links)
        with np.errstate(divide="ignore"):
            gains = 1.0 / attenuation_from_distances(
                np.array(link_cache.distance_matrix().T), params.alpha
            )
        assert np.array_equal(link_cache.gain_matrix(params), gains)


class TestNetworkStateBasics:
    def test_initial_population_and_capacity(self, rng):
        nodes = uniform_random(10, rng)
        state = NetworkState(nodes)
        assert len(state) == 10 and state.capacity == 10
        assert [n.id for n in state] == [n.id for n in nodes]
        reserved = NetworkState(nodes, capacity=32)
        assert reserved.capacity == 32 and len(reserved) == 10

    def test_validation(self, rng):
        nodes = uniform_random(4, rng)
        with pytest.raises(ValueError):
            NetworkState(nodes, capacity=2)
        with pytest.raises(ValueError):
            NetworkState(nodes + [nodes[0]])
        state = NetworkState(nodes)
        with pytest.raises(ValueError):
            state.add_nodes([nodes[0]])
        with pytest.raises(KeyError):
            state.remove_nodes([999])
        with pytest.raises(ValueError):
            state.fade_matrix(RayleighFading(seed=1))  # slot-dependent

    def test_from_links_dedupes_endpoints_in_first_appearance_order(self, rng):
        nodes = uniform_random(5, rng)
        links = [Link(nodes[0], nodes[1]), Link(nodes[2], nodes[0]), Link(nodes[1], nodes[3])]
        state = NetworkState.from_links(links)
        assert [n.id for n in state] == [nodes[0].id, nodes[1].id, nodes[2].id, nodes[3].id]
        assert len(state) == 4

    def test_remove_releases_slot_and_add_reuses_it(self, rng):
        nodes = uniform_random(5, rng)
        state = NetworkState(nodes)
        slot = state.slot_of_id(nodes[2].id)
        state.remove_nodes([nodes[2].id])
        assert len(state) == 4 and nodes[2].id not in state
        newcomer = _node(100, rng)
        assigned = state.add_nodes([newcomer])
        assert assigned.tolist() == [slot]  # lowest free slot reused
        assert state.capacity == 5  # no growth needed

    def test_growth_preserves_live_values_bitwise(self, rng):
        nodes = uniform_random(6, rng)
        state = NetworkState(nodes)
        _materialize(state)
        before = {
            "dist": np.array(state.distance_matrix()),
            "fade": np.array(state.fade_matrix(SHADOW)),
        }
        state.add_nodes([_node(50 + k, rng) for k in range(4)])  # forces growth
        assert state.capacity >= 10
        assert np.array_equal(state.distance_matrix()[:6, :6], before["dist"])
        assert np.array_equal(state.fade_matrix(SHADOW)[:6, :6], before["fade"])
        _assert_matches_rebuild(state)

    def test_deterministic_model_fades_stay_none(self, rng):
        state = NetworkState(uniform_random(4, rng))
        assert state.fade_matrix(DeterministicPathLoss()) is None
        state.add_nodes([_node(77, rng)])
        assert state.fade_matrix(DeterministicPathLoss()) is None

    def test_patch_cost_counter_is_o_damage(self, rng):
        state = NetworkState(uniform_random(64, rng), capacity=80)
        _materialize(state)
        base = state.cells_patched
        state.add_nodes([_node(1000, rng)])
        added = state.cells_patched - base
        # One node patched: 2 * capacity cells per geometry matrix (dist +
        # two alphas + fade rows/cols) - far below a capacity**2 rebuild.
        assert 0 < added <= 8 * state.capacity
        assert added < state.capacity**2


class TestChurnSequenceProperty:
    """Random interleaved add/remove/move vs from-scratch rebuild, bitwise."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleavings_match_rebuild(self, seed):
        rng = np.random.default_rng([0xA11CE, seed])
        nodes = uniform_random(12, rng)
        # Tight capacity so additions repeatedly cross growth boundaries.
        state = NetworkState(nodes, capacity=13)
        _materialize(state)
        next_id = max(n.id for n in nodes) + 1
        for _ in range(40):
            op = rng.integers(0, 3)
            if op == 0:  # add 1-3 nodes
                count = int(rng.integers(1, 4))
                state.add_nodes([_node(next_id + k, rng) for k in range(count)])
                next_id += count
            elif op == 1 and len(state) > 2:  # remove 1-2 nodes
                ids = [int(i) for i in state.ids[state.live_slots()]]
                count = min(int(rng.integers(1, 3)), len(ids) - 1)
                victims = rng.choice(ids, size=count, replace=False)
                state.remove_nodes(victims.tolist())
            else:  # move 1-4 nodes
                live = state.live_slots()
                count = min(int(rng.integers(1, 5)), live.size)
                slots = rng.choice(live, size=count, replace=False).astype(np.intp)
                new_xy = state.xy[slots] + rng.normal(0.0, 2.0, size=(count, 2))
                state.move_nodes(slots, new_xy)
            _assert_matches_rebuild(state)

    def test_view_survives_churn_like_fresh_cache(self, rng):
        """A NodeArrayCache that lived through churn equals a fresh one."""
        nodes = uniform_random(16, rng)
        cache = NodeArrayCache(nodes)
        for alpha in ALPHAS:
            cache.attenuation_matrix(alpha)
        cache.remove_ids([nodes[3].id, nodes[9].id])
        cache.add_nodes([_node(200, rng), _node(201, rng)])
        idx = np.array([0, 5, 10], dtype=np.intp)
        cache.update_positions(idx, cache.xy[idx] + rng.normal(0.0, 1.0, size=(3, 2)))

        fresh = NodeArrayCache(cache.nodes)
        assert np.array_equal(cache.ids, fresh.ids)
        assert np.array_equal(cache.xy, fresh.xy)
        assert np.array_equal(cache.distance_matrix(), fresh.distance_matrix())
        for alpha in ALPHAS:
            assert np.array_equal(
                cache.attenuation_matrix(alpha), fresh.attenuation_matrix(alpha)
            )
        assert np.array_equal(cache.fade_matrix(SHADOW), fresh.fade_matrix(SHADOW))
        # Block accessors gather the same values the dense matrices hold.
        rows = np.array([1, 4], dtype=np.intp)
        cols = np.array([0, 2, 7], dtype=np.intp)
        assert np.array_equal(
            cache.distance_block(rows, cols),
            cache.distance_matrix()[np.ix_(rows, cols)],
        )
        assert np.array_equal(
            cache.attenuation_block(ALPHAS[0], rows, cols),
            cache.attenuation_matrix(ALPHAS[0])[np.ix_(rows, cols)],
        )
        assert np.array_equal(
            cache.fade_block(SHADOW, rows, cols),
            cache.fade_matrix(SHADOW)[np.ix_(rows, cols)],
        )

    @pytest.mark.parametrize(
        "gain_model",
        [None, DeterministicPathLoss(), LogNormalShadowing(sigma_db=4.0, seed=9),
         RayleighFading(seed=9)],
        ids=["none", "deterministic", "shadowing", "rayleigh"],
    )
    def test_channel_decode_after_churn_matches_fresh_channel(self, gain_model):
        """Decodes through a churn-survivor channel equal a fresh channel's."""
        rng = np.random.default_rng(77)
        params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0).with_overrides(
            gain_model=gain_model
        )
        nodes = uniform_random(20, rng)
        channel = CachedChannel(params, nodes)
        channel.cache.attenuation_matrix(params.alpha)  # materialize pre-churn
        channel.cache.remove_ids([nodes[2].id, nodes[11].id])
        channel.cache.add_nodes([_node(300, rng), _node(301, rng), _node(302, rng)])
        idx = np.array([0, 6], dtype=np.intp)
        channel.cache.update_positions(idx, channel.cache.xy[idx] + 0.5)

        fresh = CachedChannel(params, channel.cache.nodes)
        tx = np.array([1, 8, 19], dtype=np.intp)
        rx = np.array([0, 3, 6, 12, 20], dtype=np.intp)
        powers = np.full(3, params.min_power_for(2.0))
        for slot in (None, 4):
            survived = channel.resolve_indices(tx, rx, powers, slot=slot)
            rebuilt = fresh.resolve_indices(tx, rx, powers, slot=slot)
            for a, b in zip(survived, rebuilt):
                assert np.array_equal(a, b)


class TestSharedStateViews:
    def test_link_cache_gathers_from_shared_state_bitwise(self, rng, params):
        """Gathered link distances == directly recomputed ones, bitwise."""
        nodes = uniform_random(12, rng)
        links = [Link(nodes[i], nodes[(i + 3) % 12]) for i in range(10)]
        private = LinkArrayCache(links)  # computes hypot itself

        shared = NetworkState(nodes)
        shared.distance_matrix()  # materialized: caches gather from it
        via_state = LinkArrayCache(links, state=shared)
        assert np.array_equal(via_state.distance_matrix(), private.distance_matrix())
        power = UniformPower(5.0)
        assert np.array_equal(
            via_state.affectance_matrix(power, params),
            private.affectance_matrix(power, params),
        )
        rows = np.array([0, 4], dtype=np.intp)
        cols = np.array([1, 2, 9], dtype=np.intp)
        assert np.array_equal(
            via_state.affectance_block(rows, cols, power, params),
            private.affectance_block(rows, cols, power, params),
        )

    def test_link_cache_rejects_unknown_endpoints(self, rng):
        nodes = uniform_random(4, rng)
        state = NetworkState(nodes[:2])
        with pytest.raises(ValueError):
            LinkArrayCache([Link(nodes[2], nodes[3])], state=state)

    def test_channel_and_node_cache_share_one_store(self, rng, params):
        nodes = uniform_random(10, rng)
        state = NetworkState(nodes)
        channel_a = CachedChannel(params, state=state)
        channel_b = CachedChannel(params.with_overrides(beta=1.0), state=state)
        assert channel_a.cache.state is channel_b.cache.state
        # Materializing through one view is visible through the other
        # (same underlying matrix object).
        a = channel_a.cache.distance_matrix()
        b = channel_b.cache.distance_matrix()
        assert np.array_equal(a, b)

    def test_sync_reanchors_view_order(self, rng):
        nodes = uniform_random(6, rng)
        state = NetworkState(nodes)
        cache = NodeArrayCache(nodes, state=state)
        reordered = list(reversed(nodes))
        cache.sync(reordered)
        assert [n.id for n in cache.nodes] == [n.id for n in reordered]
        fresh = NodeArrayCache(reordered)
        assert np.array_equal(cache.distance_matrix(), fresh.distance_matrix())
