"""Tests for the fault-injected message-passing runtime (``repro.netsim``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InitialTreeBuilder
from repro.exceptions import (
    ConfigurationError,
    DeliveryTimeout,
    NodeCrashedError,
    ProtocolError,
    TransportError,
)
from repro.geometry import uniform_random
from repro.netsim import (
    AckResponderAgent,
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    FaultyTransport,
    HeartbeatDetector,
    LatencyModel,
    NetInitBuilder,
    NetSimulator,
    Partition,
    PerfectTransport,
    ReliableOutbox,
    ReliableSenderAgent,
    RetryPolicy,
    RoundDriver,
)
from repro.sinr import Channel, SINRParameters

from .conftest import make_node

PARAMS = SINRParameters(alpha=3.0, beta=1.5, noise=1.0, epsilon=0.1)
#: Plenty of power for a unit-distance link with no competing transmitter.
LINK_POWER = 1000.0


def _pair():
    return [make_node(0, 0.0, 0.0), make_node(1, 1.0, 0.0)]


def _reliable_pair(plan=None, *, payloads=3, policy=None, strict=True, detector=None):
    sender_node, receiver_node = _pair()
    rngs = [np.random.default_rng(7), np.random.default_rng(8)]
    sender = ReliableSenderAgent(
        sender_node,
        rngs[0],
        dst_id=receiver_node.id,
        payloads=[f"payload-{i}" for i in range(payloads)],
        power=LINK_POWER,
        policy=policy,
        strict=strict,
    )
    receiver = AckResponderAgent(receiver_node, rngs[1], power=LINK_POWER)
    transport = PerfectTransport() if plan is None else FaultyTransport(plan)
    sim = NetSimulator(
        [sender, receiver], Channel(PARAMS), transport, detector=detector
    )
    return sender, receiver, sim


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(TransportError, ProtocolError)
        assert issubclass(DeliveryTimeout, TransportError)
        assert issubclass(NodeCrashedError, ProtocolError)


class TestFaultPlan:
    def test_faultless_property(self):
        assert FaultPlan().faultless
        assert not FaultPlan(drop_prob=0.1).faultless
        assert not FaultPlan(crashes=CrashSchedule((CrashWindow(1, 0),))).faultless
        assert not FaultPlan(latency=LatencyModel(delay_prob=0.5)).faultless

    def test_drop_rate_tracks_probability(self):
        plan = FaultPlan(seed=5, drop_prob=0.25)
        dst = np.arange(2000, dtype=np.int64)
        rate = float(plan.dropped(9999, dst, 7).mean())
        assert 0.2 < rate < 0.3

    def test_partition_severs_cross_cut_only(self):
        plan = FaultPlan(partitions=(Partition(frozenset({0, 1}), 10, 20),))
        dst = np.array([1, 2], dtype=np.int64)
        assert plan.dropped(0, dst, 15).tolist() == [False, True]
        assert plan.dropped(0, dst, 25).tolist() == [False, False]

    def test_latency_bounded_and_deterministic(self):
        model = LatencyModel(delay_prob=1.0, mean_slots=2.0, max_slots=4)
        dst = np.arange(500, dtype=np.int64)
        delays = model.delays(3, 0, dst, 11)
        assert delays.min() >= 1 and delays.max() <= 4
        assert np.array_equal(delays, model.delays(3, 0, dst, 11))

    def test_crash_schedule_sample_is_pure(self):
        ids = list(range(40))
        first = CrashSchedule.sample(ids, 3, horizon=100, seed=2)
        second = CrashSchedule.sample(list(reversed(ids)), 3, horizon=100, seed=2)
        assert first == second
        assert len(first.node_ids) == 3

    def test_without_crashes_keeps_loss(self):
        plan = FaultPlan(
            seed=1, drop_prob=0.2, crashes=CrashSchedule((CrashWindow(4, 0),))
        )
        stripped = plan.without_crashes()
        assert stripped.drop_prob == 0.2 and not stripped.crashes.windows

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ConfigurationError):
            LatencyModel(delay_prob=-0.1)
        with pytest.raises(ConfigurationError):
            CrashSchedule.sample([1, 2], 3, horizon=10)


class TestTransports:
    def test_faulty_transport_slot_offset_shifts_streams(self):
        plan = FaultPlan(seed=4, drop_prob=0.5)
        base = FaultyTransport(plan)
        shifted = FaultyTransport(plan, slot_offset=1000)
        src = np.zeros(200, dtype=np.int64)
        dst = np.arange(200, dtype=np.int64)
        delivered_base, _ = base.admit(3, src, dst)
        delivered_shifted, _ = shifted.admit(3, src, dst)
        delivered_ref, _ = FaultyTransport(plan).admit(1003, src, dst)
        assert not np.array_equal(delivered_base, delivered_shifted)
        assert np.array_equal(delivered_shifted, delivered_ref)

    def test_heartbeat_digest_distinguishes_slot_offsets(self):
        """Heartbeat losses are recorded at the hashed slot, so a transport
        chained at an offset produces the continuation's digest, not the
        origin's."""
        plan = FaultPlan(seed=4, heartbeat_drop_prob=0.4)
        base = FaultyTransport(plan)
        shifted = FaultyTransport(plan, slot_offset=1000)
        continuation = FaultyTransport(plan)
        for slot in range(64):
            base.heartbeat_delivered(7, slot)
            shifted.heartbeat_delivered(7, slot)
            continuation.heartbeat_delivered(7, slot + 1000)
        assert base.trace.summary()["heartbeat_losses"] > 0
        assert base.trace.digest() != shifted.trace.digest()
        assert shifted.trace.digest() == continuation.trace.digest()

    def test_trace_records_drops_and_delays(self):
        plan = FaultPlan(seed=6, drop_prob=0.4, latency=LatencyModel(delay_prob=0.4))
        transport = FaultyTransport(plan)
        src = np.zeros(300, dtype=np.int64)
        dst = np.arange(1, 301, dtype=np.int64)
        delivered, delay = transport.admit(0, src, dst)
        assert len(transport.trace.dropped) == int((~delivered).sum())
        assert len(transport.trace.delayed) == int((delay > 0).sum())


class TestHeartbeatDetector:
    def test_suspects_after_threshold_and_recovers(self):
        detector = HeartbeatDetector([1, 2], miss_threshold=3)
        for slot in range(3):
            detector.observe_miss(1, slot)
        assert detector.suspected_ids() == {1}
        assert detector.alive_view() == [2]
        detector.observe_heartbeat(1, 3, done=False)
        assert detector.suspected_ids() == frozenset()

    def test_active_view_counts_not_done_alive(self):
        detector = HeartbeatDetector([1, 2, 3], miss_threshold=1)
        detector.observe_heartbeat(1, 0, done=True)
        detector.observe_miss(2, 0)
        assert detector.active_view() == 1  # only node 3

    def test_require_alive_raises(self):
        detector = HeartbeatDetector([1], miss_threshold=1)
        detector.observe_miss(1, 0)
        with pytest.raises(NodeCrashedError):
            detector.require_alive(1)


class TestNetSimulatorSemantics:
    def test_zero_fault_faulty_transport_matches_lockstep(self, rng):
        """A FaultyTransport with a faultless plan is still bit-exact."""
        nodes = uniform_random(32, np.random.default_rng(5))
        oracle = InitialTreeBuilder(PARAMS).build(nodes, np.random.default_rng(6))

        builder = NetInitBuilder(PARAMS)
        # Force the faulty code path (the builder would shortcut to
        # PerfectTransport for a faultless plan).
        builder._make_transport = lambda: FaultyTransport(FaultPlan(seed=9))
        outcome = builder.build(nodes, np.random.default_rng(6))
        assert outcome.tree.parent == oracle.tree.parent
        assert outcome.slots_used == oracle.slots_used
        assert outcome.fault_summary["dropped"] == 0

    def test_crashed_agents_not_polled_and_budget_counts(self):
        sender, receiver, _ = _reliable_pair()
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(1, 2, 6),)))
        sender2, receiver2, sim = _reliable_pair(plan, policy=RetryPolicy(max_attempts=20))
        for _ in range(40):
            sim.step("chatter")
            if sender2.is_done():
                break
        assert sender2.is_done()
        assert sim.crashed_ids() == frozenset()
        summary = sim.fault_summary()
        assert summary["crashes"] == 1 and summary["recoveries"] == 1
        assert sim.send_budget[sender2.node_id] >= 3
        assert sum(sim.send_budget.values()) == summary["transmissions"]

    def test_delayed_message_matures_later(self):
        plan = FaultPlan(seed=2, latency=LatencyModel(delay_prob=1.0, mean_slots=1.0, max_slots=1))
        sender, receiver, sim = _reliable_pair(plan, payloads=1, policy=RetryPolicy(max_attempts=10))
        for _ in range(20):
            sim.step("delayed")
            if sender.is_done():
                break
        assert sender.is_done()
        assert len(sim.fault_trace.delayed) >= 1
        assert receiver.received

    def test_permanent_partition_times_out_reliable_send(self):
        plan = FaultPlan(partitions=(Partition(frozenset({0}),),))
        sender, _, sim = _reliable_pair(
            plan, payloads=1, policy=RetryPolicy(max_attempts=3, timeout_slots=2)
        )
        with pytest.raises(DeliveryTimeout):
            for _ in range(100):
                sim.step("partitioned")

    def test_lenient_mode_records_timeouts(self):
        plan = FaultPlan(partitions=(Partition(frozenset({0}),),))
        sender, _, sim = _reliable_pair(
            plan,
            payloads=2,
            policy=RetryPolicy(max_attempts=2, timeout_slots=2),
            strict=False,
        )
        for _ in range(60):
            sim.step("partitioned")
        assert sender.outbox.timeouts == [0, 1]
        assert sender.acked == 0

    def test_detector_scope_validated(self):
        nodes = _pair()
        agents = [
            AckResponderAgent(node, np.random.default_rng(i), power=LINK_POWER)
            for i, node in enumerate(nodes)
        ]
        with pytest.raises(ConfigurationError):
            NetSimulator(
                agents,
                Channel(PARAMS),
                detector=HeartbeatDetector([99]),
            )


class TestReliableOutbox:
    def test_backoff_deadlines_grow(self):
        policy = RetryPolicy(max_attempts=4, timeout_slots=2, backoff=2.0)
        outbox = ReliableOutbox(policy)
        outbox.post(0, "m", dst_id=1, slot=0)
        first = outbox.due(2)
        assert len(first) == 1 and first[0].attempts == 2
        assert first[0].deadline == 2 + 4  # timeout * backoff**1
        assert outbox.due(3) == []
        assert outbox.retries == 1

    def test_duplicate_key_rejected_and_ack_clears(self):
        outbox = ReliableOutbox()
        outbox.post(0, "m", dst_id=1, slot=0)
        with pytest.raises(ConfigurationError):
            outbox.post(0, "m2", dst_id=1, slot=0)
        assert outbox.ack(0) is True
        assert outbox.ack(0) is False
        assert len(outbox) == 0


class TestRoundDriver:
    def test_quorum_validation(self):
        _, _, sim = _reliable_pair()
        with pytest.raises(ConfigurationError):
            RoundDriver(sim, quorum=0.0)

    def test_run_until_quorum_stops_early(self):
        sender, _, sim = _reliable_pair(payloads=1)
        driver = RoundDriver(sim)
        executed, done = driver.run_until_quorum(50, "reliable")
        assert done and executed < 50
        assert sender.is_done()

    def test_run_until_quorum_times_out_under_partition(self):
        plan = FaultPlan(partitions=(Partition(frozenset({0}),),))
        _, _, sim = _reliable_pair(
            plan, payloads=1, policy=RetryPolicy(max_attempts=100, timeout_slots=2)
        )
        driver = RoundDriver(sim)
        executed, done = driver.run_until_quorum(30, "partitioned")
        assert executed == 30 and not done


class TestNetInitParity:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_zero_fault_parity_trace_and_tree(self, seed):
        """The acceptance pin: faultless netsim Init == lockstep, n >= 128."""
        nodes = uniform_random(128, np.random.default_rng(seed))
        oracle = InitialTreeBuilder(PARAMS).build(nodes, np.random.default_rng(seed + 1))
        outcome = NetInitBuilder(PARAMS).build(nodes, np.random.default_rng(seed + 1))
        assert outcome.tree.root_id == oracle.tree.root_id
        assert outcome.tree.parent == oracle.tree.parent
        assert outcome.slots_used == oracle.slots_used
        assert outcome.trace.records == oracle.trace.records
        assert outcome.link_rounds == oracle.link_rounds
        assert outcome.stored_degrees == oracle.stored_degrees
        assert {
            link: oracle.power.power(link)
            for link in oracle.tree.aggregation_schedule.links()
        } == {
            link: outcome.power.power(link)
            for link in outcome.tree.aggregation_schedule.links()
        }


class TestNetInitUnderFaults:
    def test_loss_converges_spanning_tree(self):
        nodes = uniform_random(48, np.random.default_rng(3))
        plan = FaultPlan(seed=3, drop_prob=0.1)
        outcome = NetInitBuilder(PARAMS, plan=plan).build(nodes, np.random.default_rng(4))
        outcome.tree.validate()
        assert set(outcome.tree.nodes) == {node.id for node in nodes}
        assert outcome.fault_summary["dropped"] > 0

    def test_crashes_reliable_spans_survivors(self):
        nodes = uniform_random(48, np.random.default_rng(7))
        ids = [node.id for node in nodes]
        plan = FaultPlan(
            seed=7,
            drop_prob=0.1,
            crashes=CrashSchedule.sample(ids, 2, horizon=150, seed=7, min_slot=10),
        )
        outcome = NetInitBuilder(PARAMS, plan=plan, delivery="reliable").build(
            nodes, np.random.default_rng(8)
        )
        outcome.tree.validate()
        assert len(outcome.crashed) == 2
        assert set(outcome.tree.nodes) == set(ids) - set(outcome.crashed)

    def test_fire_and_forget_crash_raises(self):
        nodes = uniform_random(24, np.random.default_rng(9))
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(nodes[0].id, 5),)))
        with pytest.raises(NodeCrashedError):
            NetInitBuilder(PARAMS, plan=plan, delivery="fire-and-forget").build(
                nodes, np.random.default_rng(10)
            )

    def test_all_crashed_raises(self):
        nodes = uniform_random(8, np.random.default_rng(11))
        windows = tuple(CrashWindow(node.id, 0) for node in nodes)
        plan = FaultPlan(crashes=CrashSchedule(windows))
        with pytest.raises(NodeCrashedError):
            NetInitBuilder(PARAMS, plan=plan).build(nodes, np.random.default_rng(12))

    def test_delivery_mode_validated(self):
        with pytest.raises(ConfigurationError):
            NetInitBuilder(PARAMS, delivery="pigeon")
