"""Tests for repro.geometry.deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DeploymentError
from repro.geometry import (
    DEPLOYMENT_GENERATORS,
    clustered,
    deployment_by_name,
    distance_ratio,
    exponential_chain,
    grid,
    linear_chain,
    min_pairwise_distance,
    two_scale,
    uniform_random,
    validate_deployment,
)


def _positions(nodes):
    return [node.position for node in nodes]


class TestUniformRandom:
    def test_returns_requested_count(self, rng):
        nodes = uniform_random(40, rng)
        assert len(nodes) == 40

    def test_minimum_separation_holds(self, rng):
        nodes = uniform_random(60, rng, min_separation=1.0)
        assert min_pairwise_distance(_positions(nodes)) >= 1.0 - 1e-9

    def test_ids_are_unique_and_consecutive(self, rng):
        nodes = uniform_random(25, rng)
        assert sorted(node.id for node in nodes) == list(range(25))

    def test_custom_separation(self, rng):
        nodes = uniform_random(20, rng, min_separation=2.5)
        assert min_pairwise_distance(_positions(nodes)) >= 2.5 - 1e-9

    def test_too_tight_square_raises(self, rng):
        with pytest.raises(DeploymentError):
            uniform_random(100, rng, side=5.0)

    def test_zero_nodes_rejected(self, rng):
        with pytest.raises(DeploymentError):
            uniform_random(0, rng)


class TestGrid:
    def test_exact_count(self):
        assert len(grid(10)) == 10

    def test_unit_spacing_separation(self):
        nodes = grid(16, spacing=2.0)
        assert min_pairwise_distance(_positions(nodes)) == pytest.approx(2.0)

    def test_jitter_requires_rng(self):
        with pytest.raises(DeploymentError):
            grid(9, jitter=0.1)

    def test_jitter_preserves_positive_separation(self, rng):
        nodes = grid(25, rng, spacing=2.0, jitter=0.4)
        assert min_pairwise_distance(_positions(nodes)) > 0.5

    def test_invalid_jitter_rejected(self, rng):
        with pytest.raises(DeploymentError):
            grid(9, rng, spacing=1.0, jitter=0.6)


class TestClustered:
    def test_count_and_separation(self, rng):
        nodes = clustered(40, rng, clusters=4)
        assert len(nodes) == 40
        assert min_pairwise_distance(_positions(nodes)) >= 1.0 - 1e-9

    def test_single_cluster(self, rng):
        nodes = clustered(10, rng, clusters=1)
        assert len(nodes) == 10


class TestTwoScale:
    def test_delta_close_to_target(self, rng):
        nodes = two_scale(30, rng, delta_target=1e4)
        delta = distance_ratio(_positions(nodes))
        assert 0.5e4 <= delta <= 5e4

    def test_outlier_count_validated(self, rng):
        with pytest.raises(DeploymentError):
            two_scale(5, rng, outliers=5)

    def test_delta_target_validated(self, rng):
        with pytest.raises(DeploymentError):
            two_scale(10, rng, delta_target=1.5)


class TestChains:
    def test_exponential_chain_positions(self):
        nodes = exponential_chain(5)
        xs = [node.x for node in nodes]
        assert xs == [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_exponential_chain_delta(self):
        nodes = exponential_chain(8)
        assert distance_ratio(_positions(nodes)) == pytest.approx(2.0**7 - 1)

    def test_linear_chain_spacing(self):
        nodes = linear_chain(4, spacing=3.0)
        assert [node.x for node in nodes] == [0.0, 3.0, 6.0, 9.0]

    def test_exponential_base_validated(self):
        with pytest.raises(DeploymentError):
            exponential_chain(4, base=1.0)


class TestRegistry:
    def test_all_registered_generators_run(self, rng):
        for name in DEPLOYMENT_GENERATORS:
            nodes = deployment_by_name(name, 12, rng)
            assert len(nodes) == 12

    def test_unknown_name_raises(self, rng):
        with pytest.raises(DeploymentError):
            deployment_by_name("nope", 10, rng)

    def test_validate_deployment_returns_delta(self, rng):
        nodes = uniform_random(20, rng)
        delta = validate_deployment(nodes)
        assert delta >= 1.0

    def test_validate_deployment_rejects_close_pairs(self):
        nodes = grid(4, spacing=0.25)
        with pytest.raises(DeploymentError):
            validate_deployment(nodes, min_separation=1.0)
