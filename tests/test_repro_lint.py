"""Fixture tests for the repro-lint invariant checker (``tools/repro_lint``).

Every rule gets a *trigger* fixture (the violation fires) and a *near-miss*
(the closest legal idiom stays clean), so rule drift in either direction
breaks a test.  The acceptance-criteria fixtures at the bottom run the real
tree: deleting a ``_check_mutable()`` call from ``NetworkState`` or inserting
an allocation into a registered hot kernel must turn the lint red.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lint import lint_paths, lint_source
from tools.repro_lint.rules.aliasing import OutAliasing
from tools.repro_lint.rules.alloc import NoAllocInHotKernel
from tools.repro_lint.rules.hygiene import (
    BareExcept,
    MissingDunderAll,
    MutableDefaultArg,
    SlotsOrDataclass,
)
from tools.repro_lint.rules.parity import ParityOracleCoverage
from tools.repro_lint.rules.rng import RngDiscipline
from tools.repro_lint.rules.shared_state import SharedStateMutation
from tools.repro_lint.rules.obs_guard import ObsGuardInHotKernel
from tools.repro_lint.rules.waits import UnboundedWait
from tools.repro_lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(findings):
    return sorted(f.code for f in findings)


def error_codes(findings):
    return sorted(f.code for f in findings if f.severity == "error")


# ---------------------------------------------------------------------------
# RL001 — no allocation in a registered hot kernel
# ---------------------------------------------------------------------------


class TestNoAllocInHotKernel:
    def test_trigger_allocation_in_kernel(self):
        findings = lint_source(
            "import numpy as np\n"
            "from repro.contracts import hot_kernel\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    tmp = np.zeros(dist.shape)\n"
            "    return tmp\n",
            rules=[NoAllocInHotKernel()],
        )
        assert codes(findings) == ["RL001"]

    def test_trigger_copy_and_comprehension(self):
        findings = lint_source(
            "import numpy as np\n"
            "from repro.contracts import hot_kernel\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    rows = [row for row in dist]\n"
            "    return dist.copy()\n",
            rules=[NoAllocInHotKernel()],
        )
        assert codes(findings) == ["RL001", "RL001"]

    def test_near_miss_workspace_fallback_branch_is_exempt(self):
        findings = lint_source(
            "import numpy as np\n"
            "from repro.contracts import hot_kernel\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace=None):\n"
            "    if workspace is None:\n"
            "        out = np.empty(dist.shape)\n"
            "    else:\n"
            "        out = workspace.floats(dist.shape)\n"
            "    np.multiply(dist, 2.0, out=out)\n"
            "    return out\n",
            rules=[NoAllocInHotKernel()],
        )
        assert findings == []

    def test_near_miss_allocates_true_and_unregistered(self):
        findings = lint_source(
            "import numpy as np\n"
            "from repro.contracts import hot_kernel\n"
            "@hot_kernel(allocates=True)\n"
            "def _builder(xy):\n"
            "    return np.zeros((len(xy), 2))\n"
            "def plain_helper(xy):\n"
            "    return np.zeros((len(xy), 2))\n",
            rules=[NoAllocInHotKernel()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL002 — out= aliasing
# ---------------------------------------------------------------------------


class TestOutAliasing:
    def test_trigger_reducing_alias(self):
        findings = lint_source(
            "import numpy as np\n"
            "def f(x):\n"
            "    np.cumsum(x, out=x)\n"
            "    np.maximum.reduce(x, out=x)\n",
            rules=[OutAliasing()],
        )
        assert codes(findings) == ["RL002", "RL002"]

    def test_trigger_partial_alias(self):
        findings = lint_source(
            "import numpy as np\n"
            "def f(x, y):\n"
            "    np.add(x[1:], y, out=x)\n",
            rules=[OutAliasing()],
        )
        assert codes(findings) == ["RL002"]

    def test_near_miss_exact_elementwise_in_place(self):
        findings = lint_source(
            "import numpy as np\n"
            "def f(x, y, z):\n"
            "    np.add(x, y, out=x)\n"
            "    np.multiply(x, y, out=z)\n",
            rules=[OutAliasing()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL003 — RNG discipline
# ---------------------------------------------------------------------------


class TestRngDiscipline:
    def test_trigger_trial_function_constant_seed(self):
        findings = lint_source(
            "import numpy as np\n"
            "def trial(args):\n"
            "    rng = np.random.default_rng(42)\n"
            "    return rng.random()\n"
            "def run(fabric, jobs):\n"
            "    return fabric.map_trials(trial, jobs)\n",
            rules=[RngDiscipline()],
        )
        assert codes(findings) == ["RL003"]

    def test_near_miss_argument_derived_seed(self):
        findings = lint_source(
            "import numpy as np\n"
            "def trial(args):\n"
            "    n, seed = args\n"
            "    rng = np.random.default_rng(1000 + seed)\n"
            "    return rng.random(n)\n"
            "def run(fabric, jobs):\n"
            "    return fabric.map_trials(trial, jobs)\n",
            rules=[RngDiscipline()],
        )
        assert findings == []

    def test_trigger_global_discipline(self):
        findings = lint_source(
            "import random\n"
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "rng = np.random.default_rng()\n",
            rules=[RngDiscipline()],
        )
        assert codes(findings) == ["RL003", "RL003", "RL003"]

    def test_near_miss_seeded_default_rng(self):
        findings = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng(2024)\n",
            rules=[RngDiscipline()],
        )
        assert findings == []

    def test_trigger_rng_in_fade_kernel(self):
        findings = lint_source(
            "import numpy as np\n"
            "class RayleighGainModel:\n"
            "    def _pair_fade(self, ids, slot):\n"
            "        rng = np.random.default_rng(slot)\n"
            "        return rng.exponential()\n",
            rules=[RngDiscipline()],
        )
        assert codes(findings) == ["RL003"]

    def test_near_miss_fade_kernel_outside_gain_class(self):
        findings = lint_source(
            "import numpy as np\n"
            "class TrialHarness:\n"
            "    def _pair_fade(self, ids, slot):\n"
            "        rng = np.random.default_rng(slot)\n"
            "        return rng.exponential()\n",
            rules=[RngDiscipline()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL004 — shared-state mutation
# ---------------------------------------------------------------------------


class TestSharedStateMutation:
    def test_trigger_write_through_adopted_state(self):
        findings = lint_source(
            "from repro.state import attach_state\n"
            "def worker(spec):\n"
            "    state = attach_state(spec)\n"
            "    state.version = 9\n"
            "    state.add_nodes([])\n",
            rules=[SharedStateMutation()],
        )
        assert codes(findings) == ["RL004", "RL004"]

    def test_near_miss_reading_adopted_state(self):
        findings = lint_source(
            "from repro.state import attach_state\n"
            "def worker(spec):\n"
            "    state = attach_state(spec)\n"
            "    xy = state.xy\n"
            "    return xy.sum()\n",
            rules=[SharedStateMutation()],
        )
        assert findings == []

    def test_trigger_private_write_on_annotated_param(self):
        findings = lint_source(
            "def thaw(state: 'NetworkState') -> None:\n"
            "    state._readonly = False\n",
            rules=[SharedStateMutation()],
        )
        assert codes(findings) == ["RL004"]

    def test_near_miss_public_write_on_annotated_param(self):
        findings = lint_source(
            "def bump(state: 'NetworkState') -> None:\n"
            "    state.version = 1\n",
            rules=[SharedStateMutation()],
        )
        assert findings == []

    def test_inline_suppression_silences_the_finding(self):
        findings = lint_source(
            "def thaw(state: 'NetworkState') -> None:\n"
            "    state._readonly = False  # repro-lint: disable=RL004\n",
            rules=[SharedStateMutation()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL005 — parity-oracle coverage
# ---------------------------------------------------------------------------

_KERNEL_WITH_ORACLE = (
    "from repro.contracts import hot_kernel\n"
    "@hot_kernel(oracle='decode_ref', allocates=True)\n"
    "def decode_fast(dist):\n"
    "    return dist\n"
)


class TestParityOracleCoverage:
    def test_trigger_missing_oracle_declaration(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "@hot_kernel(allocates=True)\n"
            "def decode_fast(dist):\n"
            "    return dist\n",
            rules=[ParityOracleCoverage()],
        )
        assert codes(findings) == ["RL005"]

    def test_trigger_no_test_exercises_the_pair(self):
        findings = lint_source(
            _KERNEL_WITH_ORACLE,
            test_sources={"tests/test_other.py": "def test():\n    assert True\n"},
            rules=[ParityOracleCoverage()],
        )
        assert codes(findings) == ["RL005"]

    def test_near_miss_parity_test_references_both(self):
        findings = lint_source(
            _KERNEL_WITH_ORACLE,
            test_sources={
                "tests/test_decode.py": (
                    "def test_parity(dist):\n"
                    "    assert (decode_fast(dist) == decode_ref(dist)).all()\n"
                )
            },
            rules=[ParityOracleCoverage()],
        )
        assert findings == []

    def test_near_miss_private_kernels_are_exempt(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "@hot_kernel()\n"
            "def _inner(dist):\n"
            "    return dist\n",
            rules=[ParityOracleCoverage()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL006–RL009 — hygiene rules
# ---------------------------------------------------------------------------


class TestHygieneRules:
    def test_rl006_trigger_plain_holder_class(self):
        findings = lint_source(
            "class Holder:\n"
            "    def __init__(self, a, b):\n"
            "        self.a = a\n"
            "        self.b = b\n",
            rules=[SlotsOrDataclass()],
        )
        assert codes(findings) == ["RL006"]
        assert findings[0].severity == "warning"

    def test_rl006_near_miss_slots_and_dataclass(self):
        findings = lint_source(
            "from dataclasses import dataclass\n"
            "class Slotted:\n"
            "    __slots__ = ('a',)\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n"
            "@dataclass(frozen=True)\n"
            "class Record:\n"
            "    a: int\n",
            rules=[SlotsOrDataclass()],
        )
        assert findings == []

    def test_rl006_near_miss_outside_src(self):
        findings = lint_source(
            "class Holder:\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n",
            filename="scripts/fixture.py",
            rules=[SlotsOrDataclass()],
        )
        assert findings == []

    def test_rl007_trigger_public_defs_without_all(self):
        findings = lint_source(
            "def public_api():\n    return 1\n",
            rules=[MissingDunderAll()],
        )
        assert codes(findings) == ["RL007"]
        assert findings[0].severity == "warning"

    def test_rl007_near_miss_with_all_or_private(self):
        findings = lint_source(
            "__all__ = ['public_api']\n"
            "def public_api():\n    return 1\n"
            "def _helper():\n    return 2\n",
            rules=[MissingDunderAll()],
        )
        assert findings == []

    def test_rl008_trigger_mutable_defaults(self):
        findings = lint_source(
            "def f(x=[]):\n    return x\n"
            "def g(*, y={}):\n    return y\n",
            rules=[MutableDefaultArg()],
        )
        assert codes(findings) == ["RL008", "RL008"]

    def test_rl008_near_miss_immutable_defaults(self):
        findings = lint_source(
            "def f(x=(), y=None, z=0):\n    return x, y, z\n",
            rules=[MutableDefaultArg()],
        )
        assert findings == []

    def test_rl009_trigger_bare_and_swallowed_except(self):
        findings = lint_source(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        pass\n"
            "def g():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return 0\n",
            rules=[BareExcept()],
        )
        assert codes(findings) == ["RL009", "RL009"]

    def test_rl009_near_miss_reraise_and_narrow(self):
        findings = lint_source(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        raise\n"
            "def g():\n"
            "    try:\n"
            "        return 1\n"
            "    except ValueError:\n"
            "        return 0\n",
            rules=[BareExcept()],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


class TestReporters:
    @pytest.fixture()
    def mixed_result(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "fixture.py").write_text(
            "def f(x=[]):\n    return x\n"        # RL008 error
            "def public_api():\n    return 1\n",  # RL007 warning (no __all__)
        )
        return lint_paths([src], tests_dir=None)

    def test_json_and_text_agree_on_counts(self, mixed_result):
        payload = json.loads(render_json(mixed_result))
        assert payload["summary"]["errors"] == len(mixed_result.errors) == 1
        assert payload["summary"]["warnings"] == len(mixed_result.warnings) == 1
        assert len(payload["findings"]) == len(mixed_result.findings)

        text = render_text(mixed_result)
        finding_lines = [l for l in text.splitlines() if not l.startswith("repro-lint:")]
        assert len(finding_lines) == len(payload["findings"])
        assert "1 error(s), 1 warning(s)" in text

    def test_json_findings_carry_fingerprints(self, mixed_result):
        payload = json.loads(render_json(mixed_result))
        fingerprints = {f["fingerprint"] for f in payload["findings"]}
        assert fingerprints == {f.fingerprint for f in mixed_result.findings}

    def test_exit_code_tracks_errors_only(self, mixed_result, tmp_path):
        assert mixed_result.exit_code == 1
        warn_only = tmp_path / "warn"
        warn_only.mkdir()
        (warn_only / "src").mkdir()
        (warn_only / "src" / "m.py").write_text("def public_api():\n    return 1\n")
        assert lint_paths([warn_only], tests_dir=None).exit_code == 0


# ---------------------------------------------------------------------------
# Acceptance criteria against the real tree
# ---------------------------------------------------------------------------


class TestAcceptanceCriteria:
    def test_cli_exits_zero_on_the_repo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "src", "benchmarks", "scripts"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_json_output_parses(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "--format", "json", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        payload = json.loads(proc.stdout)
        assert payload["summary"]["errors"] == 0

    def test_deleting_check_mutable_turns_the_lint_red(self):
        path = REPO_ROOT / "src" / "repro" / "state" / "network.py"
        source = path.read_text()
        clean = lint_source(
            source, filename="src/repro/state/network.py", rules=[SharedStateMutation()]
        )
        assert clean == []
        call = "        self._check_mutable()\n"
        assert call in source
        broken = lint_source(
            source.replace(call, "", 1),
            filename="src/repro/state/network.py",
            rules=[SharedStateMutation()],
        )
        assert "RL004" in error_codes(broken)

    def test_inserting_alloc_into_hot_kernel_turns_the_lint_red(self):
        path = REPO_ROOT / "src" / "repro" / "sinr" / "channel.py"
        source = path.read_text()
        clean = lint_source(
            source, filename="src/repro/sinr/channel.py", rules=[NoAllocInHotKernel()]
        )
        assert clean == []
        assert "def _decode_received(" in source
        # Insert an allocation as the first statement of the registered kernel.
        lines = source.splitlines(keepends=True)
        for i, line in enumerate(lines):
            if line.startswith("def _decode_received("):
                depth = i
                while not lines[depth].rstrip().endswith(":"):
                    depth += 1
                lines.insert(depth + 1, "    scratch = np.zeros(4)\n")
                break
        broken = "".join(lines)
        findings = lint_source(
            broken, filename="src/repro/sinr/channel.py", rules=[NoAllocInHotKernel()]
        )
        assert "RL001" in error_codes(findings)

    def test_registry_and_linter_agree_on_kernels(self):
        import repro.sinr  # noqa: F401  - populates the registry
        import repro.state  # noqa: F401
        from repro.contracts import KERNEL_REGISTRY

        assert len(KERNEL_REGISTRY) >= 14
        decode = KERNEL_REGISTRY["repro.sinr.channel:decode_arrays"]
        assert decode.oracle == "decode_reference"
        assert decode.allocates is False


# ---------------------------------------------------------------------------
# RL010 — unbounded waits in netsim modules
# ---------------------------------------------------------------------------


class TestUnboundedWait:
    def test_trigger_receive_loop_without_bound(self):
        findings = lint_source(
            "def pump(sim):\n"
            "    while sim.has_pending():\n"
            "        sim.step('wait')\n",
            filename="src/repro/netsim/pump.py",
            rules=[UnboundedWait()],
        )
        assert codes(findings) == ["RL010"]
        assert "unbounded wait" in findings[0].message

    def test_trigger_while_true_spin(self):
        findings = lint_source(
            "def wait_for_ack(outbox, sim):\n"
            "    while True:\n"
            "        sim.step('ack-wait')\n"
            "        if outbox.empty():\n"
            "            break\n",
            filename="src/repro/netsim/spin.py",
            rules=[UnboundedWait()],
        )
        assert codes(findings) == ["RL010"]

    def test_near_miss_timeout_bound_is_clean(self):
        findings = lint_source(
            "def pump(sim, max_slots):\n"
            "    executed = 0\n"
            "    while executed < max_slots:\n"
            "        sim.step('wait')\n"
            "        executed += 1\n",
            filename="src/repro/netsim/pump.py",
            rules=[UnboundedWait()],
        )
        assert findings == []

    def test_near_miss_deadline_and_retry_budget_are_clean(self):
        findings = lint_source(
            "def drain(outbox, sim, deadline):\n"
            "    while sim.slot < deadline:\n"
            "        sim.step('drain')\n"
            "def resend(outbox, slot):\n"
            "    while outbox.attempts_left():\n"
            "        outbox.retry(slot)\n",
            filename="src/repro/netsim/drain.py",
            rules=[UnboundedWait()],
        )
        assert findings == []

    def test_near_miss_for_loop_is_inherently_bounded(self):
        findings = lint_source(
            "def run_phase(sim, slots):\n"
            "    for _ in range(slots):\n"
            "        sim.step('phase')\n",
            filename="src/repro/netsim/phase.py",
            rules=[UnboundedWait()],
        )
        assert findings == []

    def test_rule_is_scoped_to_netsim_modules(self):
        findings = lint_source(
            "def spin(sim):\n"
            "    while sim.busy():\n"
            "        sim.step('spin')\n",
            filename="src/repro/runtime/other.py",
            rules=[UnboundedWait()],
        )
        assert findings == []

    def test_inline_suppression_works(self):
        findings = lint_source(
            "def spin(sim):\n"
            "    while sim.busy():  # repro-lint: disable=RL010\n"
            "        sim.step('spin')\n",
            filename="src/repro/netsim/spin.py",
            rules=[UnboundedWait()],
        )
        assert findings == []

    def test_netsim_package_is_rl010_clean(self):
        result = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "netsim")], rules=[UnboundedWait()]
        )
        assert [f for f in result.findings if f.code == "RL010"] == []


# ---------------------------------------------------------------------------
# RL011 — telemetry in hot kernels must sit behind the enabled guard
# ---------------------------------------------------------------------------


class TestObsGuardInHotKernel:
    def test_trigger_unguarded_counter_bump(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "from repro.obs.runtime import OBS\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    OBS.registry.inc('decode.calls')\n"
            "    return dist\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert codes(findings) == ["RL011"]
        assert "enabled guard" in findings[0].message

    def test_trigger_unguarded_span(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "from repro.obs.spans import span\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    with span('decode'):\n"
            "        return dist\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert codes(findings) == ["RL011"]

    def test_trigger_guard_on_wrong_condition(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "from repro.obs.runtime import OBS\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace, verbose):\n"
            "    if verbose:\n"
            "        OBS.registry.inc('decode.calls')\n"
            "    return dist\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert codes(findings) == ["RL011"]

    def test_near_miss_enabled_guard_is_clean(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "from repro.obs.runtime import OBS\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    if OBS.enabled:\n"
            "        OBS.registry.inc('decode.calls')\n"
            "    return dist\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert findings == []

    def test_near_miss_predicate_guard_is_clean(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "from repro.obs.runtime import OBS, telemetry_enabled\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    if telemetry_enabled():\n"
            "        OBS.registry.inc('decode.calls')\n"
            "    return dist\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert findings == []

    def test_near_miss_reading_the_flag_is_the_idiom(self):
        findings = lint_source(
            "from repro.contracts import hot_kernel\n"
            "from repro.obs.runtime import OBS\n"
            "@hot_kernel()\n"
            "def _decode_fast(dist, workspace):\n"
            "    flag = OBS.enabled\n"
            "    return dist if flag else None\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert findings == []

    def test_rule_ignores_functions_outside_kernels(self):
        findings = lint_source(
            "from repro.obs.runtime import OBS\n"
            "def harness(dist):\n"
            "    OBS.registry.inc('harness.calls')\n"
            "    return dist\n",
            rules=[ObsGuardInHotKernel()],
        )
        assert findings == []

    def test_source_tree_is_rl011_clean(self):
        result = lint_paths(
            [str(REPO_ROOT / "src" / "repro")], rules=[ObsGuardInHotKernel()]
        )
        assert [f for f in result.findings if f.code == "RL011"] == []
