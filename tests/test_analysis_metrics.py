"""Tests for repro.analysis.metrics and repro.core.quantities."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    affectance_statistics,
    degree_statistics,
    loglog_fit,
    schedule_statistics,
    tree_sparsity,
)
from repro.core import BiTree, Schedule, num_rounds_for_delta, upsilon
from repro.links import Link, LinkSet
from repro.sinr import UniformPower

from .conftest import make_node


class TestQuantities:
    def test_upsilon_grows_with_n_and_delta(self):
        assert upsilon(1024, 10.0) > upsilon(16, 10.0)
        assert upsilon(64, 1e9) > upsilon(64, 10.0)

    def test_upsilon_matches_formula(self):
        assert upsilon(64, 256.0) == pytest.approx(math.log2(math.log2(256.0)) + 6.0)

    def test_upsilon_validation(self):
        with pytest.raises(ValueError):
            upsilon(0, 10.0)
        with pytest.raises(ValueError):
            upsilon(10, 0.5)

    def test_num_rounds_for_delta(self):
        assert num_rounds_for_delta(1.0) == 1
        assert num_rounds_for_delta(2.5) == 2
        assert num_rounds_for_delta(1000.0) == 10
        with pytest.raises(ValueError):
            num_rounds_for_delta(0.9)


class TestDegreeStatistics:
    def test_linkset_degrees(self, chain_links):
        stats = degree_statistics(chain_links)
        assert stats.max_degree == 2
        assert stats.degree_histogram[1] == 2  # the two chain endpoints

    def test_bitree_degrees(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(4)]
        tree = BiTree.from_parent_map(nodes, 3, {0: 1, 1: 3, 2: 3})
        stats = degree_statistics(tree)
        assert stats.max_degree == 2
        assert stats.mean_degree == pytest.approx(6 / 4)

    def test_empty(self):
        stats = degree_statistics(LinkSet())
        assert stats.max_degree == 0
        assert stats.degree_histogram == {}


class TestScheduleStatistics:
    def test_counts(self):
        nodes = [make_node(i, 10.0 * i, 0.0) for i in range(6)]
        links = [Link(nodes[i], nodes[i + 1]) for i in range(5)]
        schedule = Schedule({links[0]: 0, links[1]: 0, links[2]: 1, links[3]: 1, links[4]: 2})
        stats = schedule_statistics(schedule)
        assert stats.length == 3
        assert stats.links == 5
        assert stats.max_slot_size == 2
        assert stats.mean_slot_size == pytest.approx(5 / 3)

    def test_empty(self):
        stats = schedule_statistics(Schedule())
        assert stats.length == 0 and stats.links == 0


class TestTreeSparsityAndAffectance:
    def test_tree_sparsity_of_chain(self):
        nodes = [make_node(i, float(i), 0.0) for i in range(6)]
        tree = BiTree.from_parent_map(nodes, 5, {i: i + 1 for i in range(5)})
        assert tree_sparsity(tree) <= 2

    def test_affectance_statistics(self, params, far_apart_links):
        power = UniformPower.for_max_length(params, 1.0)
        stats = affectance_statistics(far_apart_links, power, params)
        assert stats.max_incoming < 1.0
        assert stats.mean_incoming <= stats.max_incoming
        assert stats.total == pytest.approx(stats.mean_incoming * len(far_apart_links), rel=1e-6)

    def test_affectance_statistics_small_sets(self, params):
        power = UniformPower(1.0)
        assert affectance_statistics([], power, params).total == 0.0


class TestLogLogFit:
    def test_recovers_power_law(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [3.0 * x**2 for x in xs]
        exponent, constant = loglog_fit(xs, ys)
        assert exponent == pytest.approx(2.0, abs=1e-9)
        assert constant == pytest.approx(3.0, rel=1e-9)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(2, 50, 20)
        ys = 5.0 * xs**1.5 * rng.uniform(0.95, 1.05, size=xs.size)
        exponent, _ = loglog_fit(list(xs), list(ys))
        assert exponent == pytest.approx(1.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_fit([1.0], [1.0])
        with pytest.raises(ValueError):
            loglog_fit([1.0, -1.0], [1.0, 2.0])
