"""Quickstart: build a wireless backbone from scratch and inspect it.

Runs the paper's basic pipeline on a random deployment:

1. drop 64 identical wireless nodes in the plane;
2. run the distributed ``Init`` protocol (Theorem 2) - the nodes converge on a
   strongly connected bi-tree using nothing but the shared SINR channel;
3. reschedule the tree's links with the oblivious mean-power assignment
   (Theorem 3);
4. verify everything physically: feasibility of every slot, a convergecast and
   a broadcast replayed on the channel.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ConnectivityProtocol, SINRParameters, uniform_random
from repro.analysis import simulate_broadcast, simulate_convergecast, validate_bitree


def main() -> None:
    rng = np.random.default_rng(7)
    params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)
    protocol = ConnectivityProtocol(params)

    nodes = uniform_random(64, rng)
    print(f"Deployed {len(nodes)} nodes; building the initial bi-tree with Init ...")

    initial = protocol.build_initial_tree(nodes, rng)
    print(f"  construction took {initial.slots_used} channel slots "
          f"({initial.rounds_used} rounds, Delta ~ {initial.delta:.0f})")
    print(f"  root node: {initial.tree.root_id}, tree depth: {initial.tree.depth()} hops")
    print(f"  naive schedule (construction time stamps): "
          f"{initial.tree.aggregation_schedule.length} slots")

    report = validate_bitree(initial.tree, nodes, initial.power, params)
    print(f"  validation: {'OK' if report.ok else report.issues}")

    print("Rescheduling the same links with mean power (Theorem 3) ...")
    rescheduled = protocol.reschedule_with_mean_power(initial, rng)
    print(f"  new schedule: {rescheduled.schedule_length} slots "
          f"(computed in {rescheduled.frames_elapsed} contention frames)")
    feasible = rescheduled.schedule.is_feasible(rescheduled.power, params)
    print(f"  every slot feasible under mean power: {feasible}")

    print("Replaying traffic on the physical channel ...")
    up = simulate_convergecast(initial.tree, initial.power, params)
    down = simulate_broadcast(initial.tree, initial.power, params)
    print(f"  convergecast: root aggregated {up.root_value:.0f}/{up.expected_value:.0f} "
          f"in {up.slots} slots")
    print(f"  broadcast: reached {down.reached}/{down.total} nodes in {down.slots} slots")


if __name__ == "__main__":
    main()
