"""Power-assignment study: how the schedule length scales with n and Delta.

A compact version of experiments F1 and F2: sweeps the network size (and then
the distance spread) and prints, for each method, the schedule length of the
resulting connectivity structure.  Useful as a template for running custom
parameter sweeps with the library.

Run with:  python examples/power_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.baselines import CentralizedMSTBaseline, UniformScheduler
from repro.core import ConnectivityProtocol, upsilon
from repro.geometry import two_scale, uniform_random
from repro.sinr import SINRParameters


def size_sweep(params: SINRParameters, sizes: tuple[int, ...]) -> list[dict]:
    protocol = ConnectivityProtocol(params)
    uniform = UniformScheduler(params)
    centralized = CentralizedMSTBaseline(params)
    rows = []
    for n in sizes:
        rng = np.random.default_rng(100 + n)
        nodes = uniform_random(n, rng)
        initial = protocol.build_initial_tree(nodes, rng)
        links = initial.tree.aggregation_links()
        rows.append(
            {
                "n": n,
                "init_stamps": initial.tree.aggregation_schedule.length,
                "uniform_ff": uniform.schedule(links).schedule_length,
                "mean_resched": protocol.reschedule_with_mean_power(initial, rng).schedule_length,
                "tvc_mean": protocol.build_efficient_tree(nodes, rng, power_mode="mean").schedule_length,
                "tvc_arbitrary": protocol.build_efficient_tree(nodes, rng, power_mode="arbitrary").schedule_length,
                "centralized_mst": centralized.build(nodes).schedule_length,
            }
        )
    return rows


def delta_sweep(params: SINRParameters, n: int, targets: tuple[float, ...]) -> list[dict]:
    protocol = ConnectivityProtocol(params)
    uniform = UniformScheduler(params)
    rows = []
    for target in targets:
        rng = np.random.default_rng(int(target) % 97 + 7)
        nodes = two_scale(n, rng, delta_target=target)
        initial = protocol.build_initial_tree(nodes, rng)
        links = initial.tree.aggregation_links()
        efficient = protocol.build_efficient_tree(nodes, rng, power_mode="arbitrary")
        rows.append(
            {
                "delta_target": target,
                "upsilon": round(upsilon(n, initial.delta), 1),
                "init_slots": initial.slots_used,
                "uniform_ff": uniform.schedule(links).schedule_length,
                "mean_resched": protocol.reschedule_with_mean_power(initial, rng).schedule_length,
                "tvc_arbitrary": efficient.schedule_length,
            }
        )
    return rows


def main() -> None:
    params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)

    print("Schedule length vs network size (uniform random deployments)")
    print(format_table(size_sweep(params, (32, 64, 128))))
    print()
    print("Schedule length vs distance spread Delta (two-scale deployments, n = 48)")
    print(format_table(delta_sweep(params, 48, (1e2, 1e4, 1e6))))


if __name__ == "__main__":
    main()
