"""Ad-hoc network backbone under an extreme distance spread.

An ad-hoc deployment with a dense core and a handful of far-away relays pushes
the distance ratio Delta to 10^5.  This is the regime where power assignment
matters most:

* any fixed (uniform) power schedule pays a log(Delta) factor;
* the oblivious mean-power schedule only pays log log(Delta);
* the power-controlled TreeViaCapacity schedule is essentially Delta-free.

The example builds all three and prints the comparison, together with the
latency of relaying a message between the two farthest nodes over the bi-tree.

Run with:  python examples/adhoc_backbone.py
"""

from __future__ import annotations

import numpy as np

from repro import ConnectivityProtocol, SINRParameters
from repro.analysis import pairwise_latency
from repro.baselines import UniformScheduler, naive_tdma_schedule
from repro.geometry import two_scale


def main() -> None:
    rng = np.random.default_rng(23)
    params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)
    protocol = ConnectivityProtocol(params)

    nodes = two_scale(56, rng, delta_target=1.0e5, outliers=4)
    print(f"Deployed {len(nodes)} nodes with a target distance spread of 1e5.")

    print("Step 1: distributed construction of the initial tree (uniform per-round power) ...")
    initial = protocol.build_initial_tree(nodes, rng)
    links = initial.tree.aggregation_links()
    print(f"  construction: {initial.slots_used} slots, "
          f"initial schedule: {initial.tree.aggregation_schedule.length} slots")

    print("Step 2: schedules of the same backbone under different power regimes ...")
    uniform = UniformScheduler(params).schedule(links)
    rescheduled = protocol.reschedule_with_mean_power(initial, rng)
    tdma = naive_tdma_schedule(links, params)
    print(f"  naive TDMA                : {tdma.schedule_length} slots")
    print(f"  uniform power (first fit) : {uniform.schedule_length} slots")
    print(f"  mean power (distributed)  : {rescheduled.schedule_length} slots")

    print("Step 3: rebuild with TreeViaCapacity + power control (Theorem 4) ...")
    efficient = protocol.build_efficient_tree(nodes, rng, power_mode="arbitrary")
    print(f"  power-controlled schedule : {efficient.schedule_length} slots "
          f"(feasible: {efficient.aggregation_feasible})")

    ids = sorted(efficient.tree.nodes)
    source, destination = ids[0], ids[-1]
    relay = pairwise_latency(efficient.tree, efficient.power, params, source, destination)
    print(f"Relaying a message {source} -> {destination} through the bi-tree took "
          f"{relay.slots} slots (delivered: {relay.delivered}).")


if __name__ == "__main__":
    main()
