"""Run ``Init`` over a lossy transport and price the damage.

Builds the same 64-node tree at 0%, 5% and 20% message loss over the netsim
message-passing runtime and prints the round overhead against the lockstep
oracle - at 0% loss the runtime is bit-identical to the oracle, so the
overhead there is exactly 1.0 by construction.

Run with:  PYTHONPATH=src python examples/lossy_init.py
"""

from __future__ import annotations

import numpy as np

from repro.core import InitialTreeBuilder
from repro.geometry import uniform_random
from repro.netsim import FaultPlan, NetInitBuilder
from repro.sinr import SINRParameters

params = SINRParameters()
nodes = uniform_random(64, np.random.default_rng(7))
oracle = InitialTreeBuilder(params).build(nodes, np.random.default_rng(8))
print(f"lockstep oracle: {oracle.slots_used} slots, root {oracle.tree.root_id}")

for loss in (0.0, 0.05, 0.20):
    plan = FaultPlan(seed=7, drop_prob=loss)
    outcome = NetInitBuilder(params, plan=plan, delivery="reliable").build(
        nodes, np.random.default_rng(8)
    )
    outcome.tree.validate()
    overhead = outcome.slots_used / oracle.slots_used
    print(
        f"loss {loss:4.0%}: {outcome.slots_used:4d} slots "
        f"(overhead {overhead:.2f}x), "
        f"{outcome.fault_summary['dropped']:4d} drops, "
        f"{sum(outcome.send_budget.values()):4d} transmissions"
        + ("  [completed by repair]" if outcome.completed_by_repair else "")
    )
