"""Kill the root mid-protocol and watch the stack heal itself.

Builds a 128-node tree, runs the aggregation schedule over the netsim
message runtime at 10% loss, then crashes the *root* partway through the
run.  The survivors detect the silence, elect a new root (seeded bully
election), re-root the tree through the repair splice, and resume the
aggregation on the recovered tree - degraded only by whatever genuinely
died, never hung.

Run with:  PYTHONPATH=src python examples/root_failover.py
"""

from __future__ import annotations

import numpy as np

from repro.core import InitialTreeBuilder
from repro.geometry import uniform_random
from repro.netsim import (
    CrashSchedule,
    FaultPlan,
    election_priority,
    run_convergecast,
    run_root_failover,
)
from repro.netsim.faults import CrashWindow
from repro.sinr import SINRParameters

params = SINRParameters()
nodes = uniform_random(128, np.random.default_rng(7))
built = InitialTreeBuilder(params).build(nodes, np.random.default_rng(8))
tree, power = built.tree, built.power
root = tree.root_id
print(f"initial tree: {tree.size} nodes, root {root}, {built.slots_used} slots")

# The root dies at slot 12 of the aggregation run, under 10% message loss.
crash_slot = 12
plan = FaultPlan(
    seed=7, drop_prob=0.10, crashes=CrashSchedule((CrashWindow(root, crash_slot),))
)
interrupted = run_convergecast(tree, power, params, plan=plan, quorum=0.5)
print(
    f"root crashed at slot {crash_slot}: aggregation degraded, "
    f"{len(interrupted.contributing)}/{tree.size} values reached the (dead) root, "
    f"root_alive={interrupted.root_alive}"
)

# Failover: elect a new root among the survivors, re-root and repair.
failover = run_root_failover(
    tree,
    power,
    params=params,
    plan=plan,
    crashed_ids=[root],
    rng=np.random.default_rng(9),
    start_slot=interrupted.slots,
)
survivors = set(tree.nodes) - {root}
expected = max(survivors, key=lambda nid: election_priority(plan.seed, nid))
assert failover.new_root_id == expected
assert set(failover.tree.nodes) == survivors
failover.tree.validate()
print(
    f"election: leader {failover.new_root_id} "
    f"(max-priority survivor, {failover.election.rounds_used} round(s), "
    f"{failover.election.slots_used} slots, {failover.election.messages} messages)"
)
print(
    f"re-root + repair: {failover.slots_used} recovery slots, "
    f"tree now rooted at {failover.tree.root_id} spanning {failover.tree.size} survivors"
)

# Resume aggregation on the healed tree, fault counters continued past the
# recovery so no randomness is ever reused.
resumed = run_convergecast(
    failover.tree,
    failover.power,
    params,
    plan=plan.without_crashes(),
    slot_offset=interrupted.slots + failover.slots_used,
    quorum=0.5,
)
print(
    f"resumed aggregation: {resumed.slots} slots ({resumed.retries} retries), "
    f"{len(resumed.contributing)}/{failover.tree.size} values at the new root, "
    f"correct={resumed.correct}, quorum_met={resumed.quorum_met}"
)
assert resumed.quorum_met
