"""Dynamic network quickstart: mobility + fading + churn in ~30 lines.

Builds an ``Init`` bi-tree, then lets the world misbehave: nodes drift with a
Brownian random walk, the channel fades with log-normal shadowing, and a
seeded churn process kills and spawns nodes every epoch.  The
``DynamicSimulator`` repairs the tree incrementally after every churn event
and reports the structure's health epoch by epoch.

Run with:  python examples/dynamic_network.py
"""

from __future__ import annotations

import numpy as np

from repro import SINRParameters, uniform_random
from repro.analysis import dynamics_health_table
from repro.dynamics import (
    ChurnProcess,
    DynamicScenario,
    DynamicSimulator,
    LogNormalShadowing,
    RandomWalk,
)


def main() -> None:
    params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)
    nodes = uniform_random(48, np.random.default_rng(7))

    scenario = DynamicScenario(
        mobility=RandomWalk(sigma=0.3),                            # nodes drift
        churn=ChurnProcess(failure_prob=0.05, arrival_rate=0.5, seed=1),
        gain_model=LogNormalShadowing(sigma_db=4.0, seed=2),       # channel fades
        epochs=8,
    )
    result = DynamicSimulator(nodes, params, scenario, seed=3).run()

    print(f"initial Init tree: {result.initial_slots} slots over {len(nodes)} nodes")
    print(dynamics_health_table(result.records))
    half_life = result.half_life()
    print(f"total repair cost: {result.total_repair_slots} slots "
          f"(initial build: {result.initial_slots})")
    print(f"connectivity half-life: "
          f"{'beyond the horizon' if half_life is None else f'epoch {half_life}'}")


if __name__ == "__main__":
    main()
