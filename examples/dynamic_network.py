"""Dynamic network quickstart: mobility + fading + churn in ~40 lines.

Builds an ``Init`` bi-tree, then lets the world misbehave: nodes drift with a
Brownian random walk, the channel fades with log-normal shadowing, and a
seeded churn process kills and spawns nodes every epoch.  The
``DynamicSimulator`` repairs the tree incrementally after every churn event
and reports the structure's health epoch by epoch.

All geometry lives in one shared ``NetworkState``: the simulator's channel
caches are views over it, mobility and churn patch only the damaged matrix
rows (O(damage) per epoch, reported below as "patch cost"), and the same
store can back your own channels after the run.

Run with:  python examples/dynamic_network.py
"""

from __future__ import annotations

import numpy as np

from repro import NetworkState, SINRParameters, uniform_random
from repro.analysis import dynamics_health_table
from repro.dynamics import (
    ChurnProcess,
    DynamicScenario,
    DynamicSimulator,
    LogNormalShadowing,
    RandomWalk,
)
from repro.sinr import CachedChannel


def main() -> None:
    params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)
    nodes = uniform_random(48, np.random.default_rng(7))

    # One capacity-managed geometry store for everything below; headroom
    # defers the first growth while churn spawns arrivals.
    state = NetworkState(nodes, capacity=64)

    scenario = DynamicScenario(
        mobility=RandomWalk(sigma=0.3),                            # nodes drift
        churn=ChurnProcess(failure_prob=0.05, arrival_rate=0.5, seed=1),
        gain_model=LogNormalShadowing(sigma_db=4.0, seed=2),       # channel fades
        epochs=8,
    )
    result = DynamicSimulator(nodes, params, scenario, seed=3, state=state).run()

    print(f"initial Init tree: {result.initial_slots} slots over {len(nodes)} nodes")
    print(dynamics_health_table(result.records))
    print()
    print("per-epoch patch cost (matrix cells rewritten; a rebuild would be "
          f"~{state.capacity}^2 = {state.capacity ** 2} cells per matrix):")
    for record in result.records:
        events = len(record.failed) + len(record.arrived) + record.moved
        print(f"  epoch {record.epoch}: {events:3d} node events -> "
              f"{record.patch_cells:7d} cells patched")
    half_life = result.half_life()
    print(f"total repair cost: {result.total_repair_slots} slots "
          f"(initial build: {result.initial_slots})")
    print(f"connectivity half-life: "
          f"{'beyond the horizon' if half_life is None else f'epoch {half_life}'}")

    # The store outlives the run: build your own channel as another view of
    # the same matrices (no recomputation) over the surviving population.
    survivors = list(result.tree.nodes.values())
    channel = CachedChannel(params, survivors, state=state)
    print(f"state after run: {len(state)}/{state.capacity} slots live, "
          f"{state.cells_patched} cells patched in total; "
          f"shared channel covers {len(channel.cache)} survivors")


if __name__ == "__main__":
    main()
