"""Sensor-network data aggregation with an efficient bi-tree.

The motivating scenario from the paper's introduction: a wireless sensor
network needs an information-aggregation backbone.  This example builds the
high-quality structure of Theorem 4 (``TreeViaCapacity`` with power control),
whose schedule has only O(log n) slots, and then uses it to aggregate sensor
readings (here: a maximum over simulated temperature readings) and to
broadcast an alarm back to every sensor.

Run with:  python examples/sensor_aggregation.py
"""

from __future__ import annotations

import numpy as np

from repro import ConnectivityProtocol, SINRParameters
from repro.analysis import simulate_broadcast, simulate_convergecast
from repro.geometry import clustered


def main() -> None:
    rng = np.random.default_rng(11)
    params = SINRParameters(alpha=3.0, beta=1.5, noise=1.0)
    protocol = ConnectivityProtocol(params)

    # Sensors are deployed in clusters (buildings of a campus, say).
    sensors = clustered(72, rng, clusters=4)
    print(f"Deployed {len(sensors)} sensors in 4 clusters.")

    print("Building the efficient aggregation bi-tree (TreeViaCapacity, power control) ...")
    outcome = protocol.build_efficient_tree(sensors, rng, power_mode="arbitrary")
    print(f"  schedule length: {outcome.schedule_length} slots "
          f"(vs {len(sensors) - 1} slots for naive TDMA)")
    print(f"  construction cost: {outcome.construction_slots} channel slots, "
          f"{len(outcome.iterations)} iterations")
    print(f"  aggregation slots feasible: {outcome.aggregation_feasible}, "
          f"dissemination slots feasible: {outcome.dissemination_feasible}")

    # Simulated temperature readings; the sink wants the maximum.
    readings = {node.id: float(rng.normal(22.0, 3.0)) for node in sensors}
    hottest = max(readings.values())
    print(f"Aggregating max temperature over the tree (true max = {hottest:.2f} C) ...")
    up = simulate_convergecast(
        outcome.tree, outcome.power, params, values=readings, combine=max
    )
    print(f"  sink (node {outcome.tree.root_id}) received {up.root_value:.2f} C "
          f"in {up.slots} slots; correct: {up.correct}")

    print("Broadcasting an alarm from the sink to every sensor ...")
    down = simulate_broadcast(outcome.tree, outcome.power, params, payload="ALARM")
    print(f"  reached {down.reached}/{down.total} sensors in {down.slots} slots")

    per_iteration = [record.selected_links for record in outcome.iterations]
    print(f"Per-iteration links committed to the schedule: {per_iteration}")


if __name__ == "__main__":
    main()
