"""Repo-root pytest bootstrap.

Makes the ``repro`` package importable straight from ``src/`` when the
project has not been ``pip install -e .``-ed, so both ``pytest`` and
``pytest benchmarks`` work without a manual ``PYTHONPATH=src`` prefix.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))
