"""Baselines: centralized MST scheduling, uniform power, naive TDMA."""

from .centralized_mst import CentralizedBaselineResult, CentralizedMSTBaseline, euclidean_mst_tree
from .naive_tdma import NaiveTdmaResult, naive_tdma_schedule
from .uniform_scheduling import UniformScheduler, UniformSchedulingResult

__all__ = [
    "CentralizedMSTBaseline",
    "CentralizedBaselineResult",
    "euclidean_mst_tree",
    "UniformScheduler",
    "UniformSchedulingResult",
    "naive_tdma_schedule",
    "NaiveTdmaResult",
]
