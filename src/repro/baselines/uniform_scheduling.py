"""Uniform-power scheduling baseline.

Uniform power is what nodes are forced to use before they know anything about
their neighbourhood, and it is provably weak for connectivity: the number of
slots needed carries an unavoidable ``log Delta`` (indeed up to linear) factor
on spread-out instances [21].  This baseline schedules a given link set with a
single fixed power level via centralized first-fit; experiment F2 uses it to
show the Delta-dependence the mean-power and power-control schedules avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..links import Link, LinkSet
from ..sinr import PowerAssignment, SINRParameters, UniformPower
from ..core.capacity import first_fit_schedule
from ..core.schedule import Schedule

__all__ = ["UniformSchedulingResult", "UniformScheduler"]


@dataclass(frozen=True)
class UniformSchedulingResult:
    """Outcome of the uniform-power first-fit baseline.

    Attributes:
        schedule: the produced schedule.
        power: the uniform power level used.
    """

    schedule: Schedule
    power: PowerAssignment

    @property
    def schedule_length(self) -> int:
        """Number of slots of the produced schedule."""
        return self.schedule.length


class UniformScheduler:
    """Schedules a link set with one fixed power level (centralized first-fit).

    Args:
        params: physical-model parameters.
        level: explicit power level; defaults to the smallest level that keeps
            the longest link's cost at ``2 * beta`` (the natural choice when
            the instance diameter is known).
    """

    __slots__ = ('level', 'params')

    def __init__(self, params: SINRParameters, level: float | None = None):
        self.params = params
        self.level = level

    def schedule(self, links: Sequence[Link] | LinkSet) -> UniformSchedulingResult:
        """Compute a uniform-power schedule of ``links``."""
        link_list = list(links)
        longest = max((link.length for link in link_list), default=1.0)
        if self.level is not None:
            power: PowerAssignment = UniformPower(self.level)
        else:
            power = UniformPower.for_max_length(self.params, max(longest, 1.0))
        if not link_list:
            return UniformSchedulingResult(Schedule(), power)
        schedule = first_fit_schedule(link_list, power, self.params).normalized()
        return UniformSchedulingResult(schedule=schedule, power=power)
