"""Centralized connectivity baseline (the [11]-style comparator).

The strongest centralized result the paper compares itself against
(Halldorsson & Mitra, SODA 2012 [11]) schedules a spanning structure in
``O(log n)`` slots with power control and ``O(log n (log log Delta + log n))``
slots with oblivious power.  Its structure is the Euclidean minimum spanning
tree, which is O(1)-sparse; the schedule comes from the sparsity/amenability
machinery.

We reproduce the comparator's *shape* with full knowledge of the instance:

* build the Euclidean MST (networkx);
* orient it towards a root (yielding an aggregation tree);
* schedule it centrally with first-fit under (a) solved power control per slot
  group via iterative refinement, or (b) an oblivious power scheme.

This is the quality target the distributed algorithms are measured against in
experiment F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from ..exceptions import ProtocolError
from ..geometry import Node
from ..links import Link, LinkSet
from ..sinr import (
    LinearPower,
    MeanPower,
    PowerAssignment,
    SINRParameters,
    UniformPower,
)
from ..core.bitree import BiTree
from ..core.capacity import first_fit_schedule
from ..core.schedule import Schedule

__all__ = ["CentralizedBaselineResult", "euclidean_mst_tree", "CentralizedMSTBaseline"]


@dataclass(frozen=True)
class CentralizedBaselineResult:
    """Outcome of the centralized baseline.

    Attributes:
        tree: the MST-based aggregation tree (as a bi-tree).
        schedule: the centrally computed schedule of its aggregation links.
        power: the power assignment the schedule was computed for.
        power_scheme: name of the scheme ("mean", "linear", "uniform").
    """

    tree: BiTree
    schedule: Schedule
    power: PowerAssignment
    power_scheme: str

    @property
    def schedule_length(self) -> int:
        """Number of slots of the computed schedule."""
        return self.schedule.length


def euclidean_mst_tree(nodes: Sequence[Node], root_id: int | None = None) -> BiTree:
    """The Euclidean MST oriented towards a root, as a :class:`BiTree`.

    Args:
        nodes: the nodes to span.
        root_id: id of the designated root (defaults to the lowest id).

    Raises:
        ProtocolError: when no nodes are given or the root id is unknown.
    """
    node_list = list(nodes)
    if not node_list:
        raise ProtocolError("cannot build an MST on zero nodes")
    by_id = {node.id: node for node in node_list}
    if root_id is None:
        root_id = min(by_id)
    if root_id not in by_id:
        raise ProtocolError(f"unknown root id {root_id}")
    if len(node_list) == 1:
        return BiTree.from_parent_map(node_list, root_id, {})

    graph = nx.Graph()
    graph.add_nodes_from(by_id)
    for i, first in enumerate(node_list):
        for second in node_list[i + 1 :]:
            graph.add_edge(first.id, second.id, weight=first.distance_to(second))
    mst = nx.minimum_spanning_tree(graph, weight="weight")

    parent: dict[int, int] = {}
    depth: dict[int, int] = {root_id: 0}
    for child, parent_id in nx.bfs_predecessors(mst, root_id):
        parent[child] = parent_id
        depth[child] = depth[parent_id] + 1
    # Schedule stamps: deeper nodes' links earlier (valid aggregation order).
    max_depth = max(depth.values(), default=0)
    slots = {child: max_depth - depth[child] for child in parent}
    return BiTree.from_parent_map(node_list, root_id, parent, slots)


class CentralizedMSTBaseline:
    """Centralized MST construction + first-fit scheduling baseline.

    Args:
        params: physical-model parameters.
        power_scheme: "mean", "linear" or "uniform" - the oblivious power
            scheme used for the centralized schedule.  (Power control per slot
            can be layered on top by the caller via ``repro.core.solve_power``.)
    """

    def __init__(self, params: SINRParameters, power_scheme: str = "mean"):
        if power_scheme not in ("mean", "linear", "uniform"):
            raise ValueError(f"unknown power scheme {power_scheme!r}")
        self.params = params
        self.power_scheme = power_scheme

    def _power_for(self, links: LinkSet) -> PowerAssignment:
        longest = max((link.length for link in links), default=1.0)
        if self.power_scheme == "mean":
            return MeanPower.for_max_length(self.params, max(longest, 1.0))
        if self.power_scheme == "linear":
            return LinearPower.for_noise(self.params)
        return UniformPower.for_max_length(self.params, max(longest, 1.0))

    def build(self, nodes: Sequence[Node], root_id: int | None = None) -> CentralizedBaselineResult:
        """Build the MST tree and its centralized schedule."""
        tree = euclidean_mst_tree(nodes, root_id)
        links = tree.aggregation_links()
        power = self._power_for(links)
        if len(links) == 0:
            return CentralizedBaselineResult(tree, Schedule(), power, self.power_scheme)
        schedule = ordered_first_fit_schedule(tree, power, self.params)
        # Re-stamp the tree's aggregation schedule so it matches the computed
        # one (useful when callers treat the baseline as a bi-tree).
        retimed = BiTree(
            nodes=tree.nodes,
            root_id=tree.root_id,
            parent=tree.parent,
            aggregation_schedule=schedule,
        )
        return CentralizedBaselineResult(retimed, schedule, power, self.power_scheme)


def ordered_first_fit_schedule(tree: BiTree, power: PowerAssignment, params) -> Schedule:
    """First-fit scheduling of a tree that respects the aggregation order.

    Links are processed bottom-up (deepest senders first); each link is placed
    into the earliest slot that is (a) strictly later than every slot used by
    the sender's subtree links, (b) feasible with the slot's existing members
    under ``power``, and (c) free of node reuse.  The result is a valid
    aggregation-tree schedule whose reversal is a valid dissemination order.
    """
    from ..sinr import affectance_matrix

    order = sorted(
        (child for child in tree.parent),
        key=lambda child: -tree.depth_of(child),
    )
    schedule = Schedule()
    slot_members: list[list[Link]] = []
    slot_nodes: list[set[int]] = []
    child_slot: dict[int, int] = {}

    for child in order:
        link = Link(tree.nodes[child], tree.nodes[tree.parent[child]])
        earliest = 0
        for grandchild in tree.children(child):
            if grandchild in child_slot:
                earliest = max(earliest, child_slot[grandchild] + 1)
        placed = False
        for slot_index in range(earliest, len(slot_members)):
            if link.sender.id in slot_nodes[slot_index] or link.receiver.id in slot_nodes[slot_index]:
                continue
            candidate = slot_members[slot_index] + [link]
            matrix = affectance_matrix(candidate, power, params)
            if float(matrix.sum(axis=0).max()) <= 1.0 + 1e-9:
                slot_members[slot_index].append(link)
                slot_nodes[slot_index].update(link.endpoint_ids)
                schedule.assign(link, slot_index)
                child_slot[child] = slot_index
                placed = True
                break
        if not placed:
            # Open a fresh slot no earlier than the ordering constraint allows,
            # padding with empty slots if the constraint points past the end.
            while len(slot_members) < earliest:
                slot_members.append([])
                slot_nodes.append(set())
            slot_members.append([link])
            slot_nodes.append(set(link.endpoint_ids))
            slot_index = len(slot_members) - 1
            schedule.assign(link, slot_index)
            child_slot[child] = slot_index
    return schedule
