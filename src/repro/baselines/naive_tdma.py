"""Naive TDMA baseline: one link per slot.

The trivially correct schedule - every link gets its own slot - is the upper
anchor for every comparison plot: any scheme whose schedule length approaches
``|L|`` is doing no better than pure time division.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..links import Link, LinkSet
from ..sinr import PowerAssignment, SINRParameters, UniformPower
from ..core.schedule import Schedule

__all__ = ["NaiveTdmaResult", "naive_tdma_schedule"]


@dataclass(frozen=True)
class NaiveTdmaResult:
    """Outcome of the one-link-per-slot baseline."""

    schedule: Schedule
    power: PowerAssignment

    @property
    def schedule_length(self) -> int:
        """Number of slots (equals the number of links)."""
        return self.schedule.length


def naive_tdma_schedule(
    links: Sequence[Link] | LinkSet, params: SINRParameters
) -> NaiveTdmaResult:
    """Assign every link its own slot, shortest links first."""
    link_list = sorted(links, key=lambda link: (link.length, link.endpoint_ids))
    longest = max((link.length for link in link_list), default=1.0)
    power = UniformPower.for_max_length(params, max(longest, 1.0))
    schedule = Schedule({link: index for index, link in enumerate(link_list)})
    return NaiveTdmaResult(schedule=schedule, power=power)
