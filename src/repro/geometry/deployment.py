"""Node deployment generators.

The paper's results are worst-case over node placements; the experiments need
a range of deployments that stress different aspects of the bounds:

* :func:`uniform_random` - the standard "n points in a square" workload that
  the introduction's motivating scenarios (sensor fields, ad-hoc networks)
  imply.  Delta grows like ``sqrt(n)``.
* :func:`grid` - perfectly regular placement, the friendliest case.
* :func:`clustered` - dense clusters separated by large gaps; moderate Delta
  with highly non-uniform density.
* :func:`two_scale` - a small dense core plus a handful of far-away outliers.
  This drives Delta up to arbitrary values at fixed n and is the workload for
  the Delta-sweep experiment (F2): it separates uniform-power schedules (which
  pay ``log Delta``), mean-power schedules (``log log Delta``) and arbitrary
  power (Delta-independent).
* :func:`exponential_chain` - node i at distance ``2**i`` from the origin, the
  classical nightmare instance for uniform power (Moscibroda-Wattenhofer).

All generators return nodes whose minimum pairwise distance is at least
``min_separation`` (default 1.0, the paper's normalization) and take an
explicit ``numpy.random.Generator`` so experiments are reproducible.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..exceptions import DeploymentError
from .node import Node, nodes_from_points
from .point import Point, distance_ratio, min_pairwise_distance

__all__ = [
    "uniform_random",
    "grid",
    "clustered",
    "two_scale",
    "exponential_chain",
    "linear_chain",
    "deployment_by_name",
    "DEPLOYMENT_GENERATORS",
]

_MAX_REJECTION_ROUNDS = 200


def _require_positive(n: int) -> None:
    if n < 1:
        raise DeploymentError(f"number of nodes must be positive, got {n}")


def _poisson_disc_filter(
    candidates: np.ndarray, min_separation: float, target: int
) -> list[Point]:
    """Greedy filter keeping points pairwise separated by ``min_separation``."""
    kept: list[Point] = []
    cell = min_separation / math.sqrt(2.0)
    buckets: dict[tuple[int, int], list[Point]] = {}
    for x, y in candidates:
        p = Point(float(x), float(y))
        cx, cy = int(math.floor(p.x / cell)), int(math.floor(p.y / cell))
        ok = True
        for ix in range(cx - 2, cx + 3):
            for iy in range(cy - 2, cy + 3):
                for q in buckets.get((ix, iy), ()):
                    if p.distance_to(q) < min_separation:
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                break
        if ok:
            kept.append(p)
            buckets.setdefault((cx, cy), []).append(p)
            if len(kept) == target:
                return kept
    return kept


def uniform_random(
    n: int,
    rng: np.random.Generator,
    *,
    side: float | None = None,
    min_separation: float = 1.0,
) -> list[Node]:
    """Uniformly random nodes in a square with minimum separation.

    Args:
        n: number of nodes.
        rng: source of randomness.
        side: side length of the deployment square.  Defaults to
            ``4 * sqrt(n) * min_separation`` which keeps the packing loose
            enough that rejection sampling succeeds quickly.
        min_separation: lower bound on pairwise distances (paper normalizes
            this to 1).

    Raises:
        DeploymentError: if a valid placement cannot be found.
    """
    _require_positive(n)
    if side is None:
        side = 4.0 * math.sqrt(float(n)) * min_separation
    if side <= 0:
        raise DeploymentError("side must be positive")
    points: list[Point] = []
    for _ in range(_MAX_REJECTION_ROUNDS):
        needed = n - len(points)
        candidates = rng.uniform(0.0, side, size=(max(4 * needed, 64), 2))
        existing = points
        merged = _poisson_disc_filter(
            np.concatenate(
                [np.array([[p.x, p.y] for p in existing]).reshape(-1, 2), candidates]
            ),
            min_separation,
            n,
        )
        points = merged
        if len(points) >= n:
            return nodes_from_points(points[:n])
    raise DeploymentError(
        f"could not place {n} nodes with separation {min_separation} in a "
        f"{side:.1f} x {side:.1f} square; increase `side`"
    )


def grid(
    n: int,
    rng: np.random.Generator | None = None,
    *,
    spacing: float = 1.0,
    jitter: float = 0.0,
) -> list[Node]:
    """Nodes on a (nearly) square grid with optional positional jitter.

    Args:
        n: number of nodes.
        rng: required only when ``jitter > 0``.
        spacing: grid spacing.
        jitter: maximum uniform perturbation applied to each coordinate,
            capped below ``spacing / 2`` to preserve a positive separation.
    """
    _require_positive(n)
    if spacing <= 0:
        raise DeploymentError("spacing must be positive")
    if jitter < 0 or jitter >= spacing / 2.0:
        if jitter != 0.0:
            raise DeploymentError("jitter must lie in [0, spacing / 2)")
    cols = int(math.ceil(math.sqrt(n)))
    points: list[Point] = []
    for index in range(n):
        row, col = divmod(index, cols)
        x = col * spacing
        y = row * spacing
        if jitter > 0:
            if rng is None:
                raise DeploymentError("rng is required when jitter > 0")
            x += float(rng.uniform(-jitter, jitter))
            y += float(rng.uniform(-jitter, jitter))
        points.append(Point(x, y))
    return nodes_from_points(points)


def clustered(
    n: int,
    rng: np.random.Generator,
    *,
    clusters: int = 4,
    cluster_radius: float | None = None,
    cluster_spread: float | None = None,
    min_separation: float = 1.0,
) -> list[Node]:
    """Nodes grouped into well-separated dense clusters.

    Args:
        n: total number of nodes.
        rng: source of randomness.
        clusters: number of cluster centers.
        cluster_radius: radius of each cluster; defaults to
            ``3 * sqrt(n / clusters) * min_separation``.
        cluster_spread: side of the square in which cluster centers are
            placed; defaults to ``20 * clusters * cluster_radius``.
        min_separation: lower bound on pairwise distances.
    """
    _require_positive(n)
    if clusters < 1:
        raise DeploymentError("clusters must be positive")
    clusters = min(clusters, n)
    per_cluster = n / clusters
    if cluster_radius is None:
        cluster_radius = 3.0 * math.sqrt(per_cluster) * min_separation
    if cluster_spread is None:
        cluster_spread = 20.0 * clusters * cluster_radius
    centers = rng.uniform(0.0, cluster_spread, size=(clusters, 2))
    points: list[Point] = []
    for _ in range(_MAX_REJECTION_ROUNDS):
        needed = n - len(points)
        if needed <= 0:
            break
        assignment = rng.integers(0, clusters, size=4 * needed + 64)
        offsets = rng.uniform(-cluster_radius, cluster_radius, size=(assignment.size, 2))
        candidates = centers[assignment] + offsets
        existing = np.array([[p.x, p.y] for p in points]).reshape(-1, 2)
        points = _poisson_disc_filter(
            np.concatenate([existing, candidates]), min_separation, n
        )
    if len(points) < n:
        raise DeploymentError("could not place clustered deployment; relax parameters")
    return nodes_from_points(points[:n])


def two_scale(
    n: int,
    rng: np.random.Generator,
    *,
    delta_target: float = 1.0e4,
    outliers: int = 4,
    min_separation: float = 1.0,
) -> list[Node]:
    """A dense core plus far outliers, targeting a given distance ratio Delta.

    The core holds ``n - outliers`` nodes placed as in :func:`uniform_random`;
    the remaining ``outliers`` nodes are placed on a distant arc at distance
    roughly ``delta_target * min_separation`` from the core so that the
    realized Delta is close to ``delta_target``.

    Args:
        n: total number of nodes (must exceed ``outliers``).
        rng: source of randomness.
        delta_target: desired ratio of longest to shortest pairwise distance.
        outliers: number of far-away nodes.
        min_separation: lower bound on pairwise distances.
    """
    _require_positive(n)
    if outliers < 1 or outliers >= n:
        raise DeploymentError("outliers must be in [1, n)")
    if delta_target <= 2.0:
        raise DeploymentError("delta_target must exceed 2")
    core = uniform_random(n - outliers, rng, min_separation=min_separation)
    far = delta_target * min_separation
    points = [node.position for node in core]
    for k in range(outliers):
        angle = 2.0 * math.pi * k / outliers
        radius = far * (1.0 + 0.05 * k)
        points.append(Point(radius * math.cos(angle), radius * math.sin(angle)))
    return nodes_from_points(points)


def exponential_chain(
    n: int,
    rng: np.random.Generator | None = None,
    *,
    base: float = 2.0,
    min_separation: float = 1.0,
) -> list[Node]:
    """Nodes on a line at exponentially growing distances.

    Node ``i`` sits at ``x = min_separation * base**i``.  This is the
    classical worst case for uniform-power connectivity (Delta = base**(n-1))
    and the instance family behind the paper's log-Delta lower-bound
    discussion.
    """
    _require_positive(n)
    if base <= 1.0:
        raise DeploymentError("base must exceed 1")
    points = [Point(min_separation * base**i, 0.0) for i in range(n)]
    return nodes_from_points(points)


def linear_chain(
    n: int,
    rng: np.random.Generator | None = None,
    *,
    spacing: float = 1.0,
) -> list[Node]:
    """Nodes evenly spaced on a line (Delta = n - 1)."""
    _require_positive(n)
    if spacing <= 0:
        raise DeploymentError("spacing must be positive")
    return nodes_from_points([Point(i * spacing, 0.0) for i in range(n)])


DEPLOYMENT_GENERATORS: dict[str, Callable[..., list[Node]]] = {
    "uniform": uniform_random,
    "grid": grid,
    "clustered": clustered,
    "two_scale": two_scale,
    "exponential_chain": exponential_chain,
    "linear_chain": linear_chain,
}


def deployment_by_name(name: str, n: int, rng: np.random.Generator, **kwargs) -> list[Node]:
    """Generate a deployment by registry name.

    Raises:
        DeploymentError: if the name is unknown.
    """
    try:
        generator = DEPLOYMENT_GENERATORS[name]
    except KeyError as exc:
        raise DeploymentError(
            f"unknown deployment {name!r}; options: {sorted(DEPLOYMENT_GENERATORS)}"
        ) from exc
    return generator(n, rng, **kwargs)


def validate_deployment(nodes: Sequence[Node], min_separation: float = 1.0) -> float:
    """Check minimum separation and return the realized Delta.

    Raises:
        DeploymentError: if two nodes are closer than ``min_separation``
            (beyond a small numerical tolerance).
    """
    if len(nodes) < 2:
        return 1.0
    points = [node.position for node in nodes]
    realized = min_pairwise_distance(points)
    if realized < min_separation * (1.0 - 1e-9):
        raise DeploymentError(
            f"minimum pairwise distance {realized:.4f} is below {min_separation}"
        )
    return distance_ratio(points)
