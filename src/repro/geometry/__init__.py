"""Planar geometry substrate: points, nodes, regions, deployments."""

from .deployment import (
    DEPLOYMENT_GENERATORS,
    clustered,
    deployment_by_name,
    exponential_chain,
    grid,
    linear_chain,
    two_scale,
    uniform_random,
    validate_deployment,
)
from .node import Node, node_distance_matrix, nodes_from_points, nodes_to_array
from .point import (
    Point,
    distance,
    distance_matrix,
    distance_ratio,
    max_pairwise_distance,
    min_pairwise_distance,
    points_to_array,
)
from .region import Disc, Rectangle, Region, bounding_rectangle
from .spatial_index import GridIndex

__all__ = [
    "Point",
    "Node",
    "Region",
    "Rectangle",
    "Disc",
    "bounding_rectangle",
    "GridIndex",
    "distance",
    "distance_matrix",
    "distance_ratio",
    "max_pairwise_distance",
    "min_pairwise_distance",
    "points_to_array",
    "nodes_from_points",
    "nodes_to_array",
    "node_distance_matrix",
    "uniform_random",
    "grid",
    "clustered",
    "two_scale",
    "exponential_chain",
    "linear_chain",
    "deployment_by_name",
    "validate_deployment",
    "DEPLOYMENT_GENERATORS",
]
