"""Wireless nodes.

A :class:`Node` is a point in the plane plus a globally unique identifier, as
assumed by the paper's model (Section 3): every node knows its own location
and ID, and a single message is large enough to carry both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .point import Point, distance_matrix, points_to_array

__all__ = ["Node", "nodes_from_points", "node_distance_matrix", "nodes_to_array"]


@dataclass(frozen=True, order=True)
class Node:
    """A wireless node with a unique id and a fixed planar position."""

    id: int
    position: Point

    @property
    def x(self) -> float:
        """X coordinate of the node's position."""
        return self.position.x

    @property
    def y(self) -> float:
        """Y coordinate of the node's position."""
        return self.position.y

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance to another node."""
        return self.position.distance_to(other.position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.id}, x={self.x:.3f}, y={self.y:.3f})"


def nodes_from_points(points: Iterable[Point], start_id: int = 0) -> list[Node]:
    """Wrap points into nodes with consecutive ids starting at ``start_id``."""
    return [Node(id=start_id + i, position=p) for i, p in enumerate(points)]


def nodes_to_array(nodes: Sequence[Node]):
    """Return an ``(n, 2)`` array of node coordinates."""
    return points_to_array(node.position for node in nodes)


def node_distance_matrix(nodes: Sequence[Node]):
    """Pairwise distance matrix between nodes, indexed by list position."""
    return distance_matrix([node.position for node in nodes])
