"""Planar points and distance helpers.

All geometry in the paper lives in the Euclidean plane; the minimum pairwise
distance among nodes is normalized to 1 and the maximum possible link length
is denoted ``Delta``.  This module provides a small, immutable :class:`Point`
value type plus vectorized distance utilities used throughout the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Point",
    "distance",
    "distance_matrix",
    "points_to_array",
    "min_pairwise_distance",
    "max_pairwise_distance",
    "distance_ratio",
]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: float) -> "Point":
        """Return a copy of this point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def points_to_array(points: Sequence[Point] | Iterable[Point]) -> np.ndarray:
    """Convert an iterable of points to an ``(n, 2)`` float array."""
    pts = list(points)
    if not pts:
        return np.empty((0, 2), dtype=float)
    return np.array([(p.x, p.y) for p in pts], dtype=float)


def distance_matrix(points: Sequence[Point]) -> np.ndarray:
    """Pairwise Euclidean distance matrix for a sequence of points."""
    arr = points_to_array(points)
    if arr.shape[0] == 0:
        return np.empty((0, 0), dtype=float)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def min_pairwise_distance(points: Sequence[Point]) -> float:
    """Minimum distance between any two distinct points.

    Raises:
        ValueError: if fewer than two points are given.
    """
    if len(points) < 2:
        raise ValueError("need at least two points to compute a pairwise distance")
    dm = distance_matrix(points)
    np.fill_diagonal(dm, np.inf)
    return float(dm.min())


def max_pairwise_distance(points: Sequence[Point]) -> float:
    """Maximum distance between any two points (the diameter of the set)."""
    if len(points) < 2:
        raise ValueError("need at least two points to compute a pairwise distance")
    return float(distance_matrix(points).max())


def distance_ratio(points: Sequence[Point]) -> float:
    """The ratio Delta between the longest and shortest pairwise distances."""
    dm = distance_matrix(points)
    np.fill_diagonal(dm, np.inf)
    dmin = float(dm.min())
    np.fill_diagonal(dm, -np.inf)
    dmax = float(dm.max())
    if dmin <= 0:
        raise ValueError("duplicate points: minimum pairwise distance is zero")
    return dmax / dmin
