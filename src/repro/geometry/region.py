"""Simple planar regions used by deployments, sparsity checks and mobility."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .point import Point

__all__ = ["Region", "Rectangle", "Disc", "bounding_rectangle"]


class Region(ABC):
    """Abstract planar region."""

    @abstractmethod
    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the region."""

    @abstractmethod
    def area(self) -> float:
        """Area of the region."""

    @abstractmethod
    def bounding_box(self) -> "Rectangle":
        """Axis-aligned bounding rectangle."""


@dataclass(frozen=True)
class Rectangle(Region):
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("rectangle must have non-negative extent")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    def contains(self, point: Point) -> bool:
        return self.x_min <= point.x <= self.x_max and self.y_min <= point.y <= self.y_max

    def area(self) -> float:
        return self.width * self.height

    def bounding_box(self) -> "Rectangle":
        return self

    @staticmethod
    def square(side: float, origin: Point = Point(0.0, 0.0)) -> "Rectangle":
        """An axis-aligned square with the given side anchored at ``origin``."""
        if side <= 0:
            raise ValueError("square side must be positive")
        return Rectangle(origin.x, origin.y, origin.x + side, origin.y + side)


@dataclass(frozen=True)
class Disc(Region):
    """Closed disc with a center and a radius."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("disc radius must be non-negative")

    def contains(self, point: Point) -> bool:
        return self.center.distance_to(point) <= self.radius

    def area(self) -> float:
        import math

        return math.pi * self.radius * self.radius

    def bounding_box(self) -> Rectangle:
        return Rectangle(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )


def bounding_rectangle(xy: np.ndarray, margin_fraction: float = 0.25) -> Rectangle:
    """Axis-aligned bounds of a coordinate array, expanded by a margin.

    Used by the mobility models (``repro.dynamics``) to confine movement: the
    margin keeps boundary nodes from being pinned against the wall of their
    own initial bounding box.  An empty array yields a unit square.
    """
    xy = np.asarray(xy, dtype=float)
    if xy.size == 0:
        return Rectangle(0.0, 0.0, 1.0, 1.0)
    x_min, y_min = xy.min(axis=0)
    x_max, y_max = xy.max(axis=0)
    pad_x = max((x_max - x_min) * margin_fraction, 1.0)
    pad_y = max((y_max - y_min) * margin_fraction, 1.0)
    return Rectangle(x_min - pad_x, y_min - pad_y, x_max + pad_x, y_max + pad_y)
