"""A lightweight uniform-grid spatial index.

The sparsity estimator (Definition 8) and several deployment generators need
"all nodes within distance r of a point" queries.  For the instance sizes the
experiments use (up to a few thousand nodes) a uniform bucket grid is simple,
dependency-free, and fast enough.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from .node import Node
from .point import Point

__all__ = ["GridIndex"]


class GridIndex:
    """Uniform bucket grid over a set of nodes.

    Args:
        nodes: the nodes to index.
        cell_size: side length of each grid cell.  Defaults to 1.0, the
            normalized minimum node distance, which keeps per-cell occupancy
            constant for paper-style deployments.
    """

    def __init__(self, nodes: Sequence[Node] | Iterable[Node], cell_size: float = 1.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], list[Node]] = defaultdict(list)
        self._nodes: list[Node] = []
        for node in nodes:
            self._cells[self._cell_of(node.position)].append(node)
            self._nodes.append(node)

    @property
    def cell_size(self) -> float:
        """Side length of the grid cells."""
        return self._cell_size

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (int(math.floor(point.x / self._cell_size)), int(math.floor(point.y / self._cell_size)))

    def nodes_within(self, center: Point, radius: float) -> list[Node]:
        """All indexed nodes at distance at most ``radius`` from ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        cx, cy = self._cell_of(center)
        reach = int(math.ceil(radius / self._cell_size)) + 1
        result: list[Node] = []
        # Compare squared distances: one multiply per candidate instead of a
        # sqrt, and this is the innermost loop of the sparsity estimator.
        x, y = center.x, center.y
        radius_sq = radius * radius
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                bucket = self._cells.get((ix, iy))
                if not bucket:
                    continue
                for node in bucket:
                    dx = node.x - x
                    dy = node.y - y
                    if dx * dx + dy * dy <= radius_sq:
                        result.append(node)
        return result

    def count_within(self, center: Point, radius: float) -> int:
        """Number of indexed nodes within ``radius`` of ``center``."""
        return len(self.nodes_within(center, radius))

    def nearest_neighbor(self, node: Node) -> Node | None:
        """The nearest indexed node distinct from ``node``, or ``None``."""
        best: Node | None = None
        best_dist = math.inf
        radius = self._cell_size
        while True:
            candidates = [c for c in self.nodes_within(node.position, radius) if c.id != node.id]
            for candidate in candidates:
                d = candidate.distance_to(node)
                if d < best_dist:
                    best, best_dist = candidate, d
            if best is not None and best_dist <= radius:
                return best
            radius *= 2.0
            if radius > 4.0 * self._extent() + 4.0 * self._cell_size:
                return best

    def _extent(self) -> float:
        if not self._nodes:
            return 0.0
        xs = [n.x for n in self._nodes]
        ys = [n.y for n in self._nodes]
        return max(max(xs) - min(xs), max(ys) - min(ys))
