"""Dynamics subsystem: gain models, mobility, churn, and their driver.

The paper proves its guarantees for a frozen node set under deterministic
``P / d**alpha`` path loss; its conclusion names "dynamic situations" as the
natural extension.  This package opens that scenario space on top of the
vectorized batch slot engine:

* :mod:`~repro.dynamics.gain` - pluggable channel-gain models
  (:class:`DeterministicPathLoss`, :class:`LogNormalShadowing`,
  :class:`RayleighFading`, :class:`ComposedGain`), threaded through
  ``SINRParameters.gain_model`` into every SINR kernel;
* :mod:`~repro.dynamics.mobility` - node movement
  (:class:`StaticMobility`, :class:`RandomWalk`, :class:`RandomWaypoint`)
  with incremental invalidation of the cached distance/attenuation matrices;
* :mod:`~repro.dynamics.churn` - seeded failure/arrival streams
  (:class:`ChurnProcess`) wired to incremental tree repair;
* :mod:`~repro.dynamics.simulator` - the :class:`DynamicSimulator` driver
  running a :class:`DynamicScenario` epoch by epoch.

Everything is deterministic given its seeds, so the parallel experiment
harness fans dynamic trials out over worker processes with bit-identical
results.
"""

from .churn import ChurnEvent, ChurnProcess
from .gain import (
    ComposedGain,
    DeterministicPathLoss,
    GainModel,
    LogNormalShadowing,
    RayleighFading,
)
from .mobility import (
    MobilityModel,
    RandomWalk,
    RandomWaypoint,
    StaticMobility,
    bounding_rectangle,
)
from .simulator import (
    DynamicRunResult,
    DynamicScenario,
    DynamicSimulator,
    EpochRecord,
    replay_schedule,
)

__all__ = [
    "GainModel",
    "DeterministicPathLoss",
    "LogNormalShadowing",
    "RayleighFading",
    "ComposedGain",
    "MobilityModel",
    "StaticMobility",
    "RandomWalk",
    "RandomWaypoint",
    "bounding_rectangle",
    "ChurnEvent",
    "ChurnProcess",
    "DynamicScenario",
    "DynamicSimulator",
    "DynamicRunResult",
    "EpochRecord",
    "replay_schedule",
]
