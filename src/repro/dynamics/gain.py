"""Pluggable channel-gain models.

The SINR substrate's kernels historically hardcoded the deterministic path
loss ``P / d**alpha``.  This module generalizes that: a :class:`GainModel` is
a multiplicative *fade factor* ``F`` on received power, so the signal from
``u`` at ``v`` in slot ``t`` becomes ``P_u * F(u, v, t) / d(u, v)**alpha``.
A model plugs into the physical model through
``SINRParameters(gain_model=...)``; every kernel (``decode_arrays``, the
channel ``resolve`` paths, the :class:`~repro.sinr.arrays.LinkArrayCache`
affectance/SINR/gain matrices) consults it.

Two design rules keep the existing machinery intact:

* **Bit-for-bit deterministic default.**  ``gain_model=None`` and
  :class:`DeterministicPathLoss` both make every kernel take its original
  code path (no multiplications are applied at all), so results are
  bit-identical to the seed kernels - the parity tests pin this.
* **Stateless, counter-based randomness.**  Stochastic fades are pure
  functions of ``(model configuration, sender id, receiver id, slot)``
  computed with a vectorized SplitMix64 hash, not draws from a shared
  stream.  The same seed therefore yields the same fade regardless of query
  order, subset, engine (batch vs legacy) or worker process - exactly the
  property the parallel experiment harness needs - and a fade matrix query
  costs O(|tx| * |rx|) with no per-universe state to invalidate when nodes
  move or churn.

Models compose multiplicatively via :class:`ComposedGain` (e.g. log-normal
shadowing on top of per-slot Rayleigh fading).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "GainModel",
    "DeterministicPathLoss",
    "LogNormalShadowing",
    "RayleighFading",
    "ComposedGain",
]


# SplitMix64 mixing constants (Steele, Lea & Flood 2014).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
# Domain-separation tags so the shadowing and fading streams never collide
# even under identical seeds.
_SHADOW_STREAM = 0x5348414457
_RAYLEIGH_STREAM = 0x5241594C


def _mix(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a bijective avalanche mix on uint64 values.

    All arithmetic wraps modulo 2**64 by design.
    """
    x = x + _GAMMA
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def _hash_u64(*components: np.ndarray | int) -> np.ndarray:
    """Combine integer components (scalars or broadcastable arrays) to uint64."""
    h = np.uint64(0)
    with np.errstate(over="ignore"):
        for component in components:
            h = _mix(h ^ np.asarray(component).astype(np.uint64))
    return h


def _uniform_open(h: np.ndarray) -> np.ndarray:
    """Map uint64 hashes to uniforms in the half-open interval (0, 1]."""
    return ((h >> np.uint64(11)).astype(np.float64) + 1.0) * (2.0**-53)


class GainModel(ABC):
    """A multiplicative fade on received power, per ordered node pair and slot.

    Subclasses implement :meth:`_pair_fade` elementwise over broadcastable id
    arrays; :meth:`fade` and :meth:`fade_pairs` derive the outer-product and
    aligned-pair forms from it.  A return value of ``None`` means *unit gain
    everywhere* and tells callers to skip the multiplication entirely - this
    is how the deterministic model stays bit-for-bit identical to the
    hardcoded path loss.
    """

    #: Whether the model never perturbs the deterministic path loss.
    deterministic: bool = False
    #: Whether fades ignore the slot index (static shadowing yes, fast
    #: fading no).  Slot-invariant fades over a fixed node universe are
    #: cached by ``NodeArrayCache.fade_matrix`` and sliced per slot instead
    #: of being re-hashed on every decode.
    slot_invariant: bool = False

    @abstractmethod
    def _pair_fade(
        self, tx_ids: np.ndarray, rx_ids: np.ndarray, slot: int | None
    ) -> np.ndarray | None:
        """Elementwise fade for broadcastable (tx id, rx id) arrays."""

    def fade(
        self,
        tx_ids: np.ndarray,
        rx_ids: np.ndarray,
        slot: int | None = None,
    ) -> np.ndarray | None:
        """Fade matrix ``F[i, j]`` from transmitter ``tx_ids[i]`` to listener
        ``rx_ids[j]`` in ``slot`` (``None`` selects the slot-free draw that
        slotless contexts such as feasibility checks use)."""
        tx = np.asarray(tx_ids, dtype=np.int64)
        rx = np.asarray(rx_ids, dtype=np.int64)
        return self._pair_fade(tx[:, None], rx[None, :], slot)

    def fade_pairs(
        self,
        tx_ids: np.ndarray,
        rx_ids: np.ndarray,
        slot: int | None = None,
    ) -> np.ndarray | None:
        """Aligned per-pair fades: ``F[k]`` from ``tx_ids[k]`` to ``rx_ids[k]``."""
        tx = np.asarray(tx_ids, dtype=np.int64)
        rx = np.asarray(rx_ids, dtype=np.int64)
        return self._pair_fade(tx, rx, slot)

    def fade_stack(
        self,
        tx_ids: np.ndarray,
        rx_ids: np.ndarray,
        slots: np.ndarray,
    ) -> np.ndarray | None:
        """Stacked fade tensor ``F[t, i, j]`` for each slot in ``slots``.

        This is the trial-stacked form :func:`~repro.sinr.channel
        .decode_many` consumes: slot-invariant models return their 2D fade
        matrix (broadcast across trials by the caller - no ``T``-fold
        copy), slot-dependent models return one ``(T, |tx|, |rx|)`` tensor.
        Every slice ``F[t]`` is bit-identical to ``fade(tx_ids, rx_ids,
        slots[t])``; the counter-based hashes make the vectorized and the
        per-slot evaluation literally the same arithmetic.
        """
        if self.slot_invariant:
            return self.fade(tx_ids, rx_ids, None)
        mats = [self.fade(tx_ids, rx_ids, int(slot)) for slot in np.asarray(slots)]
        if not mats or mats[0] is None:
            return None
        return np.stack(mats)


@dataclass(frozen=True)
class DeterministicPathLoss(GainModel):
    """The paper's deterministic ``P / d**alpha`` model, as an explicit object.

    Setting this is exactly equivalent to ``gain_model=None``: every kernel
    detects the unit fade and takes its original, unmodified code path, so
    results are bit-for-bit identical to the seed implementation.
    """

    deterministic = True
    slot_invariant = True

    def _pair_fade(self, tx_ids, rx_ids, slot):
        return None


@dataclass(frozen=True)
class LogNormalShadowing(GainModel):
    """Static log-normal shadowing: ``F = 10**(X / 10)``, ``X ~ N(0, sigma_db)``.

    The shadowing term models obstacles between a node pair, so it is
    symmetric (``F(u, v) = F(v, u)``, link reciprocity) and constant over
    time; ``slot`` is ignored.  Fades are pure functions of
    ``(seed, min(u, v), max(u, v))``.

    Args:
        sigma_db: standard deviation of the shadowing term in decibels
            (typical outdoor values: 4-12 dB).  Must be non-negative; 0 gives
            unit fades (but still exercises the stochastic code path).
        seed: stream seed; the same seed reproduces the same environment.
    """

    sigma_db: float = 6.0
    seed: int = 0

    slot_invariant = True

    def __post_init__(self) -> None:
        if self.sigma_db < 0.0:
            raise ConfigurationError(
                f"sigma_db must be non-negative, got {self.sigma_db}"
            )

    def _pair_fade(self, tx_ids, rx_ids, slot):
        lo = np.minimum(tx_ids, rx_ids)
        hi = np.maximum(tx_ids, rx_ids)
        # Box-Muller from two independent uniform streams per unordered pair.
        u1 = _uniform_open(_hash_u64(_SHADOW_STREAM, self.seed, lo, hi, 1))
        u2 = _uniform_open(_hash_u64(_SHADOW_STREAM, self.seed, lo, hi, 2))
        normal = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return np.power(10.0, (self.sigma_db / 10.0) * normal)


@dataclass(frozen=True)
class RayleighFading(GainModel):
    """Per-slot Rayleigh fast fading: ``F ~ Exponential(1)`` per ordered pair.

    Rayleigh-distributed amplitude means exponentially distributed received
    *power* with unit mean.  A fresh fade is drawn for every ordered
    ``(sender, receiver)`` pair every ``block_slots`` slots (the channel
    coherence time); ``slot=None`` (slotless contexts, e.g. feasibility
    checks) uses the block of slot 0.

    Args:
        seed: stream seed; the same seed reproduces the same fading process.
        block_slots: number of consecutive slots sharing one draw.
    """

    seed: int = 0
    block_slots: int = 1

    def __post_init__(self) -> None:
        if self.block_slots < 1:
            raise ConfigurationError(
                f"block_slots must be positive, got {self.block_slots}"
            )

    def _pair_fade(self, tx_ids, rx_ids, slot):
        block = 0 if slot is None else int(slot) // self.block_slots
        u = _uniform_open(_hash_u64(_RAYLEIGH_STREAM, self.seed, tx_ids, rx_ids, block))
        with np.errstate(divide="ignore"):
            return -np.log(u)

    def fade_stack(self, tx_ids, rx_ids, slots):
        # One vectorized hash over the whole (slot, tx, rx) stack; the block
        # index broadcasts through the same SplitMix64 mix a per-slot call
        # feeds it through, so every slice is bit-identical to `fade`.
        tx = np.asarray(tx_ids, dtype=np.int64)
        rx = np.asarray(rx_ids, dtype=np.int64)
        blocks = np.asarray(slots, dtype=np.int64) // self.block_slots
        u = _uniform_open(
            _hash_u64(
                _RAYLEIGH_STREAM,
                self.seed,
                tx[None, :, None],
                rx[None, None, :],
                blocks[:, None, None],
            )
        )
        with np.errstate(divide="ignore"):
            return -np.log(u)


@dataclass(frozen=True)
class ComposedGain(GainModel):
    """Product of several gain models (e.g. shadowing on top of fast fading)."""

    models: tuple[GainModel, ...]

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigurationError("ComposedGain requires at least one model")
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(
            self, "deterministic", all(m.deterministic for m in self.models)
        )
        object.__setattr__(
            self, "slot_invariant", all(m.slot_invariant for m in self.models)
        )

    def _pair_fade(self, tx_ids, rx_ids, slot):
        total: np.ndarray | None = None
        for model in self.models:
            fade = model._pair_fade(tx_ids, rx_ids, slot)
            if fade is None:
                continue
            total = fade if total is None else total * fade
        return total

    def fade_stack(self, tx_ids, rx_ids, slots):
        if self.slot_invariant:
            return self.fade(tx_ids, rx_ids, None)
        # Multiply the component stacks in model order (2D slot-invariant
        # factors broadcast across the trial axis), matching the per-slot
        # product elementwise.
        total: np.ndarray | None = None
        for model in self.models:
            fade = model.fade_stack(tx_ids, rx_ids, slots)
            if fade is None:
                continue
            total = fade if total is None else total * fade
        return total
