"""Mobility models: node movement between slots/epochs.

A :class:`MobilityModel` turns the static node set of the paper into a
changing topology: given the current coordinate array it returns which nodes
moved and where to.  The :class:`~repro.dynamics.simulator.DynamicSimulator`
feeds those deltas into
:meth:`~repro.sinr.arrays.NodeArrayCache.update_positions`, which forwards
them to the shared :class:`~repro.state.NetworkState`; the state patches the
moved rows/columns of its distance/attenuation matrices incrementally
(O(k * capacity) for ``k`` movers instead of an O(n^2) rebuild) and every
view - the batch slot engine's channel cache, link caches built for
feasibility checks - keeps decoding against up-to-date matrices with no
rebuild cost.

All models draw from the generator handed to :meth:`MobilityModel.move`, so a
run is reproducible from the driver's seed.  Movement is reflected at the
model's :class:`~repro.geometry.region.Rectangle` bounds (defaulting to the
bounding box of the initial placement, slightly expanded) so nodes never
drift off to infinity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry import Rectangle, bounding_rectangle

__all__ = [
    "MobilityModel",
    "StaticMobility",
    "RandomWalk",
    "RandomWaypoint",
    "bounding_rectangle",
]


def _reflect(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Reflect coordinates into ``[low, high]`` (billiard boundary)."""
    span = high - low
    if span <= 0:
        return np.full_like(values, low)
    folded = np.mod(values - low, 2.0 * span)
    return low + np.where(folded > span, 2.0 * span - folded, folded)


class MobilityModel(ABC):
    """Per-step node movement over a fixed-id node universe."""

    def begin_run(
        self,
        xy: np.ndarray,
        rng: np.random.Generator,
        ids: np.ndarray | None = None,
    ) -> None:
        """Start a fresh run: drop all per-run state, then :meth:`reset`.

        A model instance may be reused across deployments (e.g. one
        ``DynamicScenario`` driving several simulators); this hook clears
        run-scoped state - derived bounds, per-node journeys - so the second
        run does not inherit the first deployment's geography.  The default
        delegates to :meth:`reset`, which suffices for stateless models.
        """
        self.reset(xy, rng, ids)

    def reset(
        self,
        xy: np.ndarray,
        rng: np.random.Generator,
        ids: np.ndarray | None = None,
    ) -> None:
        """(Re)initialize per-node state for a universe with positions ``xy``.

        Called mid-run whenever churn changes the universe.  ``ids`` (when
        given) are the node ids aligned with ``xy``; stateful models use
        them to carry survivors' state across a churn event instead of
        restarting everyone.  Stateless models need not override this.
        """

    @abstractmethod
    def move(
        self, xy: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """One movement step from current positions ``xy``.

        Returns:
            ``(indices, new_xy)``: the universe indices of the nodes that
            moved and their new coordinates (``(len(indices), 2)``).  Both
            are empty when nothing moved.
        """


_NO_MOVE = (np.empty(0, dtype=np.intp), np.empty((0, 2), dtype=float))


class StaticMobility(MobilityModel):
    """The paper's model: nobody moves (useful as a scenario placeholder)."""

    def move(self, xy, rng):
        return _NO_MOVE


class RandomWalk(MobilityModel):
    """Brownian motion: i.i.d. Gaussian steps, reflected at the bounds.

    Args:
        sigma: standard deviation of each coordinate step.
        bounds: rectangle the walk is confined to; derived once from the
            first positions seen (expanded bounding box) when omitted, and
            kept fixed afterwards so the confinement region cannot drift
            with the cloud across churn events.
        fraction: probability that a given node moves in a given step
            (``1.0`` = everyone moves; smaller values model partial
            mobility and exercise the incremental cache invalidation).
    """

    def __init__(
        self,
        sigma: float,
        bounds: Rectangle | None = None,
        fraction: float = 1.0,
    ):
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.sigma = sigma
        self.fraction = fraction
        self._explicit_bounds = bounds
        self._bounds = bounds

    def _resolved_bounds(self, xy: np.ndarray) -> Rectangle:
        """The confinement rectangle: explicit, else derived once per run."""
        if self._bounds is None:
            self._bounds = bounding_rectangle(xy)
        return self._bounds

    def begin_run(self, xy, rng, ids=None):
        self._bounds = self._explicit_bounds
        self.reset(xy, rng, ids)

    def reset(self, xy, rng, ids=None):
        self._resolved_bounds(xy)

    def move(self, xy, rng):
        n = len(xy)
        if n == 0 or self.sigma == 0.0:
            return _NO_MOVE
        if self.fraction < 1.0:
            indices = np.nonzero(rng.random(n) < self.fraction)[0].astype(np.intp)
        else:
            indices = np.arange(n, dtype=np.intp)
        if indices.size == 0:
            return _NO_MOVE
        bounds = self._resolved_bounds(xy)
        steps = rng.normal(0.0, self.sigma, size=(indices.size, 2))
        moved = xy[indices] + steps
        moved[:, 0] = _reflect(moved[:, 0], bounds.x_min, bounds.x_max)
        moved[:, 1] = _reflect(moved[:, 1], bounds.y_min, bounds.y_max)
        return indices, moved


class RandomWaypoint(MobilityModel):
    """The classic random-waypoint model.

    Every node travels toward a private waypoint (uniform in the bounds) at
    ``speed`` per step; on arrival it pauses for ``pause_steps`` steps and
    then draws a new waypoint.  Paused nodes do not move, so only a subset of
    rows is invalidated each step.

    Args:
        speed: distance covered per step.
        bounds: waypoint region; defaults to the expanded bounding box of the
            positions seen at :meth:`reset`.
        pause_steps: steps spent resting at a reached waypoint.
    """

    def __init__(
        self,
        speed: float,
        bounds: Rectangle | None = None,
        pause_steps: int = 0,
    ):
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        if pause_steps < 0:
            raise ConfigurationError(f"pause_steps must be non-negative, got {pause_steps}")
        self.speed = speed
        self.pause_steps = pause_steps
        self._explicit_bounds = bounds
        self._bounds: Rectangle | None = bounds
        self._ids: np.ndarray | None = None
        self._waypoints: np.ndarray | None = None
        self._pause: np.ndarray | None = None

    def begin_run(self, xy, rng, ids=None):
        self._bounds = self._explicit_bounds
        self._ids = None
        self._waypoints = None
        self._pause = None
        self.reset(xy, rng, ids)

    def _draw_waypoints(self, count: int, rng: np.random.Generator) -> np.ndarray:
        bounds = self._bounds
        assert bounds is not None
        xs = rng.uniform(bounds.x_min, bounds.x_max, size=count)
        ys = rng.uniform(bounds.y_min, bounds.y_max, size=count)
        return np.column_stack([xs, ys])

    def reset(self, xy, rng, ids=None):
        if self._bounds is None:
            self._bounds = bounding_rectangle(xy)
        n = len(xy)
        waypoints = self._draw_waypoints(n, rng)
        pause = np.zeros(n, dtype=np.int64)
        if ids is not None:
            new_ids = np.asarray(ids, dtype=np.int64).copy()
            if self._ids is not None and self._waypoints is not None:
                # Churn re-anchors the universe indexing: carry survivors'
                # journeys (waypoint + pause) across by node id so only
                # genuine arrivals start fresh.
                old_index = {int(node_id): k for k, node_id in enumerate(self._ids)}
                for k, node_id in enumerate(new_ids.tolist()):
                    j = old_index.get(node_id)
                    if j is not None:
                        waypoints[k] = self._waypoints[j]
                        pause[k] = self._pause[j]
            self._ids = new_ids
        else:
            self._ids = None
        self._waypoints = waypoints
        self._pause = pause

    def move(self, xy, rng):
        n = len(xy)
        if n == 0:
            return _NO_MOVE
        if self._waypoints is None or len(self._waypoints) != n:
            self.reset(xy, rng)
        assert self._waypoints is not None and self._pause is not None

        resting = self._pause > 0
        self._pause[resting] -= 1
        active = np.nonzero(~resting)[0].astype(np.intp)
        if active.size == 0:
            return _NO_MOVE

        to_target = self._waypoints[active] - xy[active]
        distance = np.hypot(to_target[:, 0], to_target[:, 1])
        arriving = distance <= self.speed
        new_xy = np.where(
            arriving[:, None],
            self._waypoints[active],
            xy[active] + to_target * (self.speed / np.maximum(distance, 1e-300))[:, None],
        )
        arrived = active[arriving]
        if arrived.size:
            self._pause[arrived] = self.pause_steps
            self._waypoints[arrived] = self._draw_waypoints(arrived.size, rng)
        return active, new_xy
