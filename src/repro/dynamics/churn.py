"""Churn processes: seeded streams of node failures and arrivals.

A :class:`ChurnProcess` turns "dynamic situations" (the paper's conclusion)
into a reproducible event stream: for every epoch it derives a private
generator from ``(seed, epoch)``, so the same configuration replays the same
failures and arrivals regardless of how many epochs were evaluated before,
in which order, or in which worker process.  The
:class:`~repro.dynamics.simulator.DynamicSimulator` feeds each event into
:meth:`repro.core.repair.TreeRepairer.integrate`, which removes the failed
nodes and attaches the arrivals with a single incremental ``Init`` patch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry import Node, Point, Rectangle
from .mobility import bounding_rectangle

__all__ = ["ChurnEvent", "ChurnProcess"]

# Domain-separation tag for the churn RNG stream.
_CHURN_STREAM = 0x434855524E


@dataclass(frozen=True)
class ChurnEvent:
    """One epoch's worth of churn.

    Attributes:
        epoch: the epoch index the event belongs to.
        failed: ids of the nodes that fail at this epoch.
        arrivals: freshly deployed nodes joining at this epoch.
    """

    epoch: int
    failed: tuple[int, ...]
    arrivals: tuple[Node, ...]

    @property
    def is_empty(self) -> bool:
        """Whether the epoch passes without any topology change."""
        return not self.failed and not self.arrivals


class ChurnProcess:
    """Seeded per-epoch failure/arrival stream.

    Args:
        failure_prob: probability that each alive node fails in a given
            epoch.  At least one node always survives an event (if the draw
            would kill everyone, one victim is spared at random).
        arrival_rate: expected number of new nodes per epoch (Poisson).
            Arrivals are placed uniformly in ``region`` (default: the
            expanded bounding box of the current nodes) at least
            ``min_separation`` away from everyone; placements that cannot be
            separated are dropped for that epoch.
        seed: stream seed; events are pure functions of ``(seed, epoch)``.
        region: deployment region for arrivals.
        min_separation: lower bound on pairwise distances for arrivals (the
            paper normalizes this to 1).
        protected_ids: node ids that never fail (e.g. a sink).
    """

    def __init__(
        self,
        *,
        failure_prob: float = 0.05,
        arrival_rate: float = 0.0,
        seed: int = 0,
        region: Rectangle | None = None,
        min_separation: float = 1.0,
        protected_ids: Sequence[int] = (),
    ):
        if not 0.0 <= failure_prob <= 1.0:
            raise ConfigurationError(f"failure_prob must be in [0, 1], got {failure_prob}")
        if arrival_rate < 0.0:
            raise ConfigurationError(f"arrival_rate must be non-negative, got {arrival_rate}")
        if min_separation <= 0.0:
            raise ConfigurationError(f"min_separation must be positive, got {min_separation}")
        self.failure_prob = failure_prob
        self.arrival_rate = arrival_rate
        self.seed = seed
        self.region = region
        self.min_separation = min_separation
        self.protected_ids = frozenset(int(i) for i in protected_ids)

    def _epoch_rng(self, epoch: int) -> np.random.Generator:
        return np.random.default_rng([_CHURN_STREAM, self.seed, int(epoch)])

    def events_for(
        self,
        epoch: int,
        nodes: Sequence[Node],
        next_id: int,
        *,
        xy: np.ndarray | None = None,
    ) -> ChurnEvent:
        """The churn event for ``epoch`` given the currently alive nodes.

        Args:
            epoch: epoch index (part of the event's random identity).
            nodes: currently alive nodes.
            next_id: smallest id to assign to an arrival this epoch.
            xy: the nodes' coordinates aligned with ``nodes`` (e.g. a
                ``NetworkState`` view's ``xy``), sparing the per-epoch
                rebuild of the coordinate array; derived from the node
                objects when omitted.  The floats are the same either way,
                so the drawn event is identical.
        """
        rng = self._epoch_rng(epoch)
        failed: list[int] = []
        if nodes and self.failure_prob > 0.0:
            draws = rng.random(len(nodes))
            candidates = [
                node.id
                for node, draw in zip(nodes, draws)
                if draw < self.failure_prob and node.id not in self.protected_ids
            ]
            if len(candidates) >= len(nodes):
                spared = int(rng.integers(0, len(candidates)))
                candidates = candidates[:spared] + candidates[spared + 1 :]
            failed = candidates

        arrivals: list[Node] = []
        if self.arrival_rate > 0.0:
            count = int(rng.poisson(self.arrival_rate))
            if count:
                if xy is None:
                    xy = np.array([[n.x, n.y] for n in nodes], dtype=float).reshape(-1, 2)
                elif len(xy) != len(nodes):
                    raise ConfigurationError(
                        f"xy has {len(xy)} rows for {len(nodes)} nodes"
                    )
                region = self.region
                if region is None:
                    region = bounding_rectangle(np.asarray(xy, dtype=float).reshape(-1, 2))
                failed_set = set(failed)
                surviving_xy = [
                    (float(x), float(y))
                    for node, (x, y) in zip(nodes, xy)
                    if node.id not in failed_set
                ]
                placed: list[tuple[float, float]] = list(surviving_xy)
                for k in range(count):
                    for _ in range(32):  # rejection-sample a separated spot
                        x = float(rng.uniform(region.x_min, region.x_max))
                        y = float(rng.uniform(region.y_min, region.y_max))
                        if all(
                            (x - px) ** 2 + (y - py) ** 2 >= self.min_separation**2
                            for px, py in placed
                        ):
                            placed.append((x, y))
                            arrivals.append(
                                Node(id=next_id + len(arrivals), position=Point(x, y))
                            )
                            break
        return ChurnEvent(epoch=int(epoch), failed=tuple(failed), arrivals=tuple(arrivals))
