"""Epoch-driven driver for dynamic-network scenarios.

The :class:`DynamicSimulator` runs the paper's machinery through *changing*
conditions: every epoch it (1) moves nodes according to the scenario's
mobility model, (2) applies the scenario's churn event through
:meth:`repro.core.repair.TreeRepairer.integrate`, so the Init-tree and its
schedule are incrementally repaired mid-run, and (3) measures the health of
the structure: the fraction of schedule slot groups still SINR-feasible at
the current positions, the fraction of tree links a physical channel replay
actually delivers (under the scenario's gain model, with per-slot fading),
and strong connectivity.

All geometry flows through one :class:`~repro.state.NetworkState` that
lives for the whole run: mobility patches the moved rows, churn splices are
applied to the same store by ``integrate`` (failures release slots,
arrivals patch only their own rows) and the channel's cache merely re-slots
its view - every epoch costs O(damage), never an O(n^2) matrix rebuild.
The per-epoch patch cost is reported in
:attr:`EpochRecord.patch_cells` (matrix cells rewritten; a rebuild would
cost ``capacity**2`` per materialized matrix).

Everything is reproducible from the driver's seed: the build/repair
randomness flows from one generator, gain-model fades are pure functions of
their own seeds, and churn events are pure functions of ``(seed, epoch)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..core import BiTree, InitialTreeBuilder, Schedule, TreeRepairer
from ..exceptions import ConfigurationError
from ..geometry import Node
from ..obs.runtime import OBS
from ..obs.spans import begin_span, end_span, span
from ..sinr import CachedChannel, ExplicitPower, LinkArrayCache, SINRParameters, is_feasible
from ..sinr.power import PowerAssignment
from ..state import DecodeWorkspace, NetworkState, TiledNetworkState
from .churn import ChurnProcess
from .gain import GainModel
from .mobility import MobilityModel

__all__ = [
    "DynamicScenario",
    "EpochRecord",
    "DynamicRunResult",
    "DynamicSimulator",
    "replay_schedule",
]

# Domain-separation tag for the driver RNG stream.
_DYNAMICS_STREAM = 0x44594E53


@dataclass(frozen=True)
class DynamicScenario:
    """What changes while a dynamic run unfolds.

    Attributes:
        mobility: node movement per epoch (``None`` = static positions).
        churn: failure/arrival stream (``None`` = fixed node set).
        gain_model: channel-gain model used for *evaluating* the structure
            (feasibility and replay).  Construction and repair always run
            under the deterministic model, mirroring a planner that cannot
            observe fades in advance.
        epochs: number of epochs to simulate.
    """

    mobility: MobilityModel | None = None
    churn: ChurnProcess | None = None
    gain_model: GainModel | None = None
    epochs: int = 10

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ConfigurationError(f"epochs must be non-negative, got {self.epochs}")


@dataclass(frozen=True)
class EpochRecord:
    """Health and cost measurements for one epoch.

    ``patch_cells`` counts the derived-matrix cells the shared
    :class:`~repro.state.NetworkState` rewrote for this epoch's moves and
    churn - the O(damage) cost that replaced the former per-event O(n^2)
    cache rebuild.
    """

    epoch: int
    n_nodes: int
    moved: int
    failed: tuple[int, ...]
    arrived: tuple[int, ...]
    repair_slots: int
    root_changed: bool
    feasible_fraction: float
    link_success_rate: float
    strongly_connected: bool
    patch_cells: int = 0


@dataclass
class DynamicRunResult:
    """Outcome of a full dynamic run.

    Attributes:
        initial_slots: channel slots spent building the initial tree.
        records: one :class:`EpochRecord` per simulated epoch.
        tree: the final bi-tree.
        power: the final per-link power assignment.
    """

    initial_slots: int
    records: list[EpochRecord] = field(default_factory=list)
    tree: BiTree | None = None
    power: ExplicitPower | None = None

    @property
    def total_repair_slots(self) -> int:
        """Channel slots spent on repairs across all epochs."""
        return sum(record.repair_slots for record in self.records)

    def half_life(self, threshold: float = 0.5) -> int | None:
        """First epoch whose feasible fraction dropped below ``threshold``.

        Returns ``None`` when the structure outlived the run - the scenario's
        connectivity half-life exceeds the simulated horizon.
        """
        for record in self.records:
            if record.feasible_fraction < threshold:
                return record.epoch
        return None


def replay_schedule(
    schedule: Schedule,
    power: PowerAssignment,
    channel: CachedChannel,
    *,
    start_slot: int = 0,
    groups: list[list] | None = None,
) -> tuple[int, int, int]:
    """Replay a schedule's slot groups through the physical channel.

    Every used slot of ``schedule`` becomes one physical slot: the group's
    senders transmit with their recorded powers and each link succeeds when
    its receiver actually decodes *its own sender* (not merely anyone) -
    under the channel's gain model, at slot index ``start_slot + group
    position`` so slot-dependent fading (Rayleigh) draws fresh fades per
    group.  Receivers that are themselves transmitting in the group fail by
    half-duplex.

    Args:
        schedule: the schedule whose slot groups are replayed.
        power: per-link powers.
        channel: cached channel whose node universe covers the links.
        start_slot: physical slot index of the first group.
        groups: the schedule's slot groups in slot order, when the caller
            already extracted them (avoids a second pass over the schedule).

    Returns:
        ``(successes, links, slots)``: delivered links, total links, and
        physical slots consumed.
    """
    cache = channel.cache
    if groups is None:
        groups = [
            list(schedule.links_in_slot(slot_value))
            for slot_value in schedule.used_slots()
        ]
    successes = 0
    total = 0
    slots = 0
    # One scratch arena for the whole replay: each group's decode reuses the
    # same buffers (results are consumed before the next group decodes).
    workspace = DecodeWorkspace()
    for group_index, links in enumerate(groups):
        tx_idx = np.array([cache.index_of_id(l.sender.id) for l in links], dtype=np.intp)
        powers = np.array([power.power(l) for l in links], dtype=float)
        tx_id_set = {l.sender.id for l in links}
        # Half-duplex: links whose receiver is also transmitting cannot decode.
        live = [k for k, l in enumerate(links) if l.receiver.id not in tx_id_set]
        total += len(links)
        slots += 1
        if not live:
            continue
        rx_idx = np.array(
            [cache.index_of_id(links[k].receiver.id) for k in live], dtype=np.intp
        )
        best, _, ok = channel.resolve_indices(
            tx_idx, rx_idx, powers, slot=start_slot + group_index, workspace=workspace
        )
        for j, k in enumerate(live):
            if ok[j] and int(best[j]) == k:
                successes += 1
    return successes, total, slots


class DynamicSimulator:
    """Runs a :class:`DynamicScenario` over an initial deployment.

    Args:
        nodes: initial deployment.
        params: physical-model parameters (construction/repair always use the
            deterministic gain; the scenario's ``gain_model`` is applied for
            evaluation only).
        scenario: the dynamics to apply.
        constants: protocol constants for ``Init`` and its repairs.
        seed: master seed of the run.
        state: an existing :class:`~repro.state.NetworkState` containing
            every node of ``nodes``; the run's channel caches then view it
            (and churn splices are applied to it), so the caller can share
            one geometry store with its own channels and inspect the patch
            cost afterwards.  A private state is created when omitted.
    """

    def __init__(
        self,
        nodes: list[Node],
        params: SINRParameters,
        scenario: DynamicScenario,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        seed: int = 0,
        *,
        state: NetworkState | None = None,
    ):
        self.nodes = list(nodes)
        self.state = state
        # Construction/repair always run deterministic; evaluation honors the
        # scenario's gain model, falling back to one already set on the
        # caller's parameters (the way every other API accepts it).
        self.params = params.with_overrides(gain_model=None)
        eval_model = (
            scenario.gain_model if scenario.gain_model is not None else params.gain_model
        )
        self.eval_params = (
            params.with_overrides(gain_model=eval_model)
            if eval_model is not None
            else self.params
        )
        self.scenario = scenario
        self.constants = constants
        self.seed = seed

    def run(self) -> DynamicRunResult:
        """Simulate the scenario and return per-epoch records."""
        rng = np.random.default_rng([_DYNAMICS_STREAM, self.seed])
        builder = InitialTreeBuilder(self.params, self.constants)
        with span("dynamics.build", n=len(self.nodes)):
            outcome = builder.build(self.nodes, rng)
        tree, power = outcome.tree, outcome.power
        repairer = TreeRepairer(self.params, self.constants)
        # One geometry store for the whole run: mobility patches rows, churn
        # splices release/assign slots, and the channel's cache is a view of
        # it re-anchored to the tree's node order - no per-event rebuilds.
        # store="tiled" swaps in the O(n) tiled state; moves/splices then
        # cost only bookkeeping (tile grid and row caches rebuild lazily)
        # instead of O(k * capacity) matrix patches.
        node_list = list(tree.nodes.values())
        if self.state is not None:
            state = self.state
        elif self.eval_params.store == "tiled":
            state = TiledNetworkState(node_list)
        else:
            state = NetworkState(node_list)
        channel = CachedChannel(self.eval_params, node_list, state=state)
        mobility, churn = self.scenario.mobility, self.scenario.churn
        if mobility is not None:
            mobility.begin_run(channel.cache.xy, rng, channel.cache.ids)
        next_id = max(tree.nodes) + 1
        global_slot = outcome.slots_used
        result = DynamicRunResult(initial_slots=outcome.slots_used)
        cells_before = state.cells_patched

        for epoch in range(self.scenario.epochs):
            epoch_span = begin_span("dynamics.epoch", epoch=epoch)
            moved = 0
            if mobility is not None:
                indices, new_xy = mobility.move(channel.cache.xy, rng)
                if indices.size:
                    channel.cache.update_positions(indices, new_xy)
                    moved = int(indices.size)
                    # Refresh the tree's node objects to the new positions;
                    # parent pointers and slot stamps are unchanged.
                    tree = BiTree.from_parent_map(
                        list(channel.cache.nodes),
                        tree.root_id,
                        tree.parent,
                        tree.slot_stamps(),
                    )

            failed: tuple[int, ...] = ()
            arrived: tuple[int, ...] = ()
            repair_slots = 0
            root_changed = False
            if churn is not None:
                event = churn.events_for(
                    epoch, list(tree.nodes.values()), next_id, xy=channel.cache.xy
                )
                if not event.is_empty:
                    repair = repairer.integrate(
                        tree,
                        power,
                        failed_ids=event.failed,
                        arrivals=event.arrivals,
                        rng=rng,
                        state=state,
                    )
                    tree, power = repair.tree, repair.power
                    failed = tuple(sorted(repair.failed))
                    arrived = tuple(sorted(repair.arrived))
                    repair_slots = repair.slots_used
                    root_changed = repair.root_changed
                    global_slot += repair.slots_used
                    next_id = max(next_id, max(tree.nodes) + 1)
                    # The state already absorbed the splice at O(damage);
                    # re-anchor the channel's view to the repaired tree's
                    # node order and the per-node mobility state to the new
                    # indexing (id-keyed state survives; only arrivals start
                    # fresh).
                    channel.cache.sync(tree.nodes.values())
                    if mobility is not None:
                        mobility.reset(channel.cache.xy, rng, channel.cache.ids)

            schedule = tree.aggregation_schedule
            groups = [
                list(schedule.links_in_slot(slot_value))
                for slot_value in schedule.used_slots()
            ]
            if groups:
                # Per-group link caches view the run's shared state, so the
                # feasibility checks gather from the one distance store the
                # replay materialized instead of recomputing coordinates.
                feasible = sum(
                    1
                    for group in groups
                    if is_feasible(
                        LinkArrayCache(group, state=state), power, self.eval_params
                    )
                )
                feasible_fraction = feasible / len(groups)
            else:
                feasible_fraction = 1.0
            successes, total, slots = replay_schedule(
                schedule, power, channel, start_slot=global_slot, groups=groups
            )
            global_slot += slots
            result.records.append(
                EpochRecord(
                    epoch=epoch,
                    n_nodes=tree.size,
                    moved=moved,
                    failed=failed,
                    arrived=arrived,
                    repair_slots=repair_slots,
                    root_changed=root_changed,
                    feasible_fraction=feasible_fraction,
                    link_success_rate=successes / total if total else 1.0,
                    strongly_connected=tree.is_strongly_connected(),
                    patch_cells=state.cells_patched - cells_before,
                )
            )
            cells_before = state.cells_patched
            if OBS.enabled:
                registry = OBS.registry
                registry.inc("dynamics.epochs")
                if moved:
                    registry.inc("dynamics.moved", moved)
                if failed:
                    registry.inc("dynamics.failed", len(failed))
                if arrived:
                    registry.inc("dynamics.arrived", len(arrived))
                if repair_slots:
                    registry.inc("dynamics.repair_slots", repair_slots)
            end_span(epoch_span)

        result.tree = tree
        result.power = power
        return result
