"""repro: distributed connectivity of wireless networks in the SINR model.

A from-scratch reproduction of Halldorsson & Mitra, "Distributed Connectivity
of Wireless Networks" (PODC 2012 / arXiv:1205.5164): the SINR simulation
substrate, the distributed bi-tree construction ``Init``, sparsity-based
mean-power rescheduling, the ``TreeViaCapacity`` framework matching
centralized schedule lengths, baselines, and an experiment harness validating
every theorem's scaling behaviour.

Quickstart::

    import numpy as np
    from repro import uniform_random, SINRParameters, ConnectivityProtocol

    rng = np.random.default_rng(0)
    nodes = uniform_random(64, rng)
    protocol = ConnectivityProtocol(SINRParameters())
    result = protocol.build_initial_tree(nodes, rng)
    print(result.tree.root_id, result.slots_used)
"""

from .constants import AlgorithmConstants, PaperConstants, PracticalConstants
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    DeploymentError,
    InfeasiblePowerError,
    ProtocolError,
    ReproError,
    ScheduleError,
)
from .geometry import (
    Node,
    Point,
    clustered,
    exponential_chain,
    grid,
    linear_chain,
    two_scale,
    uniform_random,
)
from .links import Link, LinkSet, sparsity
from .state import NetworkState
from .sinr import (
    Channel,
    ExplicitPower,
    LinearPower,
    MeanPower,
    SINRParameters,
    UniformPower,
    affectance_matrix,
    is_feasible,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "AlgorithmConstants",
    "PracticalConstants",
    "PaperConstants",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "DeploymentError",
    "InfeasiblePowerError",
    "ScheduleError",
    "ProtocolError",
    "ConvergenceError",
    # geometry
    "Point",
    "Node",
    "uniform_random",
    "grid",
    "clustered",
    "two_scale",
    "exponential_chain",
    "linear_chain",
    # links
    "Link",
    "LinkSet",
    "sparsity",
    # state
    "NetworkState",
    # sinr
    "SINRParameters",
    "UniformPower",
    "MeanPower",
    "LinearPower",
    "ExplicitPower",
    "Channel",
    "affectance_matrix",
    "is_feasible",
    # core (resolved lazily below)
    "BiTree",
    "Schedule",
    "InitialTreeBuilder",
    "InitialTreeResult",
    "ConnectivityProtocol",
    "TreeViaCapacity",
    # dynamics (resolved lazily below)
    "DynamicScenario",
    "DynamicSimulator",
    "ChurnProcess",
    "RandomWalk",
    "RandomWaypoint",
    "LogNormalShadowing",
    "RayleighFading",
    "DeterministicPathLoss",
]


def __getattr__(name: str):
    """Lazily re-export the core protocol and dynamics classes.

    The core and dynamics packages import the substrate packages; importing
    them eagerly here would create a cycle during package initialization, so
    the headline classes are resolved on first access instead.
    """
    core_exports = {
        "BiTree",
        "Schedule",
        "InitialTreeBuilder",
        "InitialTreeResult",
        "ConnectivityProtocol",
        "TreeViaCapacity",
    }
    dynamics_exports = {
        "DynamicScenario",
        "DynamicSimulator",
        "ChurnProcess",
        "RandomWalk",
        "RandomWaypoint",
        "LogNormalShadowing",
        "RayleighFading",
        "DeterministicPathLoss",
    }
    if name in core_exports:
        from . import core

        return getattr(core, name)
    if name in dynamics_exports:
        from . import dynamics

        return getattr(dynamics, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
