"""Algorithm constants.

The paper proves its high-probability bounds with very conservative constants
(for example ``lambda_1 = 80 / p**2`` slot-pairs per round and a broadcast
probability ``p <= (64 * (1 + 6 * beta * 2**alpha / (alpha - 2)))**-1``).
Those values make the constants in the O() bounds astronomically large and are
never used in practice.  The library therefore separates the *shape* of the
algorithms from the *constants* used to drive them:

* :class:`PracticalConstants` - defaults tuned so the algorithms finish on a
  laptop while preserving the asymptotic behaviour the experiments measure.
* :class:`PaperConstants` - the literal values from the proofs, available for
  anyone who wants to check that the algorithms still work (slowly) with them.

Both are immutable dataclasses; algorithms accept either via the common
:class:`AlgorithmConstants` interface (they are structurally identical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = [
    "AlgorithmConstants",
    "PracticalConstants",
    "PaperConstants",
    "paper_broadcast_probability",
    "DEFAULT_CONSTANTS",
]


def paper_broadcast_probability(alpha: float, beta: float) -> float:
    """Broadcast probability prescribed by Lemma 5 of the paper.

    The proof of Lemma 5 requires ``p <= (64 * (1 + 6 * beta * 2**alpha /
    (alpha - 2)))**-1`` so that the expected affectance on a candidate link is
    at most 1/2.
    """
    if alpha <= 2:
        raise ValueError(f"path-loss exponent alpha must exceed 2, got {alpha}")
    return 1.0 / (64.0 * (1.0 + 6.0 * beta * 2.0**alpha / (alpha - 2.0)))


@dataclass(frozen=True)
class AlgorithmConstants:
    """Tunable constants shared by the distributed algorithms.

    Attributes:
        broadcast_probability: per slot-pair probability ``p`` with which an
            active node elects to broadcast during ``Init`` (Section 6).
        ack_probability: probability with which a listener that successfully
            received a broadcast answers with an acknowledgment.  The paper
            uses ``p`` for both; exposing it separately helps experiments.
        slot_pairs_per_round_factor: ``lambda_1`` - the number of slot-pairs
            per round of ``Init`` is ``ceil(lambda_1 * log2(n))``.
        min_slot_pairs_per_round: lower bound on slot-pairs per round so tiny
            instances still mix.
        degree_cap_rho: ``rho`` - the degree threshold defining the node set
            ``M`` of Theorem 13 (nodes of degree at most ``rho``).
        capacity_tau: ``tau`` - the admission threshold of the centralized
            Kesselheim capacity condition (Eqn. 3); kept small so admitted
            sets are power-controllable outright.
        distr_cap_tau: the (looser) per-slot measurement threshold used by the
            distributed ``Distr-Cap`` selection; the selected set's
            feasibility is verified (and pruned if needed) afterwards, so a
            larger value simply trades per-iteration progress against pruning.
        duality_gamma: ``gamma_2`` - the constant relating a link's uniform
            affectance to its dual's linear affectance (Claim 8.3).
        selection_probability: transmission probability used by the sampling
            steps of Sections 8.1 and 8.2 (``Distr-Cap`` phase transmissions
            and mean-power sampling).
        scheduling_base_probability: initial transmission probability of the
            distributed contention scheduler (Section 7 substrate).
        max_rounds_safety_factor: multiplies ``ceil(log2(Delta)) + 1`` to cap
            the number of ``Init`` rounds in degenerate configurations.
    """

    broadcast_probability: float = 0.15
    ack_probability: float = 0.75
    slot_pairs_per_round_factor: float = 3.0
    min_slot_pairs_per_round: int = 8
    degree_cap_rho: int = 6
    capacity_tau: float = 0.5
    distr_cap_tau: float = 2.4
    duality_gamma: float = 1.0
    selection_probability: float = 0.45
    scheduling_base_probability: float = 0.1
    max_rounds_safety_factor: float = 2.0

    def slot_pairs_per_round(self, n: int) -> int:
        """Number of slot-pairs per ``Init`` round for an ``n``-node network."""
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        pairs = math.ceil(self.slot_pairs_per_round_factor * max(1.0, math.log2(max(n, 2))))
        return max(self.min_slot_pairs_per_round, pairs)

    def with_overrides(self, **kwargs: float) -> "AlgorithmConstants":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


class PracticalConstants(AlgorithmConstants):
    """Default constants suitable for laptop-scale simulation."""


def PaperConstants(alpha: float = 3.0, beta: float = 1.0) -> AlgorithmConstants:
    """Constants matching the paper's proofs for the given SINR parameters.

    These are enormously conservative; use only for small sanity experiments.
    """
    p = paper_broadcast_probability(alpha, beta)
    return AlgorithmConstants(
        broadcast_probability=p,
        ack_probability=p,
        slot_pairs_per_round_factor=80.0 / (p * p) / math.log2(math.e),
        min_slot_pairs_per_round=1,
        degree_cap_rho=int(math.ceil(160.0 / (p * p))),
        capacity_tau=0.5,
        distr_cap_tau=0.5,
        duality_gamma=0.5,
        selection_probability=p,
        scheduling_base_probability=p,
    )


DEFAULT_CONSTANTS = AlgorithmConstants()
