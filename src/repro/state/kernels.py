"""Shared array kernels of the network-state layer.

These are the *single* implementations of the geometry/path-loss formulas
that used to be duplicated across the caches: ``NodeArrayCache`` and
``LinkArrayCache`` each computed their own ``hypot`` distance matrices, and
the ``d**alpha`` path-loss denominator appeared independently in the node
attenuation cache, the link gain matrix and the slot decode.  Every
``NetworkState``-derived matrix and every cache now routes through the two
functions below, so the patched (incremental) and rebuilt (from-scratch)
code paths are bit-for-bit identical by construction - they literally run
the same expressions on the same floats.
"""

from __future__ import annotations

import numpy as np

from .._types import FloatArray
from ..contracts import hot_kernel

__all__ = ["pairwise_distances", "attenuation_from_distances"]


@hot_kernel(oracle="hypot", allocates=True)
def pairwise_distances(xy_a: FloatArray, xy_b: FloatArray | None = None) -> FloatArray:
    """Euclidean distance matrix ``D[i, j] = |xy_a[i] - xy_b[j]|``.

    ``xy_b=None`` means ``xy_a`` against itself.  This is the one ``hypot``
    expression behind every cached distance structure; the incremental
    row/column patches of :class:`~repro.state.NetworkState` evaluate the
    same expression on row blocks, so a patched matrix is bitwise equal to a
    rebuilt one (``hypot`` is symmetric in the sign of its arguments, which
    makes mirroring a row block into the columns exact).
    """
    if xy_b is None:
        xy_b = xy_a
    diff = xy_a[:, None, :] - xy_b[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


@hot_kernel(oracle="_seed_attenuation", allocates=True)
def attenuation_from_distances(dist: FloatArray, alpha: float) -> FloatArray:
    """Path-loss denominator ``max(d, 1e-300)**alpha`` with colocated pairs zeroed.

    Entries with ``d <= 0`` are stored as ``0.0`` so that dividing a positive
    power by the result yields ``inf`` there - exactly the
    ``np.where(dist <= 0, np.inf, ...)`` convention of the uncached SINR
    kernels.  This is the shared ``d**alpha`` kernel: the node attenuation
    cache divides powers by it and the link gain matrix takes its
    reciprocal, so both agree with the seed arithmetic bit-for-bit.
    """
    att = np.maximum(dist, 1e-300) ** alpha
    att[dist <= 0] = 0.0
    return att
