"""Shared array kernels of the network-state layer.

These are the *single* implementations of the geometry/path-loss formulas
that used to be duplicated across the caches: ``NodeArrayCache`` and
``LinkArrayCache`` each computed their own ``hypot`` distance matrices, and
the ``d**alpha`` path-loss denominator appeared independently in the node
attenuation cache, the link gain matrix and the slot decode.  Every
``NetworkState``-derived matrix and every cache now routes through the two
functions below, so the patched (incremental) and rebuilt (from-scratch)
code paths are bit-for-bit identical by construction - they literally run
the same expressions on the same floats.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from .._types import FloatArray, IntpArray
from ..contracts import hot_kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scratch imports nothing back)
    from .scratch import DecodeWorkspace

__all__ = [
    "pairwise_distances",
    "attenuation_from_distances",
    "tile_codes",
    "distance_rect_from_xy",
    "attenuation_rect_from_xy",
    "far_tile_power_sums",
]

#: Tile-coordinate packing: the signed (ix, iy) axis-index pair is packed as
#: ``ix * _TILE_SPAN + iy`` into one int64, so a tile identity is a single
#: sortable scalar (the grid build sorts/uniques these codes).
_TILE_SPAN = 2**32


@hot_kernel(oracle="hypot", allocates=True)
def pairwise_distances(xy_a: FloatArray, xy_b: FloatArray | None = None) -> FloatArray:
    """Euclidean distance matrix ``D[i, j] = |xy_a[i] - xy_b[j]|``.

    ``xy_b=None`` means ``xy_a`` against itself.  This is the one ``hypot``
    expression behind every cached distance structure; the incremental
    row/column patches of :class:`~repro.state.NetworkState` evaluate the
    same expression on row blocks, so a patched matrix is bitwise equal to a
    rebuilt one (``hypot`` is symmetric in the sign of its arguments, which
    makes mirroring a row block into the columns exact).
    """
    if xy_b is None:
        xy_b = xy_a
    diff = xy_a[:, None, :] - xy_b[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


@hot_kernel(oracle="_seed_attenuation", allocates=True)
def attenuation_from_distances(dist: FloatArray, alpha: float) -> FloatArray:
    """Path-loss denominator ``max(d, 1e-300)**alpha`` with colocated pairs zeroed.

    Entries with ``d <= 0`` are stored as ``0.0`` so that dividing a positive
    power by the result yields ``inf`` there - exactly the
    ``np.where(dist <= 0, np.inf, ...)`` convention of the uncached SINR
    kernels.  This is the shared ``d**alpha`` kernel: the node attenuation
    cache divides powers by it and the link gain matrix takes its
    reciprocal, so both agree with the seed arithmetic bit-for-bit.
    """
    att = np.maximum(dist, 1e-300) ** alpha
    att[dist <= 0] = 0.0
    return att


def _tile_codes_reference(xy: FloatArray, tile_size: float) -> IntpArray:
    """Scalar-loop oracle for :func:`tile_codes` (parity target, not a hot path)."""
    codes = np.empty(len(xy), dtype=np.int64)
    for pos, (x, y) in enumerate(np.asarray(xy, dtype=float).tolist()):
        ix = int(math.floor(x / tile_size))
        iy = int(math.floor(y / tile_size))
        codes[pos] = ix * _TILE_SPAN + iy
    return codes


@hot_kernel(oracle="_tile_codes_reference", allocates=True)
def tile_codes(xy: FloatArray, tile_size: float) -> IntpArray:
    """Packed int64 tile identity for each point of ``xy`` on a uniform grid.

    The axis index is ``floor(coord / tile_size)`` - the same binning rule as
    :class:`repro.geometry.GridIndex` - packed as ``ix * 2**32 + iy``, which
    is injective while ``|iy| < 2**31`` (the y index occupies one width-2**32
    residue window per x index), so one ``np.unique`` over the codes recovers
    the occupied tiles.  Sorting by code groups points tile-by-tile, which is
    how the tiled store builds its member lists, centroids and radii in
    O(n log n).
    """
    ij = np.floor(np.asarray(xy, dtype=float) / tile_size).astype(np.int64)
    return ij[:, 0] * _TILE_SPAN + ij[:, 1]


@hot_kernel(oracle="pairwise_distances")
def distance_rect_from_xy(
    xy_rows: FloatArray,
    xy_cols: FloatArray,
    workspace: "DecodeWorkspace | None" = None,
    key: str = "rect",
) -> FloatArray:
    """Distance rectangle straight from coordinates, no (cap, cap) matrix behind it.

    Elementwise this is exactly :func:`pairwise_distances` - ``hypot`` on the
    same coordinate differences - so a rectangle gathered from a dense
    patched matrix and one computed here from the same coordinates are
    bitwise equal.  With a workspace the subtraction and ``hypot`` run
    entirely in arena buffers (``out=``), keeping the decode loop
    allocation-free for the tiled store just like the dense gather path.
    """
    if workspace is None:
        return pairwise_distances(xy_rows, xy_cols)
    rows = xy_rows.shape[0]
    cols = xy_cols.shape[0]
    out = workspace.floats(key + ".dx", rows, cols)
    dy = workspace.floats(key + ".dy", rows, cols)
    np.subtract(xy_rows[:, 0][:, None], xy_cols[None, :, 0], out=out)
    np.subtract(xy_rows[:, 1][:, None], xy_cols[None, :, 1], out=dy)
    np.hypot(out, dy, out=out)
    return out


@hot_kernel(oracle="attenuation_from_distances")
def attenuation_rect_from_xy(
    xy_rows: FloatArray,
    xy_cols: FloatArray,
    alpha: float,
    workspace: "DecodeWorkspace | None" = None,
    key: str = "rect",
) -> FloatArray:
    """Attenuation rectangle from coordinates: ``max(d, 1e-300)**alpha``, colocated 0.

    Composition of :func:`distance_rect_from_xy` and the
    :func:`attenuation_from_distances` arithmetic, fused so the tiled store
    can serve ``attenuation_block`` rectangles without a backing matrix.
    Bitwise-equal to gathering the same rectangle out of a dense
    ``attenuation_matrix`` because every elementwise operation is identical.
    """
    if workspace is None:
        return attenuation_from_distances(pairwise_distances(xy_rows, xy_cols), alpha)
    dist = distance_rect_from_xy(xy_rows, xy_cols, workspace, key + ".dist")
    att = workspace.floats(key + ".att", dist.shape[0], dist.shape[1])
    colocated = workspace.bools(key + ".colocated", dist.shape[0], dist.shape[1])
    np.maximum(dist, 1e-300, out=att)
    np.power(att, alpha, out=att)
    np.less_equal(dist, 0.0, out=colocated)
    np.copyto(att, 0.0, where=colocated)
    return att


def _far_tile_reference(
    tx_xy: FloatArray,
    tx_power: FloatArray,
    centroids: FloatArray,
    alpha: float,
) -> FloatArray:
    """Scalar-loop oracle for :func:`far_tile_power_sums`."""
    sums = np.zeros(len(centroids), dtype=float)
    points = np.asarray(centroids, dtype=float).tolist()
    senders = np.asarray(tx_xy, dtype=float).tolist()
    powers = np.asarray(tx_power, dtype=float).tolist()
    for t, (cx, cy) in enumerate(points):
        acc = 0.0
        for (x, y), p in zip(senders, powers):
            d = math.hypot(cx - x, cy - y)
            acc += p / max(d, 1e-300) ** alpha
        sums[t] = acc
    return sums


@hot_kernel(oracle="_far_tile_reference", allocates=True)
def far_tile_power_sums(
    tx_xy: FloatArray,
    tx_power: FloatArray,
    centroids: FloatArray,
    alpha: float,
) -> FloatArray:
    """Per-tile received-power aggregate ``sum_i P_i / max(|c_t - x_i|, eps)**alpha``.

    The far-field half of the tiled affectance decomposition: every sender
    beyond the near radius contributes to a tile through its centroid
    distance instead of through per-receiver entries, collapsing an
    ``O(m)``-column row update to ``O(tiles)``.  Senders accumulate in index
    order with one vectorized sweep over tiles each, so adding members one
    at a time (the accumulator's incremental path) reproduces a batch call
    bit-for-bit - which is what makes ``remove`` an exact inverse of ``add``.
    """
    sums = np.zeros(centroids.shape[0], dtype=float)
    for i in range(tx_xy.shape[0]):
        d = np.hypot(centroids[:, 0] - tx_xy[i, 0], centroids[:, 1] - tx_xy[i, 1])
        sums += tx_power[i] / np.maximum(d, 1e-300) ** alpha
    return sums
