"""Preallocated scratch arenas for the decode hot paths.

Every slot of a simulation used to allocate the same handful of temporaries:
the gathered attenuation block, the received-power matrix, the per-listener
total/argmax/SINR vectors and the boolean decode masks.  At production slot
rates the allocator, not the arithmetic, becomes the bottleneck - the arrays
are small enough that ``malloc``/``free`` and ufunc dispatch dominate.

A :class:`DecodeWorkspace` removes that: it owns a set of named, capacity-
grown buffer pools, and the decode kernels (``repro.sinr.channel`` and the
block accessors of ``repro.sinr.arrays``) write into them via ``out=`` and
in-place ufuncs.  Results are **bit-for-bit identical** to the allocating
paths - the same elementwise operations run in the same order, only the
destination memory is reused - and the parity tests pin that.

Usage contract:

* A workspace is **not** thread-safe and is owned by one slot loop (one
  ``Simulator``, one schedule replay, one ``Distr-Cap`` run).
* Arrays returned by workspace-backed kernels are *views into the arena*:
  they are valid until the next kernel call that uses the same workspace.
  Callers that keep results across slots must copy them first (the slot
  engines consume them immediately, so the hot paths never copy).
* Buffers grow geometrically and never shrink; a workspace reused across
  slots of varying shape settles at the high-water mark and stops
  allocating entirely.
"""

from __future__ import annotations

import math

import numpy as np

from ..contracts import hot_kernel

__all__ = ["DecodeWorkspace"]


class DecodeWorkspace:
    """Arena of named, capacity-grown scratch buffers for decode kernels.

    Buffers are requested by ``(key, shape)``; the same key always returns
    memory carved from the same flat pool, reshaped to the requested shape.
    Distinct keys must be used for buffers that are live simultaneously
    (the kernels in this repo follow a fixed key schema, e.g.
    ``"decode.received"``, ``"cache.rows"``), and every returned array is
    C-contiguous - which is what lets the kernels chain ``out=`` operations
    and flat-index gathers on it.

    Requests are memoized per key: a slot loop asking for the same shapes
    every slot (the steady state) costs one dictionary hit per buffer, no
    allocation and no reshape.
    """

    __slots__ = ("_pools", "_views", "allocations")

    def __init__(self) -> None:
        self._pools: dict[str, np.ndarray] = {}
        self._views: dict[str, tuple[tuple[int, ...], str, np.ndarray]] = {}
        #: Number of pool (re)allocations performed; a workspace that has
        #: reached its high-water mark stops incrementing this.
        self.allocations = 0

    @hot_kernel(allocates=True)
    def _buffer(self, key: str, dtype: str, shape: tuple[int, ...]) -> np.ndarray:
        memo = self._views.get(key)
        if memo is not None and memo[0] == shape and memo[1] == dtype:
            return memo[2]
        size = math.prod(shape) if shape else 1
        pool = self._pools.get(key)
        if pool is None or pool.size < size or pool.dtype != dtype:
            grown = size if pool is None else max(size, 2 * pool.size)
            pool = np.empty(grown, dtype=dtype)
            self._pools[key] = pool
            self.allocations += 1
        view = pool[:size].reshape(shape)
        self._views[key] = (shape, dtype, view)
        return view

    def floats(self, key: str, *shape: int) -> np.ndarray:
        """C-contiguous float64 buffer of the given shape, carved from ``key``'s pool."""
        return self._buffer(key, "float64", shape)

    def ints(self, key: str, *shape: int) -> np.ndarray:
        """C-contiguous ``intp`` buffer (the dtype argmax and gathers need)."""
        return self._buffer(key, "intp", shape)

    def bools(self, key: str, *shape: int) -> np.ndarray:
        """C-contiguous boolean buffer of the given shape."""
        return self._buffer(key, "bool", shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena's pools."""
        return sum(pool.nbytes for pool in self._pools.values())
