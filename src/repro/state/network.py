"""The capacity-managed geometry/gain store behind every cache.

A :class:`NetworkState` owns, for one node universe, the O(n^2) derived
structures that every layer above consults: the node-to-node distance
matrix, the ``d**alpha`` attenuation matrix per path-loss exponent, and one
fade matrix per slot-invariant gain model.  The arrays are *over-allocated*:
they are sized to a capacity that may exceed the current population, node
membership is tracked by a free-list of slots, and topology changes are
incremental:

* :meth:`add_nodes` assigns free slots (growing the arrays geometrically
  when capacity is exhausted) and patches only the new rows/columns -
  O(k * capacity) per event for ``k`` additions, amortized over growth.
* :meth:`remove_nodes` releases slots in O(k); stale matrix rows are never
  read again because consumers address the store by live slot index.
* :meth:`move_nodes` rewrites the k moved rows/columns, O(k * capacity).

Every patched matrix is **bit-for-bit equal** to a from-scratch rebuild at
the current membership/positions: the patches evaluate exactly the shared
kernels of :mod:`repro.state.kernels` (and the gain models' pure
per-id-pair hashes) on row blocks, and ``hypot`` is symmetric, so mirroring
a row block into the columns is exact.  The parity tests pin this across
random add/remove/move sequences, including capacity growth.

Consumers never index the capacity-sized arrays directly; the caches of
``repro.sinr.arrays`` are thin *views* holding an array of live slots and
gathering blocks on demand, so one state instance can back a node cache, a
cached channel and any number of link caches at once.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..geometry import Node, Point
from .kernels import attenuation_from_distances, pairwise_distances

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamics/links use state)
    from ..dynamics.gain import GainModel
    from ..links import Link

__all__ = ["NetworkState"]


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class NetworkState:
    """Over-allocated position/distance/attenuation/fade store with O(damage) churn.

    Args:
        nodes: initial node universe; each occupies one slot, in order.
        capacity: number of slots to allocate up front (default: exactly
            ``len(nodes)``, so static workloads carry zero overhead; churny
            callers can pre-reserve headroom to defer the first growth).
    """

    #: Shared-memory blocks anchored by :func:`repro.state.shared.attach_state`
    #: so the adopted views outlive the exporting process's unlink.
    _shm_keepalive: list[object]

    #: Store discriminator mirrored by ``SINRParameters.store``: the dense
    #: store materializes O(capacity^2) matrices; the tiled subclass
    #: (:class:`repro.state.TiledNetworkState`) overrides both.
    store: str = "dense"
    #: Whether whole derived matrices exist to be gathered from.  Consumers
    #: such as ``NodeArrayCache`` dispatch on this instead of isinstance, so
    #: third-party stores can opt in to either protocol.
    materializes_matrices: bool = True

    def __init__(self, nodes: Iterable[Node] = (), *, capacity: int | None = None) -> None:
        node_list = list(nodes)
        n = len(node_list)
        cap = n if capacity is None else int(capacity)
        if cap < n:
            raise ValueError(f"capacity {cap} is below the initial population {n}")
        ids = [node.id for node in node_list]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate node ids in the initial universe")
        self._capacity = cap
        self._xy = np.zeros((cap, 2), dtype=float)
        self._ids = np.full(cap, -1, dtype=np.int64)
        self._nodes: list[Node | None] = [None] * cap
        if n:
            self._xy[:n] = [[node.x, node.y] for node in node_list]
            self._ids[:n] = ids
            self._nodes[:n] = node_list
        _freeze(self._xy)
        _freeze(self._ids)
        self._slot_by_id: dict[int, int] = {node.id: i for i, node in enumerate(node_list)}
        self._free: list[int] = list(range(n, cap))
        heapq.heapify(self._free)
        self._distances: np.ndarray | None = None
        self._attenuation: dict[float, np.ndarray] = {}
        self._fades: dict[object, np.ndarray | None] = {}
        self._readonly = False
        #: Bumped on every mutation; views use it to refresh gathered copies.
        self.version = 0
        #: Cumulative count of derived-matrix cells rewritten incrementally
        #: (the "patch cost"); a full rebuild would have cost capacity**2
        #: cells per materialized matrix per event.
        self.cells_patched = 0

    @classmethod
    def from_arrays(
        cls,
        xy: np.ndarray,
        ids: np.ndarray,
        *,
        distances: np.ndarray | None = None,
        attenuation: dict[float, np.ndarray] | None = None,
    ) -> "NetworkState":
        """Adopt existing arrays as a *read-only* state, without copying.

        This is how a worker process views a state another process exported
        through shared memory (:mod:`repro.state.shared`): ``xy``/``ids``
        (and any pre-materialized distance/attenuation matrices) become the
        state's backing arrays as-is, every slot is live, and all mutating
        operations raise - the memory may be mapped read-only and shared
        with other processes.

        Args:
            xy: ``(n, 2)`` coordinates; slot ``k`` is node ``k``.
            ids: ``(n,)`` node ids, all distinct and non-negative.
            distances: optional pre-materialized ``(n, n)`` distance matrix.
            attenuation: optional ``{alpha: (n, n) matrix}`` store.
        """
        state = cls.__new__(cls)
        xy = np.asarray(xy, dtype=float)
        ids = np.asarray(ids, dtype=np.int64)
        n = ids.shape[0]
        if xy.shape != (n, 2):
            raise ValueError(f"xy shape {xy.shape} does not match {n} ids")
        if np.any(ids < 0):
            raise ValueError("adopted ids must be non-negative (every slot is live)")
        state._capacity = n
        state._xy = _freeze(xy)
        state._ids = _freeze(ids)
        state._nodes = [
            Node(id=int(node_id), position=Point(float(x), float(y)))
            for node_id, (x, y) in zip(ids.tolist(), xy.tolist())
        ]
        state._slot_by_id = {int(node_id): i for i, node_id in enumerate(ids.tolist())}
        if len(state._slot_by_id) != n:
            raise ValueError("duplicate node ids among the adopted arrays")
        state._free = []
        state._distances = None if distances is None else _freeze(np.asarray(distances, dtype=float))
        state._attenuation = {
            float(alpha): _freeze(np.asarray(matrix, dtype=float))
            for alpha, matrix in (attenuation or {}).items()
        }
        state._fades = {}
        state._readonly = True
        state.version = 0
        state.cells_patched = 0
        return state

    @property
    def readonly(self) -> bool:
        """Whether this state is an immutable (e.g. shared-memory) view."""
        return self._readonly

    def _check_mutable(self) -> None:
        if self._readonly:
            raise ValueError(
                "this NetworkState is a read-only shared view; topology "
                "changes must be applied by the owning process"
            )

    @classmethod
    def from_links(cls, links: Iterable["Link"], *, capacity: int | None = None) -> "NetworkState":
        """State over the unique endpoints of a link collection.

        Endpoints are deduplicated by node id in first-appearance order
        (sender before receiver, per link).  This is the one implementation
        of the endpoint-collection idiom every link-driven consumer uses.
        """
        endpoints: dict[int, Node] = {}
        for link in links:
            endpoints.setdefault(link.sender.id, link.sender)
            endpoints.setdefault(link.receiver.id, link.receiver)
        return cls(endpoints.values(), capacity=capacity)

    # -- membership ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of allocated slots (live + free)."""
        return self._capacity

    def __len__(self) -> int:
        """Number of live nodes."""
        return len(self._slot_by_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._slot_by_id

    def __iter__(self) -> Iterator[Node]:
        """Iterate the live nodes in insertion order."""
        for slot in self._slot_by_id.values():
            node = self._nodes[slot]
            assert node is not None
            yield node

    def slot_of_id(self, node_id: int) -> int:
        """Slot of the live node with the given id (KeyError if absent)."""
        return self._slot_by_id[node_id]

    def live_slots(self) -> np.ndarray:
        """Slots of the live nodes, in insertion order."""
        return np.fromiter(self._slot_by_id.values(), dtype=np.intp, count=len(self._slot_by_id))

    def node_at(self, slot: int) -> Node:
        """The live node occupying ``slot`` (ValueError if the slot is free)."""
        node = self._nodes[slot]
        if node is None:
            raise ValueError(f"slot {slot} is free")
        return node

    @property
    def xy(self) -> np.ndarray:
        """Capacity-sized coordinate array (free slots hold stale values)."""
        return self._xy

    @property
    def ids(self) -> np.ndarray:
        """Capacity-sized id array (``-1`` marks a free slot)."""
        return self._ids

    # -- mutation ------------------------------------------------------------

    def add_nodes(self, nodes: Iterable[Node]) -> np.ndarray:
        """Insert nodes into free slots, patching derived rows incrementally.

        Grows the arrays (geometrically, so growth is amortized) when the
        free-list is exhausted.  Costs O(k * capacity) matrix work for ``k``
        insertions - the new rows and their mirrored columns - on top of the
        amortized growth copy.

        Returns:
            The slots assigned to the nodes, in argument order.
        """
        self._check_mutable()
        node_list = list(nodes)
        if not node_list:
            return np.empty(0, dtype=np.intp)
        fresh = [node.id for node in node_list]
        if len(fresh) != len(set(fresh)):
            raise ValueError("duplicate node ids among the additions")
        clashes = [node_id for node_id in fresh if node_id in self._slot_by_id]
        if clashes:
            raise ValueError(f"node ids already present: {clashes[:5]}")
        if len(self._free) < len(node_list):
            self._grow(len(self._slot_by_id) + len(node_list))
        slots = np.array(
            [heapq.heappop(self._free) for _ in node_list], dtype=np.intp
        )
        self._xy.flags.writeable = True
        self._ids.flags.writeable = True
        for slot, node in zip(slots.tolist(), node_list):
            self._xy[slot] = (node.x, node.y)
            self._ids[slot] = node.id
            self._nodes[slot] = node
            self._slot_by_id[node.id] = slot
        self._xy.flags.writeable = False
        self._ids.flags.writeable = False
        self._patch_geometry(slots)
        self._patch_fades(slots)
        self.version += 1
        return slots

    def remove_nodes(self, node_ids: Iterable[int]) -> np.ndarray:
        """Release the slots of the given node ids - O(k), no matrix work.

        The freed rows/columns keep their stale values; they are never read
        again because every consumer addresses the store by live slot.

        Returns:
            The freed slots, in argument order.
        """
        self._check_mutable()
        id_list = [int(node_id) for node_id in node_ids]
        if not id_list:
            return np.empty(0, dtype=np.intp)
        missing = [node_id for node_id in id_list if node_id not in self._slot_by_id]
        if missing:
            raise KeyError(f"node ids not present: {missing[:5]}")
        slots = np.array([self._slot_by_id[node_id] for node_id in id_list], dtype=np.intp)
        self._ids.flags.writeable = True
        for slot, node_id in zip(slots.tolist(), id_list):
            del self._slot_by_id[node_id]
            self._ids[slot] = -1
            self._nodes[slot] = None
            heapq.heappush(self._free, slot)
        self._ids.flags.writeable = False
        self.version += 1
        return slots

    def move_nodes(self, slots: np.ndarray, new_xy: np.ndarray) -> None:
        """Move live nodes to new coordinates, patching rows/columns in O(k * capacity)."""
        self._check_mutable()
        idx = np.asarray(slots, dtype=np.intp)
        if idx.size == 0:
            return
        coords = np.asarray(new_xy, dtype=float).reshape(idx.size, 2)
        # Validate before mutating anything, so a bad slot can never leave
        # the coordinates out of sync with the materialized matrices.
        free = [slot for slot in idx.tolist() if self._nodes[slot] is None]
        if free:
            raise ValueError(f"slots are free: {free[:5]}")
        self._xy.flags.writeable = True
        self._xy[idx] = coords
        self._xy.flags.writeable = False
        for slot, (x, y) in zip(idx.tolist(), coords.tolist()):
            node = self._nodes[slot]
            self._nodes[slot] = Node(id=node.id, position=Point(x, y))
        self._patch_geometry(idx)
        self.version += 1

    # -- derived stores ------------------------------------------------------

    @property
    def has_distances(self) -> bool:
        """Whether the distance matrix has been materialized."""
        return self._distances is not None

    def distance_matrix(self) -> np.ndarray:
        """Capacity-sized node-to-node distance matrix (lazy, then patched)."""
        if self._distances is None:
            self._distances = _freeze(pairwise_distances(self._xy))
        return self._distances

    def attenuation_matrix(self, alpha: float) -> np.ndarray:
        """Capacity-sized ``d**alpha`` denominator per exponent (lazy, then patched).

        Uses the shared kernel convention: colocated pairs are ``0.0`` so a
        power divided by the matrix is ``inf`` there.
        """
        att = self._attenuation.get(alpha)
        if att is None:
            att = _freeze(attenuation_from_distances(self.distance_matrix(), alpha))
            self._attenuation[alpha] = att
        return att

    def fade_matrix(self, model: "GainModel") -> np.ndarray | None:
        """Capacity-sized fade matrix of a slot-invariant gain model (lazy, patched).

        Fades are pure functions of node ids, so additions patch the new
        rows/columns with the same elementwise hash a rebuild would run;
        positions never enter, so moves leave fades untouched.  ``None``
        (unit gain everywhere) is cached as such.
        """
        if not getattr(model, "slot_invariant", False):
            raise ValueError(f"{model!r} is slot-dependent; its fades cannot be cached")
        if model not in self._fades:
            fade = model.fade(self._ids, self._ids, None)
            self._fades[model] = None if fade is None else _freeze(fade)
        return self._fades[model]

    # -- internals -----------------------------------------------------------

    def _patch_geometry(self, slots: np.ndarray) -> None:
        """Rewrite the rows/columns of ``slots`` in every materialized matrix.

        The rows evaluate the shared kernels on the current coordinates -
        exactly what a from-scratch rebuild runs - and are mirrored into the
        columns, which is exact because ``hypot`` is sign-symmetric.
        """
        if self._distances is None:
            # Nothing materialized yet: the lazy build will see the new
            # coordinates (attenuation derives from distances, so it cannot
            # be materialized without them).
            return
        rows = pairwise_distances(self._xy[slots], self._xy)
        dist = self._distances
        dist.flags.writeable = True
        dist[slots, :] = rows
        dist[:, slots] = rows.T
        dist.flags.writeable = False
        self.cells_patched += 2 * rows.size
        for alpha, att in self._attenuation.items():
            att_rows = attenuation_from_distances(rows, alpha)
            att.flags.writeable = True
            att[slots, :] = att_rows
            att[:, slots] = att_rows.T
            att.flags.writeable = False
            self.cells_patched += 2 * rows.size

    def _patch_fades(self, slots: np.ndarray) -> None:
        """Rewrite the fade rows/columns of newly assigned slots, per model.

        Fades need not be symmetric, so rows and columns are hashed
        separately (no mirroring); both directions run the model's pure
        elementwise hash, bitwise equal to a rebuild.
        """
        for model, fade in self._fades.items():
            if fade is None:
                continue
            row_fade = model.fade(self._ids[slots], self._ids, None)
            col_fade = model.fade(self._ids, self._ids[slots], None)
            fade.flags.writeable = True
            fade[slots, :] = row_fade
            fade[:, slots] = col_fade
            fade.flags.writeable = False
            self.cells_patched += row_fade.size + col_fade.size

    def _grow(self, min_capacity: int) -> None:
        """Reallocate every array to at least ``min_capacity`` slots.

        Doubling keeps the copy cost amortized O(1) per added node; copying
        preserves every materialized value bit-for-bit, and the fresh region
        is zero-filled (distance 0 / attenuation 0 / unit-less fade) until a
        node is assigned there and its rows are patched.
        """
        new_cap = max(4, 2 * self._capacity, min_capacity)
        xy = np.zeros((new_cap, 2), dtype=float)
        xy[: self._capacity] = self._xy
        ids = np.full(new_cap, -1, dtype=np.int64)
        ids[: self._capacity] = self._ids
        self._xy = _freeze(xy)
        self._ids = _freeze(ids)
        self._nodes.extend([None] * (new_cap - self._capacity))
        for slot in range(self._capacity, new_cap):
            heapq.heappush(self._free, slot)

        def enlarge(matrix: np.ndarray) -> np.ndarray:
            grown = np.zeros((new_cap, new_cap), dtype=matrix.dtype)
            grown[: self._capacity, : self._capacity] = matrix
            return _freeze(grown)

        if self._distances is not None:
            self._distances = enlarge(self._distances)
        self._attenuation = {alpha: enlarge(att) for alpha, att in self._attenuation.items()}
        self._fades = {
            model: None if fade is None else enlarge(fade)
            for model, fade in self._fades.items()
        }
        self._capacity = new_cap
