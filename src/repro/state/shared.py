"""Zero-copy :class:`~repro.state.NetworkState` sharing across processes.

The parallel trial fabric (:mod:`repro.experiments.parallel`) used to pickle
a trial's full geometry into every task - at 256 nodes that is half a
megabyte of distance matrix *per trial*, serialized, copied through a pipe
and deserialized again.  This module replaces that with POSIX shared memory:

* :func:`export_state` copies a state's coordinate/id arrays (and any
  materialized distance/attenuation matrices) into named
  ``multiprocessing.shared_memory`` blocks **once** and returns a tiny
  picklable :class:`SharedStateSpec` describing them.
* :func:`attach_state` (called in a worker) maps those blocks and wraps
  them in a *read-only* ``NetworkState`` via
  :meth:`~repro.state.NetworkState.from_arrays` - zero bytes copied, and
  every worker shares one physical copy of the matrices.

The parent owns the blocks: it keeps the returned :class:`StateExport`
alive for the duration of the sweep and calls :meth:`StateExport.close`
afterwards.  Unlinking while workers still hold attachments is safe on
POSIX - the mapping survives until the last process closes it.

Only *compact* states (live slots ``0..n-1``, the shape of every freshly
built deployment) can be exported; a churned state with holes should be
re-packed by its owner first.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import cast

import numpy as np

from .network import NetworkState
from .tiled import TiledNetworkState

__all__ = ["SharedArraySpec", "SharedStateSpec", "StateExport", "export_state", "attach_state"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Name and layout of one array living in a shared-memory block."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedStateSpec:
    """Picklable description of an exported state (sent to workers per sweep)."""

    xy: SharedArraySpec
    ids: SharedArraySpec
    distances: SharedArraySpec | None
    attenuation: tuple[tuple[float, SharedArraySpec], ...]
    #: Store discriminator; workers re-materialize the same store kind.
    #: Defaulted for backward compatibility with pre-tiled specs.
    store: str = "dense"
    #: Tiled-store configuration (tile_size, budget_bytes, near_rings); only
    #: meaningful when ``store == "tiled"``.
    tile: tuple[float, int, int] | None = None

    @property
    def block_names(self) -> tuple[str, ...]:
        """Names of every shared-memory block the spec references."""
        names = [self.xy.name, self.ids.name]
        if self.distances is not None:
            names.append(self.distances.name)
        names.extend(spec.name for _, spec in self.attenuation)
        return tuple(names)


def _export_array(array: np.ndarray, label: str) -> tuple[SharedArraySpec, shared_memory.SharedMemory]:
    """Copy one array into a fresh shared-memory block."""
    array = np.ascontiguousarray(array)
    name = f"repro_{label}_{secrets.token_hex(8)}"
    block = shared_memory.SharedMemory(name=name, create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    view[...] = array
    return SharedArraySpec(name=name, shape=tuple(array.shape), dtype=array.dtype.str), block


def _attach_array(spec: SharedArraySpec) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map one exported array; the returned block must outlive the array."""
    # The parent owns the block's lifetime: it created (and registered) the
    # segment and unlinks it after the sweep; attaching here must not add a
    # competing unlink, and on this interpreter it does not (only creation
    # registers with the resource tracker).
    block = shared_memory.SharedMemory(name=spec.name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=block.buf)
    array.flags.writeable = False
    return array, block


class StateExport:
    """Parent-side handle of an exported state; owns the shm blocks."""

    __slots__ = ("spec", "_blocks")

    def __init__(self, spec: SharedStateSpec, blocks: list[shared_memory.SharedMemory]) -> None:
        self.spec = spec
        self._blocks = blocks

    def close(self) -> None:
        """Release the blocks (close + unlink); attached workers keep their maps."""
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._blocks = []

    def __enter__(self) -> "StateExport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def export_state(
    state: NetworkState,
    *,
    include_distances: bool = True,
    alphas: tuple[float, ...] = (),
) -> StateExport:
    """Export a compact state's arrays into shared memory, copying each once.

    Args:
        state: the state to share; its live slots must be ``0..n-1``.
        include_distances: also export the node-distance matrix
            (materializing it if needed) so workers skip the O(n^2) rebuild.
        alphas: path-loss exponents whose ``d**alpha`` attenuation matrices
            are exported alongside (materializing them if needed).
    """
    n = len(state)
    if not np.array_equal(state.live_slots(), np.arange(n, dtype=np.intp)):
        raise ValueError(
            "only compact states (live slots 0..n-1) can be exported; "
            "re-pack the state before sharing it"
        )
    tiled = not state.materializes_matrices
    blocks: list[shared_memory.SharedMemory] = []
    try:
        xy_spec, block = _export_array(state.xy[:n], "xy")
        blocks.append(block)
        ids_spec, block = _export_array(state.ids[:n], "ids")
        blocks.append(block)
        dist_spec = None
        if include_distances and not tiled:
            dist_spec, block = _export_array(state.distance_matrix()[:n, :n], "dist")
            blocks.append(block)
        att_specs = []
        if not tiled:
            # A tiled state has no matrices to ship - workers rebuild their
            # own O(n) derived structures from the shared coordinates.
            for alpha in alphas:
                spec, block = _export_array(state.attenuation_matrix(alpha)[:n, :n], "att")
                blocks.append(block)
                att_specs.append((float(alpha), spec))
    except Exception:
        for block in blocks:
            block.close()
            block.unlink()
        raise
    tile_config: tuple[float, int, int] | None = None
    if tiled:
        config = cast(TiledNetworkState, state).tile_config
        tile_config = (
            float(config["tile_size"]),
            int(config["budget_bytes"]),
            int(config["near_rings"]),
        )
    return StateExport(
        SharedStateSpec(
            xy=xy_spec,
            ids=ids_spec,
            distances=dist_spec,
            attenuation=tuple(att_specs),
            store=state.store,
            tile=tile_config,
        ),
        blocks,
    )


def attach_state(spec: SharedStateSpec) -> NetworkState:
    """Map an exported state read-only, copying nothing.

    The returned state keeps references to its shared-memory blocks, so it
    (and views over it) stay valid for the state's lifetime even after the
    exporting process unlinks the blocks.
    """
    keepalive: list[shared_memory.SharedMemory] = []
    xy, block = _attach_array(spec.xy)
    keepalive.append(block)
    ids, block = _attach_array(spec.ids)
    keepalive.append(block)
    distances = None
    if spec.distances is not None:
        distances, block = _attach_array(spec.distances)
        keepalive.append(block)
    attenuation: dict[float, np.ndarray] = {}
    for alpha, array_spec in spec.attenuation:
        matrix, block = _attach_array(array_spec)
        keepalive.append(block)
        attenuation[alpha] = matrix
    state: NetworkState
    if getattr(spec, "store", "dense") == "tiled":
        tile = spec.tile
        if tile is not None:
            state = TiledNetworkState.from_arrays(
                xy, ids, tile_size=tile[0], budget_bytes=tile[1], near_rings=tile[2]
            )
        else:
            state = TiledNetworkState.from_arrays(xy, ids)
    else:
        state = NetworkState.from_arrays(xy, ids, distances=distances, attenuation=attenuation)
    # The blocks must outlive the adopted views; anchoring them on the state
    # this function itself just created is the deliberate exception.
    state._shm_keepalive = keepalive  # noqa: SLF001  # repro-lint: disable=RL004
    return state
