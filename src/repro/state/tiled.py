"""Tiled near/far geometry store: O(n) memory where the dense store is O(n^2).

:class:`TiledNetworkState` is the sparse sibling of
:class:`~repro.state.NetworkState`.  It never materializes the
``(capacity, capacity)`` distance/attenuation/fade matrices; instead it keeps

* the same capacity-managed coordinate/id arrays and free-list slots as the
  dense store (it *is* a ``NetworkState`` - membership, growth, ids, churn
  bookkeeping are all inherited), and
* a uniform **tile grid** over the live nodes - member lists, centroids and
  max-offset radii per tile, rebuilt lazily whenever ``version`` moves - and
* a budget-bounded FIFO **row cache** of attenuation rows per path-loss
  exponent, serving the whole-row gathers of the decode hot path.

Everything a decode consumes is **exact**: rectangles and cached rows are
computed from coordinates by the same kernels the dense store patches its
matrices with, so they are bitwise equal to a dense gather.  The *only*
approximation lives in the far-field affectance row totals
(:class:`repro.sinr.TiledAffectanceTotals`), which aggregate senders beyond
the near radius through tile centroids; the worst-case relative error that
aggregation actually incurred is reported back here through
:meth:`TiledNetworkState.note_far_error_bound` and read via
:meth:`TiledNetworkState.far_error_bound`.

The **approximation budget** is explicit: ``budget_bytes`` caps the derived
structures (tile grid + cached rows), and a :class:`PeakHoldEstimator` over
the near-pair load throttles the near radius (in tile rings) when the peak
load exceeds the budget.  The estimator only decays after a full window of
lower observations and the throttle re-relaxes only when the peak falls
below a quarter of the budget - a wide hysteresis gap, so the near radius
does not "bounce" (and the accuracy with it) on oscillating load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from .._types import FloatArray, IntpArray
from ..obs.runtime import OBS
from .kernels import (
    attenuation_from_distances,
    attenuation_rect_from_xy,
    distance_rect_from_xy,
    pairwise_distances,
    tile_codes,
)
from .network import NetworkState

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..dynamics.gain import GainModel
    from ..geometry import Node
    from .scratch import DecodeWorkspace

__all__ = [
    "DEFAULT_TILE_BUDGET_BYTES",
    "PeakHoldEstimator",
    "TileGrid",
    "TiledNetworkState",
    "build_tile_grid",
]

#: Default per-state byte budget for derived structures (grid + row caches).
DEFAULT_TILE_BUDGET_BYTES = 256 * 1024 * 1024

#: Target mean population per tile when the tile size is derived from the
#: live bounding box (small enough for tight far-field radii, large enough
#: that the grid stays a vanishing fraction of the node arrays).
_TARGET_NODES_PER_TILE = 8


class PeakHoldEstimator:
    """Peak-hold load estimator: rises instantly, decays only after a quiet window.

    ``observe(load)`` returns the current peak estimate.  A load above the
    held peak replaces it immediately; a lower load only counts toward a
    quiet window, and the peak decays geometrically (never below the current
    load) once a *full* window of lower observations has passed.  A throttle
    keyed on the estimate therefore reacts at once to pressure but ignores
    transient dips - the hold window is what prevents accuracy "bounce" when
    the load oscillates around the budget.
    """

    __slots__ = ("decay", "peak", "window", "_below")

    def __init__(self, *, window: int = 32, decay: float = 0.5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.window = int(window)
        self.decay = float(decay)
        self.peak = 0.0
        self._below = 0

    def observe(self, load: float) -> float:
        """Fold one load sample into the estimate and return the held peak."""
        if load >= self.peak:
            self.peak = float(load)
            self._below = 0
        else:
            self._below += 1
            if self._below >= self.window:
                self.peak = max(float(load), self.peak * self.decay)
                self._below = 0
        return self.peak


class TileGrid:
    """One immutable tile-decomposition snapshot of a state's live nodes.

    Tiles are the occupied cells of a uniform ``tile_size`` grid (same
    binning rule as ``geometry.GridIndex``).  Members are grouped by sorted
    tile code, so each tile is a contiguous range of :attr:`slots`:
    ``slots[starts[t]:starts[t+1]]``.  ``centroids[t]`` is the member mean
    and ``radii[t]`` the max member offset from it - the two quantities the
    far-field error bound ``(1 + r/d)**alpha - 1`` is built from.
    """

    __slots__ = ("centroids", "codes", "radii", "slots", "starts", "tile_index_by_slot", "tile_size")

    def __init__(
        self,
        tile_size: float,
        slots: IntpArray,
        starts: IntpArray,
        codes: IntpArray,
        centroids: FloatArray,
        radii: FloatArray,
        tile_index_by_slot: IntpArray,
    ) -> None:
        self.tile_size = tile_size
        self.slots = slots
        self.starts = starts
        self.codes = codes
        self.centroids = centroids
        self.radii = radii
        self.tile_index_by_slot = tile_index_by_slot

    @property
    def tile_count(self) -> int:
        return int(self.centroids.shape[0])

    def members(self, tile: int) -> IntpArray:
        """Live slots of one tile (a view into the grouped slot array)."""
        return self.slots[self.starts[tile] : self.starts[tile + 1]]

    @property
    def nbytes(self) -> int:
        return int(
            self.slots.nbytes
            + self.starts.nbytes
            + self.codes.nbytes
            + self.centroids.nbytes
            + self.radii.nbytes
            + self.tile_index_by_slot.nbytes
        )


def build_tile_grid(xy: FloatArray, live: IntpArray, tile_size: float, capacity: int) -> TileGrid:
    """Group the live nodes tile-by-tile: sort packed codes, reduce per range."""
    n = int(live.shape[0])
    tile_index_by_slot = np.full(capacity, -1, dtype=np.intp)
    if n == 0:
        empty_intp = np.empty(0, dtype=np.intp)
        return TileGrid(
            tile_size,
            empty_intp,
            np.zeros(1, dtype=np.intp),
            np.empty(0, dtype=np.int64),
            np.empty((0, 2), dtype=float),
            np.empty(0, dtype=float),
            tile_index_by_slot,
        )
    points = xy[live]
    codes = tile_codes(points, tile_size)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    slots = live[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    starts = np.concatenate(
        [np.zeros(1, dtype=np.intp), boundaries.astype(np.intp), np.array([n], dtype=np.intp)]
    )
    counts = np.diff(starts)
    tile_count = int(counts.shape[0])
    sorted_points = points[order]
    centroids = np.add.reduceat(sorted_points, starts[:-1], axis=0) / counts[:, None]
    member_tile = np.repeat(np.arange(tile_count, dtype=np.intp), counts)
    offsets = sorted_points - centroids[member_tile]
    radii = np.maximum.reduceat(np.hypot(offsets[:, 0], offsets[:, 1]), starts[:-1])
    tile_index_by_slot[slots] = member_tile
    return TileGrid(
        tile_size,
        slots,
        starts,
        sorted_codes[starts[:-1]],
        centroids,
        radii,
        tile_index_by_slot,
    )


class _RowCache:
    """FIFO cache of attenuation rows for one exponent (bounded row count)."""

    __slots__ = ("cursor", "pos_of", "rows", "slot_at", "used", "version")

    def __init__(self, max_rows: int, capacity: int) -> None:
        self.rows = np.empty((max_rows, capacity), dtype=float)
        self.slot_at = np.full(max_rows, -1, dtype=np.intp)
        self.pos_of: dict[int, int] = {}
        self.cursor = 0
        self.used = 0
        self.version = -1

    def reset(self, version: int) -> None:
        self.pos_of.clear()
        self.slot_at.fill(-1)
        self.cursor = 0
        self.used = 0
        self.version = version

    @property
    def resident_bytes(self) -> int:
        row_bytes = int(self.rows.shape[1]) * 8
        return self.used * row_bytes + int(self.slot_at.nbytes)


class TiledNetworkState(NetworkState):
    """Sparse near/far geometry store: exact rectangles, no O(n^2) matrices.

    Drop-in for :class:`NetworkState` behind every consumer that dispatches
    on :attr:`materializes_matrices` (the caches, the channel, the fabric);
    the whole-matrix accessors raise instead of allocating quadratically.

    Args:
        nodes: initial node universe (same as the dense store).
        capacity: pre-reserved slots (same as the dense store).
        tile_size: uniform tile edge length; default derives one from the
            live bounding box targeting ~8 nodes per tile.
        budget_bytes: byte budget for derived structures (tile grid + cached
            attenuation rows); also the reference point of the near-load
            throttle.
        near_rings: near radius in tile rings - pairs within
            ``near_rings * tile_size`` are the "exact" neighborhood the
            affectance totals never approximate.  The peak-hold throttle may
            shrink the *effective* ring count down to 1 under load; it
            relaxes back only when the held peak falls below a quarter of
            the budget.
    """

    store: str = "tiled"
    materializes_matrices: bool = False

    def __init__(
        self,
        nodes: "Iterable[Node]" = (),
        *,
        capacity: int | None = None,
        tile_size: float | None = None,
        budget_bytes: int = DEFAULT_TILE_BUDGET_BYTES,
        near_rings: int = 2,
    ) -> None:
        super().__init__(nodes, capacity=capacity)
        self._init_tiled(tile_size, budget_bytes, near_rings)

    def _init_tiled(
        self, tile_size: float | None, budget_bytes: int, near_rings: int
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        if near_rings < 1:
            raise ValueError(f"near_rings must be >= 1, got {near_rings}")
        self._tile_size = float(tile_size) if tile_size is not None else self._derive_tile_size()
        if self._tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {self._tile_size}")
        self._budget_bytes = int(budget_bytes)
        self._max_near_rings = int(near_rings)
        self._near_rings = int(near_rings)
        self._grid_cache: TileGrid | None = None
        self._grid_version = -1
        self._row_caches: dict[float, _RowCache] = {}
        self._estimator = PeakHoldEstimator()
        self._throttle_events = 0
        self._far_bound = 0.0

    def _derive_tile_size(self) -> float:
        live = self.live_slots()
        if live.shape[0] == 0:
            return 1.0
        points = self._xy[live]
        span = float(max(np.ptp(points[:, 0]), np.ptp(points[:, 1])))
        if span <= 0.0:
            return 1.0
        tiles_per_axis = max(1.0, np.ceil(np.sqrt(live.shape[0] / _TARGET_NODES_PER_TILE)))
        return span / tiles_per_axis

    # -- construction --------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        xy: np.ndarray,
        ids: np.ndarray,
        *,
        distances: np.ndarray | None = None,
        attenuation: dict[float, np.ndarray] | None = None,
        tile_size: float | None = None,
        budget_bytes: int = DEFAULT_TILE_BUDGET_BYTES,
        near_rings: int = 2,
    ) -> "TiledNetworkState":
        """Adopt coordinate/id arrays as a read-only tiled view (fabric attach).

        The tiled store never holds dense matrices, so pre-materialized
        ``distances``/``attenuation`` blocks are rejected rather than
        silently adopted - the exporter should not have produced them for a
        tiled state.
        """
        if distances is not None or attenuation:
            raise ValueError(
                "TiledNetworkState adopts coordinates only; dense matrix "
                "blocks have no tiled counterpart"
            )
        state = super().from_arrays(xy, ids)
        assert isinstance(state, TiledNetworkState)
        state._init_tiled(tile_size, budget_bytes, near_rings)
        return state

    # -- configuration / reporting -------------------------------------------

    @property
    def tile_size(self) -> float:
        """Edge length of the uniform tiles."""
        return self._tile_size

    @property
    def budget_bytes(self) -> int:
        """Byte budget for derived structures (grid + row caches)."""
        return self._budget_bytes

    @property
    def near_rings(self) -> int:
        """Current (possibly throttled) near radius in tile rings."""
        return self._near_rings

    @property
    def near_cutoff(self) -> float:
        """Current near radius in coordinate units (``near_rings * tile_size``)."""
        return self._near_rings * self._tile_size

    @property
    def throttle_events(self) -> int:
        """How many times the peak-hold throttle shrank the near radius."""
        return self._throttle_events

    @property
    def tile_config(self) -> dict[str, float | int]:
        """The constructor-visible tile configuration (for fabric export)."""
        return {
            "tile_size": self._tile_size,
            "budget_bytes": self._budget_bytes,
            "near_rings": self._max_near_rings,
        }

    def far_error_bound(self) -> float:
        """Worst-case relative far-field row-sum error actually incurred.

        The maximum over all far tile aggregations performed so far of
        ``(1 + r/d)**alpha - 1`` (tile radius ``r``, centroid distance
        ``d``) - a sound per-row bound on
        ``|tiled_total - dense_total| / dense_total`` provided no far pair's
        raw affectance reaches the ``1 + epsilon`` cap (which the default
        near cutoff of :class:`repro.sinr.TiledAffectanceTotals` guarantees
        by construction).  ``0.0`` until a far aggregation happens - an
        all-near run is exact.
        """
        return self._far_bound

    def note_far_error_bound(self, bound: float) -> None:
        """Fold one aggregation's incurred bound into the running maximum."""
        if bound > self._far_bound:
            self._far_bound = float(bound)

    def resident_bytes(self) -> int:
        """Bytes currently held by derived tiled structures (grid + rows).

        This is what the ``budget_bytes`` contract is checked against; the
        inherited O(n) coordinate/id arrays are excluded (they exist in any
        store).
        """
        total = 0
        if self._grid_cache is not None:
            total += self._grid_cache.nbytes
        for cache in self._row_caches.values():
            total += cache.resident_bytes
        return total

    def note_near_load(self, near_pairs: int) -> None:
        """Feed the near-pair load into the peak-hold throttle.

        The load is measured in held near pairs (~16 bytes each: an index
        plus an accumulated float).  When the held peak exceeds what half
        the byte budget can hold, the near radius shrinks one ring (never
        below 1); it relaxes back one ring only when the peak falls below a
        quarter of that budget - the hysteresis gap that prevents accuracy
        bounce.
        """
        peak = self._estimator.observe(float(near_pairs))
        budget_pairs = (self._budget_bytes // 2) // 16
        if peak > budget_pairs and self._near_rings > 1:
            self._near_rings -= 1
            self._throttle_events += 1
            if OBS.enabled:
                OBS.registry.inc("tiled.budget_throttle")
        elif peak < 0.25 * budget_pairs and self._near_rings < self._max_near_rings:
            self._near_rings += 1
        if OBS.enabled:
            OBS.registry.gauge("tiled.near_pairs").set(float(near_pairs))

    # -- tile grid ------------------------------------------------------------

    def grid(self) -> TileGrid:
        """The tile decomposition at the current version (lazily rebuilt).

        Any mutation (add/remove/move) invalidates the snapshot; the next
        call rebuilds it in O(n log n) and counts one far-tile refresh.
        """
        if self._grid_cache is None or self._grid_version != self.version:
            self._grid_cache = build_tile_grid(
                self._xy, self.live_slots(), self._tile_size, self._capacity
            )
            self._grid_version = self.version
            if OBS.enabled:
                OBS.registry.inc("tiled.far_tile_refresh")
                OBS.registry.gauge("tiled.resident_bytes").set(float(self.resident_bytes()))
        return self._grid_cache

    # -- exact rectangles (the dense-gather replacements) ----------------------

    def distance_rect(
        self,
        row_slots: IntpArray,
        col_slots: IntpArray,
        *,
        workspace: "DecodeWorkspace | None" = None,
        key: str = "tiled.dist",
    ) -> FloatArray:
        """Exact distance rectangle - bitwise equal to a dense matrix gather."""
        return distance_rect_from_xy(self._xy[row_slots], self._xy[col_slots], workspace, key)

    def attenuation_rect(
        self,
        alpha: float,
        row_slots: IntpArray,
        col_slots: IntpArray,
        *,
        workspace: "DecodeWorkspace | None" = None,
        key: str = "tiled.att",
    ) -> FloatArray:
        """Exact attenuation rectangle - bitwise equal to a dense matrix gather."""
        return attenuation_rect_from_xy(
            self._xy[row_slots], self._xy[col_slots], alpha, workspace, key
        )

    def fade_rect(
        self,
        model: "GainModel",
        row_slots: IntpArray,
        col_slots: IntpArray | None,
    ) -> FloatArray | None:
        """Fade rectangle of a slot-invariant gain model (pure id-pair hash).

        ``col_slots=None`` means all capacity columns, mirroring the dense
        fade-matrix row layout.  Exact by construction: the model's fade is
        an elementwise function of the id pair, so computing the subset
        equals gathering it.
        """
        if not getattr(model, "slot_invariant", False):
            raise ValueError(f"{model!r} is slot-dependent; its fades cannot be cached")
        cols = self._ids if col_slots is None else self._ids[col_slots]
        return model.fade(self._ids[row_slots], cols, None)

    def attenuation_rows(
        self,
        alpha: float,
        row_slots: IntpArray,
        *,
        workspace: "DecodeWorkspace | None" = None,
        key: str = "tiled.rows",
    ) -> FloatArray:
        """Whole attenuation rows (capacity columns) through the FIFO row cache.

        This is the decode hot path's ``cols=None`` gather.  Cached rows are
        computed by exactly the kernels the dense store patches with
        (``attenuation_from_distances(pairwise_distances(...))``), so the
        result is bitwise equal to ``np.take`` on a dense attenuation
        matrix.  The cache holds at most ``(budget_bytes / 2) / (capacity *
        8)`` rows per exponent; requests larger than that are computed
        fresh (still exact, just uncached).  Any state mutation invalidates
        the cache wholesale - rows are cheap to recompute and a stale row
        can never be served.
        """
        alpha = float(alpha)
        row_slots = np.asarray(row_slots, dtype=np.intp)
        k = int(row_slots.shape[0])
        max_rows = max(1, (self._budget_bytes // 2) // max(1, self._capacity * 8))
        cache = self._row_caches.get(alpha)
        if cache is None or cache.rows.shape != (max_rows, self._capacity):
            cache = _RowCache(max_rows, self._capacity)
            self._row_caches[alpha] = cache
        if cache.version != self.version:
            cache.reset(self.version)
        if k > max_rows:
            # The request alone exceeds the row budget: serve it uncached.
            return attenuation_rect_from_xy(self._xy[row_slots], self._xy, alpha, workspace, key)
        requested = [int(slot) for slot in row_slots.tolist()]
        needed = set(requested)
        missing = [slot for slot in dict.fromkeys(requested) if slot not in cache.pos_of]
        if missing:
            miss = np.asarray(missing, dtype=np.intp)
            fresh = attenuation_from_distances(pairwise_distances(self._xy[miss], self._xy), alpha)
            for offset, slot in enumerate(missing):
                pos = cache.cursor
                # FIFO eviction, skipping rows the current request also needs.
                while True:
                    holder = int(cache.slot_at[pos])
                    if holder < 0 or holder not in needed:
                        break
                    pos = (pos + 1) % max_rows
                evicted = int(cache.slot_at[pos])
                if evicted >= 0:
                    del cache.pos_of[evicted]
                else:
                    cache.used += 1
                cache.rows[pos] = fresh[offset]
                cache.slot_at[pos] = slot
                cache.pos_of[slot] = pos
                cache.cursor = (pos + 1) % max_rows
            if OBS.enabled:
                OBS.registry.inc("tiled.row_cache_miss", len(missing))
                OBS.registry.gauge("tiled.resident_bytes").set(float(self.resident_bytes()))
        positions = np.fromiter(
            (cache.pos_of[slot] for slot in requested), dtype=np.intp, count=k
        )
        if workspace is None:
            return cache.rows[positions]
        stage = workspace.floats(key, k, self._capacity)
        np.take(cache.rows, positions, axis=0, out=stage)
        return stage

    # -- dense accessors (refused) ---------------------------------------------

    def distance_matrix(self) -> np.ndarray:
        raise RuntimeError(
            "TiledNetworkState does not materialize the O(n^2) distance "
            "matrix; use distance_rect()/attenuation_rows() or a dense "
            "NetworkState (store='dense') at small n"
        )

    def attenuation_matrix(self, alpha: float) -> np.ndarray:
        raise RuntimeError(
            "TiledNetworkState does not materialize the O(n^2) attenuation "
            "matrix; use attenuation_rect()/attenuation_rows() or a dense "
            "NetworkState (store='dense') at small n"
        )

    def fade_matrix(self, model: "GainModel") -> np.ndarray | None:
        raise RuntimeError(
            "TiledNetworkState does not materialize the O(n^2) fade matrix; "
            "use fade_rect() or a dense NetworkState (store='dense') at small n"
        )

    # -- churn ----------------------------------------------------------------

    def _patch_geometry(self, slots: np.ndarray) -> None:
        # Nothing quadratic to patch: derived structures (tile grid, row
        # caches) are versioned snapshots that rebuild lazily against the
        # new coordinates.  cells_patched stays honest at zero matrix cells.
        return

    def _patch_fades(self, slots: np.ndarray) -> None:
        # No fade matrices exist (fade_matrix raises); fade_rect hashes
        # id pairs on demand.
        return
