"""Network-state layer: one capacity-managed geometry/gain store.

This package sits between the geometry primitives and the SINR caches in
the layer stack (see ``ARCHITECTURE.md``): a :class:`NetworkState` owns the
over-allocated position/distance/attenuation/fade matrices for one node
universe and supports O(damage) incremental add/remove/move; the caches of
``repro.sinr.arrays`` are views over it, and the dynamics drivers patch it
instead of rebuilding per event.  :class:`DecodeWorkspace` provides the
scratch arenas the decode kernels reuse instead of allocating per slot, and
:mod:`repro.state.shared` exports a state's matrices through POSIX shared
memory so worker processes read them zero-copy.
"""

from .kernels import attenuation_from_distances, pairwise_distances
from .network import NetworkState
from .scratch import DecodeWorkspace
from .shared import SharedStateSpec, StateExport, attach_state, export_state

__all__ = [
    "NetworkState",
    "DecodeWorkspace",
    "SharedStateSpec",
    "StateExport",
    "attach_state",
    "export_state",
    "attenuation_from_distances",
    "pairwise_distances",
]
