"""Network-state layer: one capacity-managed geometry/gain store.

This package sits between the geometry primitives and the SINR caches in
the layer stack (see ``ARCHITECTURE.md``): a :class:`NetworkState` owns the
over-allocated position/distance/attenuation/fade matrices for one node
universe and supports O(damage) incremental add/remove/move; the caches of
``repro.sinr.arrays`` are views over it, and the dynamics drivers patch it
instead of rebuilding per event.
"""

from .kernels import attenuation_from_distances, pairwise_distances
from .network import NetworkState

__all__ = ["NetworkState", "attenuation_from_distances", "pairwise_distances"]
