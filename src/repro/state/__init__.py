"""Network-state layer: one capacity-managed geometry/gain store.

This package sits between the geometry primitives and the SINR caches in
the layer stack (see ``ARCHITECTURE.md``): a :class:`NetworkState` owns the
over-allocated position/distance/attenuation/fade matrices for one node
universe and supports O(damage) incremental add/remove/move; the caches of
``repro.sinr.arrays`` are views over it, and the dynamics drivers patch it
instead of rebuilding per event.  :class:`TiledNetworkState` is the sparse
sibling selected by ``store="tiled"``: O(n) memory, exact near-field
rectangles and tile-aggregated far fields, for populations the dense
matrices cannot hold.  :class:`DecodeWorkspace` provides the scratch arenas
the decode kernels reuse instead of allocating per slot, and
:mod:`repro.state.shared` exports a state's arrays through POSIX shared
memory so worker processes read them zero-copy.
"""

from .kernels import (
    attenuation_from_distances,
    attenuation_rect_from_xy,
    distance_rect_from_xy,
    far_tile_power_sums,
    pairwise_distances,
    tile_codes,
)
from .network import NetworkState
from .scratch import DecodeWorkspace
from .shared import SharedStateSpec, StateExport, attach_state, export_state
from .tiled import (
    DEFAULT_TILE_BUDGET_BYTES,
    PeakHoldEstimator,
    TileGrid,
    TiledNetworkState,
    build_tile_grid,
)

__all__ = [
    "NetworkState",
    "TiledNetworkState",
    "TileGrid",
    "PeakHoldEstimator",
    "DEFAULT_TILE_BUDGET_BYTES",
    "DecodeWorkspace",
    "SharedStateSpec",
    "StateExport",
    "attach_state",
    "export_state",
    "attenuation_from_distances",
    "attenuation_rect_from_xy",
    "distance_rect_from_xy",
    "far_tile_power_sums",
    "pairwise_distances",
    "tile_codes",
    "build_tile_grid",
]
