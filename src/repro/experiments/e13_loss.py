"""E13 - Loss resilience: ``Init`` over a faulty transport, and its price.

The paper's protocols assume a perfect stack below the SINR channel.  This
experiment runs the same ``Init`` agents over the netsim message runtime at
increasing message-loss rates and measures the overhead against the lockstep
oracle: extra slots (the protocol's redundancy re-absorbs every dropped
acknowledgment), extra transmissions (the send budget), and - in the crash
cell - the slots the completion patch spends re-attaching subtrees orphaned
by nodes dying mid-protocol.  The zero-loss cell doubles as an in-sweep
parity assertion: it must cost *exactly* the oracle's slots.

The resilience floor pinned by CI's chaos job lives here too: at 10% loss
with two mid-run crashes, reliable delivery must still converge to a
spanning tree of the survivors on every seed.
"""

from __future__ import annotations

import numpy as np

from ..core import InitialTreeBuilder
from ..netsim import CrashSchedule, FaultPlan, NetInitBuilder
from .config import ExperimentConfig
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

__all__ = ["run", "LOSS_RATES", "CRASH_CELL"]

#: Per-message drop probabilities swept.
LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
#: The chaos cell: (drop probability, number of mid-run crashes).
CRASH_CELL = (0.10, 2)


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[list[dict], dict]:
    """One (n, seed) trial: a loss sweep plus the loss-and-crashes cell."""
    config, n, seed = args
    params = config.params
    nodes = make_deployment(config, n, seed)
    ids = [node.id for node in nodes]

    oracle = InitialTreeBuilder(params, config.constants).build(
        nodes, np.random.default_rng(13_000 + seed)
    )

    rows: list[dict] = []
    for loss in LOSS_RATES:
        plan = FaultPlan(seed=13_100 + seed, drop_prob=loss)
        outcome = NetInitBuilder(
            params, config.constants, plan=plan, delivery="reliable"
        ).build(nodes, np.random.default_rng(13_000 + seed))
        outcome.tree.validate()
        assert set(outcome.tree.nodes) == set(ids)
        if loss == 0.0:
            # In-sweep parity pin: a faultless netsim run costs exactly the
            # lockstep oracle and reconstructs the identical tree.
            assert outcome.slots_used == oracle.slots_used
            assert outcome.tree.parent == oracle.tree.parent
        rows.append(
            {
                "n": n,
                "seed": seed,
                "loss": loss,
                "slots": outcome.slots_used,
                "oracle_slots": oracle.slots_used,
                "round_overhead": round(
                    outcome.slots_used / max(oracle.slots_used, 1), 3
                ),
                "transmissions": sum(outcome.send_budget.values()),
                "dropped": outcome.fault_summary.get("dropped", 0),
                "repaired": outcome.completed_by_repair,
            }
        )

    # The chaos cell: double-digit loss plus nodes dying mid-protocol.
    crash_loss, crash_count = CRASH_CELL
    crashes = CrashSchedule.sample(
        ids,
        crash_count,
        horizon=max(oracle.slots_used, 24),
        seed=13_200 + seed,
        min_slot=4,
    )
    plan = FaultPlan(seed=13_100 + seed, drop_prob=crash_loss, crashes=crashes)
    survived = NetInitBuilder(
        params, config.constants, plan=plan, delivery="reliable"
    ).build(nodes, np.random.default_rng(13_000 + seed))
    survived.tree.validate()
    alive = set(ids) - set(survived.crashed)
    crash_row = {
        "n": n,
        "seed": seed,
        "loss": crash_loss,
        "crashes": len(survived.crashed),
        "spans_survivors": set(survived.tree.nodes) == alive,
        "slots": survived.slots_used,
        "completion_slots": survived.completion_slots,
        "reattached": len(survived.reattached),
        "round_overhead": round(survived.slots_used / max(oracle.slots_used, 1), 3),
    }
    return rows, crash_row


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure Init's round/send overhead under message loss and crashes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E13",
        title="Loss resilience: Init over a faulty transport converges, overhead tracks the loss rate",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for rows, _ in outcomes for row in rows]
    crash_rows = [crash for _, crash in outcomes]

    by_loss = average_rows(result.rows, "loss", ["round_overhead", "transmissions"])
    result.summary = {
        "mean_round_overhead_by_loss": {
            entry["loss"]: round(entry["round_overhead"], 3) for entry in by_loss
        },
        "zero_loss_is_oracle_exact": all(
            row["round_overhead"] == 1.0 for row in result.rows if row["loss"] == 0.0
        ),
        "resilience_floor_converged": all(row["spans_survivors"] for row in crash_rows),
        "mean_crash_cell_overhead": round(
            float(np.mean([row["round_overhead"] for row in crash_rows])), 3
        ),
        "mean_completion_slots": round(
            float(np.mean([row["completion_slots"] for row in crash_rows])), 1
        ),
    }
    result.rows.extend(crash_rows)
    return result
