"""E10 - Fading sensitivity: schedule delivery rate under stochastic gains.

The paper's guarantees assume deterministic ``P / d**alpha`` path loss.  This
experiment measures how a physically feasible schedule degrades when the
channel fades: an ``Init`` tree's links are first-fit scheduled (every slot
group SINR-feasible under the recorded powers, so the deterministic delivery
rate is 1.0 by construction), then the schedule is replayed through the
slotted channel under log-normal shadowing of increasing ``sigma_db`` and
under per-slot Rayleigh fast fading.  Delivery should be perfect at
``sigma = 0`` and decline monotonically as the fade variance grows.
"""

from __future__ import annotations

import numpy as np

from ..core import InitialTreeBuilder, first_fit_schedule
from ..dynamics import LogNormalShadowing, RayleighFading, replay_schedule
from ..sinr import CachedChannel, NodeArrayCache
from .config import ExperimentConfig
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

__all__ = ["run", "SHADOWING_SIGMAS_DB", "REPLAY_REPEATS"]

#: Shadowing standard deviations swept, in dB (0 = stochastic code path with
#: unit fades - a built-in parity probe for the deterministic baseline).
SHADOWING_SIGMAS_DB = (0.0, 2.0, 4.0, 8.0)
#: Schedule replays for the Rayleigh row only: Rayleigh redraws fades every
#: slot, so repeats tighten the estimate.  Shadowing is static per pair -
#: every replay would be bit-identical - so it replays once.
REPLAY_REPEATS = 4


def _delivery_rate(schedule, power, channel, repeats: int) -> float:
    """Fraction of links delivered over repeated slotted replays."""
    successes = 0
    total = 0
    start_slot = 0
    for _ in range(repeats):
        got, links, slots = replay_schedule(
            schedule, power, channel, start_slot=start_slot
        )
        successes += got
        total += links
        start_slot += slots
    return successes / total if total else 1.0


def _trial(args: tuple[ExperimentConfig, int, int]) -> list[dict]:
    """One (n, seed) trial: one row per gain model."""
    config, n, seed = args
    params = config.params
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(10_000 + seed)
    outcome = InitialTreeBuilder(params, config.constants).build(nodes, rng)
    schedule = first_fit_schedule(outcome.tree.aggregation_links(), outcome.power, params)
    node_list = list(outcome.tree.nodes.values())

    rows: list[dict] = []
    # One node cache shared by every gain-model channel: the O(n^2) distance
    # and attenuation matrices depend only on the geometry, not the model.
    shared_cache = NodeArrayCache(node_list)
    deterministic_channel = CachedChannel(params, cache=shared_cache)
    deterministic_rate = _delivery_rate(
        schedule, outcome.power, deterministic_channel, repeats=1
    )
    rows.append(
        {
            "n": n,
            "seed": seed,
            "model": "deterministic",
            "sigma_db": 0.0,
            "delivery_rate": round(deterministic_rate, 4),
        }
    )
    for sigma_db in SHADOWING_SIGMAS_DB:
        model = LogNormalShadowing(sigma_db=sigma_db, seed=100 + seed)
        channel = CachedChannel(params.with_overrides(gain_model=model), cache=shared_cache)
        rate = _delivery_rate(schedule, outcome.power, channel, repeats=1)
        rows.append(
            {
                "n": n,
                "seed": seed,
                "model": "shadowing",
                "sigma_db": sigma_db,
                "delivery_rate": round(rate, 4),
            }
        )
    rayleigh = RayleighFading(seed=200 + seed)
    channel = CachedChannel(params.with_overrides(gain_model=rayleigh), cache=shared_cache)
    rate = _delivery_rate(schedule, outcome.power, channel, REPLAY_REPEATS)
    rows.append(
        {
            "n": n,
            "seed": seed,
            "model": "rayleigh",
            "sigma_db": None,
            "delivery_rate": round(rate, 4),
        }
    )
    return rows


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure schedule delivery under shadowing/fading of growing variance."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E10",
        title="Fading sensitivity: feasible schedules degrade gracefully with fade variance",
    )
    result.rows = [row for rows in run_sweep(_trial, config) for row in rows]

    deterministic = [r["delivery_rate"] for r in result.rows if r["model"] == "deterministic"]
    zero_sigma = [
        r["delivery_rate"]
        for r in result.rows
        if r["model"] == "shadowing" and r["sigma_db"] == 0.0
    ]
    by_sigma = average_rows(
        [r for r in result.rows if r["model"] == "shadowing"],
        "sigma_db",
        ["delivery_rate"],
    )
    sigma_rates = [entry["delivery_rate"] for entry in by_sigma]
    rayleigh = [r["delivery_rate"] for r in result.rows if r["model"] == "rayleigh"]
    result.summary = {
        "deterministic_rate": round(float(np.mean(deterministic)), 4) if deterministic else 1.0,
        "zero_sigma_matches_deterministic": zero_sigma == deterministic,
        "monotone_decline_with_sigma": all(
            later <= earlier + 1e-12 for earlier, later in zip(sigma_rates, sigma_rates[1:])
        ),
        "mean_rayleigh_rate": round(float(np.mean(rayleigh)), 4) if rayleigh else 1.0,
    }
    return result
