"""E4 - Theorem 3: mean-power rescheduling of the initial tree.

Compares four schedules of the *same* link set (the Init tree):

* the construction time stamps (one slot per slot-pair in which a link formed,
  growing with ``log Delta * log n``);
* a centralized uniform-power first-fit schedule (the best one can do without
  changing powers);
* a centralized mean-power first-fit schedule (isolating the effect of the
  power scheme from the effect of distributed contention);
* the distributed mean-power reschedule of Theorem 3 (bounded by
  ``O(Upsilon * log^3 n)``, independent of ``log Delta``).
"""

from __future__ import annotations

import math

import numpy as np

from ..baselines import UniformScheduler
from ..core import InitialTreeBuilder, MeanPowerRescheduler, first_fit_schedule, upsilon
from ..sinr import MeanPower
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> dict:
    """One (n, seed) trial: schedule the same Init tree under every regime."""
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    rescheduler = MeanPowerRescheduler(config.params, config.constants)
    uniform = UniformScheduler(config.params)
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(4000 + seed)
    outcome = builder.build(nodes, rng)
    links = outcome.tree.aggregation_links()
    initial_length = outcome.tree.aggregation_schedule.length
    uniform_length = uniform.schedule(links).schedule_length
    mean_ff_power = MeanPower.for_max_length(config.params, max(outcome.delta, 1.0))
    mean_ff_length = first_fit_schedule(links, mean_ff_power, config.params).length
    rescheduled = rescheduler.reschedule(links, rng)
    mean_length = rescheduled.schedule_length
    feasible = rescheduled.schedule.is_feasible(rescheduled.power, config.params)
    ups = upsilon(n, max(outcome.delta, 1.0))
    return {
        "n": n,
        "seed": seed,
        "delta": round(outcome.delta, 1),
        "initial_len": initial_length,
        "uniform_ff_len": uniform_length,
        "mean_ff_len": mean_ff_length,
        "mean_resched_len": mean_length,
        "resched_frames": rescheduled.frames_elapsed,
        "upsilon": round(ups, 1),
        "mean_len_per_upsilon_logn": round(
            mean_length / (ups * math.log2(max(n, 2))), 3
        ),
        "feasible": feasible,
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure schedule lengths of the initial tree under the three regimes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E4",
        title="Mean-power rescheduling of the Init tree (Thm 3)",
    )
    result.rows = run_sweep(_trial, config)
    wins = sum(1 for row in result.rows if row["mean_resched_len"] <= row["initial_len"])
    result.summary = {
        "reschedule_no_worse_than_initial": f"{wins}/{len(result.rows)}",
        "all_feasible": all(row["feasible"] for row in result.rows),
    }
    return result
