"""E2 - Theorem 7: the tree built by ``Init`` has maximum degree O(log n)."""

from __future__ import annotations

import math

import numpy as np

from ..analysis import degree_statistics
from ..core import InitialTreeBuilder
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[dict, float]:
    """One (n, seed) trial; returns the row plus the unrounded degree ratio."""
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(2000 + seed)
    outcome = builder.build(nodes, rng)
    stats = degree_statistics(outcome.tree)
    stored_max = max(outcome.stored_degrees.values(), default=0)
    log_n = math.log2(max(n, 2))
    row = {
        "n": n,
        "seed": seed,
        "max_degree": stats.max_degree,
        "mean_degree": round(stats.mean_degree, 2),
        "stored_max_degree": stored_max,
        "log2_n": round(log_n, 1),
        "max_degree_per_log_n": round(stats.max_degree / log_n, 2),
    }
    return row, stats.max_degree / log_n


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure the degree distribution of the Init tree across sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E2",
        title="Init tree max degree is O(log n) with exponential tail (Thm 7)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for row, _ in outcomes]
    ratios = [ratio for _, ratio in outcomes]
    result.summary = {
        "mean_max_degree_per_log_n": round(float(np.mean(ratios)), 2),
        "max_max_degree_per_log_n": round(float(np.max(ratios)), 2),
    }
    return result
