"""F3 - the uniform-power lower-bound instance (exponential chain).

The paper's motivation (citing Moscibroda-Wattenhofer [21]) is that fixed
uniform power may need up to a linear number of slots to connect spread-out
instances, which is why non-trivial power assignment is essential.  The
canonical witness is the exponential chain: node ``i`` at distance ``2**i``
from the origin, so every link lives in its own length class.  Under uniform
power essentially every link needs its own slot, while mean power and power
control pack them aggressively.
"""

from __future__ import annotations

import numpy as np

from ..baselines import UniformScheduler, naive_tdma_schedule
from ..core import TreeViaCapacity, first_fit_schedule
from ..geometry import exponential_chain
from ..links import Link, LinkSet
from ..sinr import MeanPower
from .config import ExperimentConfig
from .parallel import map_trials
from .runner import ExperimentResult

__all__ = ["run"]


def _chain_links(nodes) -> LinkSet:
    """The natural spanning chain: each node links to its nearer neighbour."""
    ordered = sorted(nodes, key=lambda node: node.x)
    return LinkSet(Link(ordered[i + 1], ordered[i]) for i in range(len(ordered) - 1))


def _trial(args: tuple[ExperimentConfig, int]) -> dict:
    """One chain-size trial (the instance is deterministic in ``n``)."""
    config, n = args
    uniform = UniformScheduler(config.params)
    tvc = TreeViaCapacity(config.params, config.constants, power_mode="arbitrary")
    nodes = exponential_chain(n)
    links = _chain_links(nodes)
    delta = 2.0 ** (n - 1)
    mean_power = MeanPower.for_max_length(config.params, delta)
    rng = np.random.default_rng(13000 + n)
    tvc_outcome = tvc.build(nodes, rng)
    return {
        "n": n,
        "delta": delta,
        "links": len(links),
        "uniform_ff_len": uniform.schedule(links).schedule_length,
        "mean_ff_len": first_fit_schedule(links, mean_power, config.params).length,
        "tvc_arbitrary_len": tvc_outcome.schedule_length,
        "naive_tdma_len": naive_tdma_schedule(links, config.params).schedule_length,
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Compare schedules of exponential chains under the three power regimes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="F3",
        title="Uniform-power worst case: exponential chain needs ~1 slot per link",
    )
    sizes = tuple(min(size, 28) for size in config.sizes)  # Delta = 2**(n-1): keep it finite
    result.rows = map_trials(
        _trial,
        [(config, n) for n in sorted(set(sizes))],
        workers=config.workers,
    )
    largest = result.rows[-1]
    result.summary = {
        "uniform_slots_per_link_at_max_n": round(
            largest["uniform_ff_len"] / max(largest["links"], 1), 2
        ),
        "tvc_arbitrary_vs_uniform": round(
            largest["tvc_arbitrary_len"] / max(largest["uniform_ff_len"], 1), 2
        ),
        "uniform_matches_tdma": largest["uniform_ff_len"] >= 0.8 * largest["naive_tdma_len"],
    }
    return result
