"""F2 - Delta dependence: who pays for a large distance spread.

At a fixed network size, two-scale deployments push the distance ratio Delta
up to 1e8.  The construction cost of ``Init`` and any uniform-power schedule
grow with ``log Delta``; the mean-power schedules should only feel
``log log Delta``; power-controlled TreeViaCapacity schedules should be flat.
"""

from __future__ import annotations

import math

import numpy as np

from ..baselines import UniformScheduler
from ..core import InitialTreeBuilder, MeanPowerRescheduler, TreeViaCapacity, first_fit_schedule, upsilon
from ..geometry import two_scale
from ..sinr import MeanPower
from .config import ExperimentConfig
from .parallel import map_trials
from .runner import ExperimentResult, average_rows

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, float, int]) -> dict:
    """One (delta_target, seed) trial at the fixed sweep size."""
    config, delta_target, seed = args
    n = config.delta_sweep_size
    builder = InitialTreeBuilder(config.params, config.constants)
    rescheduler = MeanPowerRescheduler(config.params, config.constants)
    uniform = UniformScheduler(config.params)
    tvc_arbitrary = TreeViaCapacity(config.params, config.constants, power_mode="arbitrary")
    rng = np.random.default_rng(12000 + seed)
    nodes = two_scale(n, rng, delta_target=delta_target)
    init_outcome = builder.build(nodes, rng)
    links = init_outcome.tree.aggregation_links()
    mean_power = MeanPower.for_max_length(config.params, max(init_outcome.delta, 1.0))
    tvc_outcome = tvc_arbitrary.build(nodes, rng)
    return {
        "delta_target": float(delta_target),
        "seed": seed,
        "realized_delta": round(init_outcome.delta, 1),
        "log2_delta": round(math.log2(max(init_outcome.delta, 2.0)), 1),
        "upsilon": round(upsilon(n, max(init_outcome.delta, 1.0)), 1),
        "init_construction_slots": init_outcome.slots_used,
        "init_stamps_len": init_outcome.tree.aggregation_schedule.length,
        "uniform_ff_len": uniform.schedule(links).schedule_length,
        "mean_ff_len": first_fit_schedule(links, mean_power, config.params).length,
        "mean_reschedule_len": rescheduler.reschedule(links, rng).schedule_length,
        "tvc_arbitrary_len": tvc_outcome.schedule_length,
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Sweep Delta at fixed n and record schedule lengths per method."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="F2",
        title="Delta dependence of construction cost and schedule length",
    )
    raw_rows = map_trials(
        _trial,
        [
            (config, delta_target, seed)
            for delta_target in config.delta_targets
            for seed in config.seeds
        ],
        workers=config.workers,
    )
    fields = (
        "realized_delta",
        "log2_delta",
        "upsilon",
        "init_construction_slots",
        "init_stamps_len",
        "uniform_ff_len",
        "mean_ff_len",
        "mean_reschedule_len",
        "tvc_arbitrary_len",
    )
    result.rows = average_rows(raw_rows, "delta_target", fields)

    smallest = result.rows[0]
    largest = result.rows[-1]
    result.summary = {
        "n": config.delta_sweep_size,
        "init_slots_growth": round(
            largest["init_construction_slots"] / max(smallest["init_construction_slots"], 1), 2
        ),
        "tvc_arbitrary_growth": round(
            largest["tvc_arbitrary_len"] / max(smallest["tvc_arbitrary_len"], 1), 2
        ),
        "mean_reschedule_growth": round(
            largest["mean_reschedule_len"] / max(smallest["mean_reschedule_len"], 1), 2
        ),
    }
    return result
