"""E5 - Theorem 4 / 21: ``TreeViaCapacity`` with arbitrary power schedules a
bi-tree in O(log n) slots."""

from __future__ import annotations

import math

import numpy as np

from ..analysis import validate_bitree
from ..core import TreeViaCapacity
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[dict, float]:
    """One (n, seed) trial; returns the row plus the unrounded length ratio."""
    config, n, seed = args
    framework = TreeViaCapacity(config.params, config.constants, power_mode="arbitrary")
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(5000 + seed)
    outcome = framework.build(nodes, rng)
    report = validate_bitree(outcome.tree, nodes, outcome.power, config.params)
    log_n = math.log2(max(n, 2))
    fractions = [record.progress_fraction for record in outcome.iterations]
    row = {
        "n": n,
        "seed": seed,
        "delta": round(outcome.delta, 1),
        "schedule_len": outcome.schedule_length,
        "iterations": len(outcome.iterations),
        "len_per_log_n": round(outcome.schedule_length / log_n, 2),
        "mean_progress_fraction": round(float(np.mean(fractions)), 2) if fractions else 0.0,
        "construction_slots": outcome.construction_slots,
        "valid": report.ok,
    }
    return row, outcome.schedule_length / log_n


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure the arbitrary-power TreeViaCapacity schedule length across sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E5",
        title="TreeViaCapacity + power control: O(log n)-slot bi-tree (Thm 4/21)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for row, _ in outcomes]
    ratios = [ratio for _, ratio in outcomes]
    result.summary = {
        "mean_len_per_log_n": round(float(np.mean(ratios)), 2),
        "max_len_per_log_n": round(float(np.max(ratios)), 2),
        "all_valid": all(row["valid"] for row in result.rows),
    }
    return result
