"""E7 - Theorem 13: the degree-bounded subset ``T(M)`` is O(1)-sparse and
captures a constant fraction of the tree."""

from __future__ import annotations

import numpy as np

from ..core import InitialTreeBuilder, degree_bounded_subset
from ..links import sparsity
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[dict, float, int]:
    """One (n, seed) trial; returns the row, the fraction, and T(M)'s sparsity."""
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(7000 + seed)
    outcome = builder.build(nodes, rng)
    tree_links = outcome.tree.aggregation_links()
    subset = degree_bounded_subset(tree_links, config.constants.degree_cap_rho)
    tree_psi = sparsity(tree_links).psi
    subset_psi = sparsity(subset.subset).psi
    row = {
        "n": n,
        "seed": seed,
        "rho": subset.rho,
        "tree_links": len(tree_links),
        "tm_links": len(subset.subset),
        "fraction": round(subset.fraction, 2),
        "tree_sparsity": tree_psi,
        "tm_sparsity": subset_psi,
    }
    return row, subset.fraction, subset_psi


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure |T(M)| / |T| and the sparsity of T(M) across sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E7",
        title="Degree-bounded subset T(M): O(1)-sparse, constant fraction of T (Thm 13)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for row, _, _ in outcomes]
    fractions = [fraction for _, fraction, _ in outcomes]
    sparsities = [psi for _, _, psi in outcomes]
    result.summary = {
        "min_fraction": round(float(np.min(fractions)), 2),
        "mean_fraction": round(float(np.mean(fractions)), 2),
        "max_tm_sparsity": int(np.max(sparsities)),
    }
    return result
