"""Experiment configuration.

Every experiment takes an :class:`ExperimentConfig`; the defaults are sized so
the whole suite (and the benchmark harness built on it) completes on a laptop
in minutes.  ``full()`` returns the larger sweep used for the numbers recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..sinr import SINRParameters

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the experiment harness.

    Attributes:
        sizes: network sizes ``n`` swept by size-scaling experiments.
        delta_targets: distance ratios swept by the Delta experiments.
        seeds: random seeds; each (size, seed) pair is one trial.
        deployment: deployment generator name (see ``repro.geometry``).
        params: SINR model parameters.
        constants: protocol constants.
        delta_sweep_size: fixed ``n`` used while sweeping Delta.
        workers: trial-level parallelism.  ``1`` (default) runs trials
            sequentially in-process; ``k > 1`` fans independent trials out
            over ``k`` worker processes; ``-1`` uses all cores but one.
            Results are identical either way (trials are deterministically
            seeded from their own arguments).
        store: optional geometry-store selector, ``"dense"`` or
            ``"tiled"``.  ``None`` (default) leaves ``params.store``
            untouched; a value overrides it for the whole run, so one config
            knob flips every trial of a sweep onto the tiled O(n) store.
    """

    sizes: tuple[int, ...] = (32, 64, 128)
    delta_targets: tuple[float, ...] = (1.0e2, 1.0e3, 1.0e4, 1.0e6)
    seeds: tuple[int, ...] = (1, 2)
    deployment: str = "uniform"
    params: SINRParameters = field(default_factory=SINRParameters)
    constants: AlgorithmConstants = DEFAULT_CONSTANTS
    delta_sweep_size: int = 48
    workers: int = 1
    store: str | None = None

    def __post_init__(self) -> None:
        if self.store is not None and self.store != self.params.store:
            # Frozen dataclass: thread the selector into the params bundle so
            # every consumer (channels, states, accumulators) sees one truth.
            object.__setattr__(self, "params", self.params.with_overrides(store=self.store))

    @staticmethod
    def quick() -> "ExperimentConfig":
        """Small configuration for smoke tests and CI."""
        return ExperimentConfig(sizes=(24, 48), delta_targets=(1.0e2, 1.0e4), seeds=(1,))

    @staticmethod
    def full() -> "ExperimentConfig":
        """The sweep recorded in EXPERIMENTS.md."""
        return ExperimentConfig(
            sizes=(32, 64, 128, 256),
            delta_targets=(1.0e2, 1.0e3, 1.0e4, 1.0e6, 1.0e8),
            seeds=(1, 2, 3),
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy of the configuration with fields replaced."""
        return replace(self, **kwargs)

    def trials(self) -> Sequence[tuple[int, int]]:
        """All (size, seed) pairs, in sweep order."""
        return [(size, seed) for size in self.sizes for seed in self.seeds]
