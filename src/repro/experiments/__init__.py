"""Experiment harness: one module per experiment in DESIGN.md's index."""

from . import (
    e1_init,
    e2_degree,
    e3_sparsity,
    e4_reschedule,
    e5_tvc_arbitrary,
    e6_tvc_mean,
    e7_tm_subset,
    e8_latency,
    e9_capacity,
    e10_fading,
    e11_mobility,
    e12_churn,
    e13_loss,
    e14_failover,
    f1_comparison,
    f2_delta,
    f3_uniform_lower_bound,
)
from .config import ExperimentConfig
from .parallel import (
    TrialFabric,
    default_workers,
    get_fabric,
    map_trials,
    map_trials_cold,
    shared_state,
)
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

ALL_EXPERIMENTS = {
    "E1": e1_init.run,
    "E2": e2_degree.run,
    "E3": e3_sparsity.run,
    "E4": e4_reschedule.run,
    "E5": e5_tvc_arbitrary.run,
    "E6": e6_tvc_mean.run,
    "E7": e7_tm_subset.run,
    "E8": e8_latency.run,
    "E9": e9_capacity.run,
    "E10": e10_fading.run,
    "E11": e11_mobility.run,
    "E12": e12_churn.run,
    "E13": e13_loss.run,
    "E14": e14_failover.run,
    "F1": f1_comparison.run,
    "F2": f2_delta.run,
    "F3": f3_uniform_lower_bound.run,
}


def run_all(config: ExperimentConfig | None = None) -> dict[str, ExperimentResult]:
    """Run every experiment and return results keyed by experiment id."""
    config = config or ExperimentConfig()
    return {key: runner(config) for key, runner in ALL_EXPERIMENTS.items()}


__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "average_rows",
    "make_deployment",
    "run_sweep",
    "map_trials",
    "map_trials_cold",
    "default_workers",
    "shared_state",
    "TrialFabric",
    "get_fabric",
    "ALL_EXPERIMENTS",
    "run_all",
]
