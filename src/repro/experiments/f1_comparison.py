"""F1 - headline comparison: distributed structures match centralized quality.

For every network size, compares the schedule lengths of:

* the Init tree's construction time stamps (the naive schedule),
* centralized uniform-power first-fit over the same links,
* the distributed mean-power reschedule (Theorem 3),
* TreeViaCapacity with mean power (Theorem 16),
* TreeViaCapacity with arbitrary power (Theorem 4/21),
* the centralized MST baseline ([11]-style),
* naive one-link-per-slot TDMA (upper anchor).
"""

from __future__ import annotations

import numpy as np

from ..baselines import CentralizedMSTBaseline, UniformScheduler, naive_tdma_schedule
from ..core import InitialTreeBuilder, MeanPowerRescheduler, TreeViaCapacity
from .config import ExperimentConfig
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

__all__ = ["run"]

_METHOD_FIELDS = (
    "init_stamps",
    "uniform_ff",
    "mean_reschedule",
    "tvc_mean",
    "tvc_arbitrary",
    "centralized_mst",
    "naive_tdma",
)


def _trial(args: tuple[ExperimentConfig, int, int]) -> dict:
    """One (n, seed) trial: run every method on the same deployment.

    The methods consume the shared ``rng`` sequentially, exactly as the
    original in-line sweep did, so rows are bit-identical to the sequential
    run regardless of how trials are distributed over workers.
    """
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    rescheduler = MeanPowerRescheduler(config.params, config.constants)
    uniform = UniformScheduler(config.params)
    centralized = CentralizedMSTBaseline(config.params, power_scheme="mean")
    tvc_arbitrary = TreeViaCapacity(config.params, config.constants, power_mode="arbitrary")
    tvc_mean = TreeViaCapacity(config.params, config.constants, power_mode="mean")
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(11000 + seed)
    init_outcome = builder.build(nodes, rng)
    links = init_outcome.tree.aggregation_links()
    return {
        "n": n,
        "seed": seed,
        "init_stamps": init_outcome.tree.aggregation_schedule.length,
        "uniform_ff": uniform.schedule(links).schedule_length,
        "mean_reschedule": rescheduler.reschedule(links, rng).schedule_length,
        "tvc_mean": tvc_mean.build(nodes, rng).schedule_length,
        "tvc_arbitrary": tvc_arbitrary.build(nodes, rng).schedule_length,
        "centralized_mst": centralized.build(nodes).schedule_length,
        "naive_tdma": naive_tdma_schedule(links, config.params).schedule_length,
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Compare schedule lengths across all methods and sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="F1",
        title="Schedule-length comparison across methods (distributed vs centralized)",
    )
    raw_rows = run_sweep(_trial, config)
    result.rows = average_rows(raw_rows, "n", _METHOD_FIELDS)

    arbitrary_vs_centralized = [
        row["tvc_arbitrary"] / max(row["centralized_mst"], 1) for row in result.rows
    ]
    arbitrary_vs_tdma = [row["tvc_arbitrary"] / max(row["naive_tdma"], 1) for row in result.rows]
    result.summary = {
        "tvc_arbitrary_over_centralized": round(float(np.mean(arbitrary_vs_centralized)), 2),
        "tvc_arbitrary_over_tdma": round(float(np.mean(arbitrary_vs_tdma)), 2),
        "ordering_expected": all(
            row["tvc_arbitrary"] <= row["naive_tdma"] and row["mean_reschedule"] <= row["naive_tdma"]
            for row in result.rows
        ),
    }
    return result
