"""E14 - Root failover: elections, lossy ``Distr-Cap`` and degraded aggregation.

E13 established that ``Init`` survives a lossy transport.  This experiment
stresses the rest of the protocol stack: the phased ``Distr-Cap`` selection
and the aggregation schedules run over the same faulty transport across a
loss sweep, and in the chaos cell the *root itself* is killed - the
survivors elect a new root (seeded bully election), re-root the tree through
the repair splice, and resume aggregation on the recovered tree.

Two properties are pinned in-sweep:

* **zero-fault parity** - at 0% loss the netsim ``Distr-Cap`` selects the
  bit-identical link set in the identical slot count, and the netsim
  convergecast reproduces the lockstep replay's root value and slot count
  exactly;
* **failover liveness** - after the root crash every seed must elect the
  unique max-priority survivor, produce a valid tree spanning the
  survivors rooted at it, and complete the resumed aggregation (possibly
  degraded, never hung).
"""

from __future__ import annotations

import numpy as np

from ..analysis.latency import simulate_convergecast
from ..core import InitialTreeBuilder
from ..core.distr_cap import DistrCapSelector
from ..netsim import (
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    NetDistrCapBuilder,
    election_priority,
    run_convergecast,
    run_root_failover,
)
from .config import ExperimentConfig
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

__all__ = ["run", "LOSS_RATES", "FAILOVER_LOSS"]

#: Per-message drop probabilities swept over Distr-Cap and convergecast.
LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
#: Drop probability in force while the root crash is survived.
FAILOVER_LOSS = 0.10


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[list[dict], dict]:
    """One (n, seed) trial: a loss sweep plus the root-crash failover cell."""
    config, n, seed = args
    params = config.params
    nodes = make_deployment(config, n, seed)
    ids = [node.id for node in nodes]

    built = InitialTreeBuilder(params, config.constants).build(
        nodes, np.random.default_rng(14_000 + seed)
    )
    tree, power = built.tree, built.power
    candidates = tree.aggregation_links()
    cap_oracle = DistrCapSelector(params, config.constants).select(
        candidates, np.random.default_rng(14_000 + seed), link_rounds=built.link_rounds
    )
    agg_oracle = simulate_convergecast(tree, power, params)

    rows: list[dict] = []
    for loss in LOSS_RATES:
        plan = FaultPlan(seed=14_100 + seed, drop_prob=loss)
        cap = NetDistrCapBuilder(params, config.constants, plan=plan).select(
            candidates, np.random.default_rng(14_000 + seed), link_rounds=built.link_rounds
        )
        agg = run_convergecast(tree, power, params, plan=plan)
        if loss == 0.0:
            # In-sweep parity pins: a faultless netsim run is bit-identical
            # to the lockstep oracles (selection, slots and root value).
            assert [l.endpoint_ids for l in cap.selected] == [
                l.endpoint_ids for l in cap_oracle.selected
            ]
            assert cap.slots_used == cap_oracle.slots_used
            assert agg.root_value == agg_oracle.root_value
            assert agg.slots == agg_oracle.slots
        rows.append(
            {
                "n": n,
                "seed": seed,
                "loss": loss,
                "cap_slots": cap.slots_used,
                "cap_oracle_slots": cap_oracle.slots_used,
                "cap_selected": len(cap.selected),
                "cap_dropped_winners": cap.dropped_winners,
                "agg_slots": agg.slots,
                "agg_oracle_slots": agg_oracle.slots,
                "agg_retries": agg.retries,
                "agg_overhead": round(agg.slots / max(agg_oracle.slots, 1), 3),
                "agg_correct": agg.correct,
                "degraded": cap.degraded or agg.degraded,
            }
        )

    # The failover cell: the root dies under double-digit loss; the
    # survivors must elect, re-root and finish aggregating.
    root = tree.root_id
    plan = FaultPlan(
        seed=14_100 + seed,
        drop_prob=FAILOVER_LOSS,
        crashes=CrashSchedule((CrashWindow(root, 0),)),
    )
    failover = run_root_failover(
        tree,
        power,
        params=params,
        constants=config.constants,
        plan=plan,
        crashed_ids=[root],
        rng=np.random.default_rng(14_200 + seed),
    )
    failover.tree.validate()
    survivors = set(ids) - {root}
    expected_leader = max(survivors, key=lambda nid: election_priority(plan.seed, nid))
    resumed = run_convergecast(
        failover.tree,
        failover.power,
        params,
        plan=plan.without_crashes(),
        slot_offset=failover.slots_used,
        quorum=0.5,
    )
    crash_row = {
        "n": n,
        "seed": seed,
        "loss": FAILOVER_LOSS,
        "leader_is_max_priority": failover.new_root_id == expected_leader,
        "rerooted": failover.tree.root_id == failover.new_root_id,
        "spans_survivors": set(failover.tree.nodes) == survivors,
        "election_rounds": failover.election.rounds_used,
        "election_slots": failover.election.slots_used,
        "recovery_slots": failover.slots_used,
        "resumed_slots": resumed.slots,
        "resumed_quorum_met": resumed.quorum_met,
        "resumed_missing": len(resumed.missing_subtrees),
    }
    return rows, crash_row


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure the stack's recovery cost: lossy selection, degraded
    aggregation, and full root failover."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E14",
        title="Root failover: election + re-root recovers the stack; zero-fault netsim is oracle-exact",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for rows, _ in outcomes for row in rows]
    crash_rows = [crash for _, crash in outcomes]

    by_loss = average_rows(result.rows, "loss", ["agg_overhead", "agg_retries"])
    result.summary = {
        "mean_agg_overhead_by_loss": {
            entry["loss"]: round(entry["agg_overhead"], 3) for entry in by_loss
        },
        "zero_fault_parity": all(
            row["agg_overhead"] == 1.0 and row["cap_slots"] == row["cap_oracle_slots"]
            for row in result.rows
            if row["loss"] == 0.0
        ),
        "failover_converged": all(
            row["leader_is_max_priority"] and row["rerooted"] and row["spans_survivors"]
            for row in crash_rows
        ),
        "resumed_quorum_met": all(row["resumed_quorum_met"] for row in crash_rows),
        "mean_recovery_slots": round(
            float(np.mean([row["recovery_slots"] for row in crash_rows])), 1
        ),
        "mean_election_slots": round(
            float(np.mean([row["election_slots"] for row in crash_rows])), 1
        ),
    }
    result.rows.extend(crash_rows)
    return result
