"""E1 - Theorem 2: ``Init`` builds a bi-tree in O(log Delta * log n) slots."""

from __future__ import annotations

import math

import numpy as np

from ..core import InitialTreeBuilder
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[dict, float]:
    """One (n, seed) trial; returns the row plus the unrounded slot ratio."""
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(1000 + seed)
    outcome = builder.build(nodes, rng)
    outcome.tree.validate()
    bound = math.log2(max(outcome.delta, 2.0)) * math.log2(max(n, 2))
    ratio = outcome.slots_used / bound
    row = {
        "n": n,
        "seed": seed,
        "delta": round(outcome.delta, 1),
        "slots": outcome.slots_used,
        "rounds": outcome.rounds_used,
        "sweeps": outcome.sweeps_used,
        "logD_logn": round(bound, 1),
        "slots_per_logD_logn": round(ratio, 2),
        "strongly_connected": outcome.tree.is_strongly_connected(),
        "schedule_len": outcome.tree.aggregation_schedule.length,
    }
    return row, ratio


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure Init's slot count and structural guarantees across sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E1",
        title="Init builds a strongly connected bi-tree in O(log Delta * log n) slots (Thm 2)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for row, _ in outcomes]
    ratios = [ratio for _, ratio in outcomes]
    result.summary = {
        "mean_slots_per_logD_logn": round(float(np.mean(ratios)), 2),
        "max_slots_per_logD_logn": round(float(np.max(ratios)), 2),
        "all_strongly_connected": all(row["strongly_connected"] for row in result.rows),
    }
    return result
