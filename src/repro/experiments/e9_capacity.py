"""E9 - Theorem 9 substrate: capacity selection and scheduling of sparse sets.

Checks the two ingredients imported from [14]/[11] that the paper builds on:
for a psi-sparse link set, (a) the Kesselheim-style selection returns a
feasible subset of size Omega(|L| / psi), and (b) first-fit scheduling uses
O(psi log n) slots.
"""

from __future__ import annotations

import math

import numpy as np

from ..core import (
    InitialTreeBuilder,
    first_fit_schedule,
    select_power_controllable_subset,
    solve_power,
)
from ..links import sparsity
from ..sinr import MeanPower, is_feasible
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> dict:
    """One (n, seed) trial: select and schedule the Init tree's link set."""
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(9000 + seed)
    outcome = builder.build(nodes, rng)
    links = outcome.tree.aggregation_links()
    psi = sparsity(links).psi
    selected = select_power_controllable_subset(
        links, config.params, tau=config.constants.capacity_tau
    )
    power = solve_power(list(selected), config.params, margin=1.05)
    selected_feasible = is_feasible(list(selected), power, config.params)
    mean_power = MeanPower.for_max_length(config.params, max(outcome.delta, 1.0))
    schedule = first_fit_schedule(links, mean_power, config.params)
    log_n = math.log2(max(n, 2))
    return {
        "n": n,
        "seed": seed,
        "links": len(links),
        "sparsity_psi": psi,
        "selected": len(selected),
        "selected_fraction": round(len(selected) / max(len(links), 1), 2),
        "selected_feasible": selected_feasible,
        "ff_mean_schedule_len": schedule.length,
        "ff_len_per_psi_log_n": round(schedule.length / max(psi * log_n, 1.0), 3),
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure feasible-subset size and first-fit schedule length on tree link sets."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E9",
        title="Sparse-set capacity and scheduling substrate (Thm 9)",
    )
    result.rows = run_sweep(_trial, config)
    result.summary = {
        "all_selected_feasible": all(row["selected_feasible"] for row in result.rows),
        "mean_selected_fraction": round(
            float(np.mean([row["selected_fraction"] for row in result.rows])), 2
        ),
    }
    return result
