"""Experiment result container and shared helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..geometry import Node, deployment_by_name
from ..analysis import format_markdown_table, format_table
from ..obs.spans import span
from .config import ExperimentConfig
from .parallel import map_trials

__all__ = ["ExperimentResult", "make_deployment", "average_rows", "run_sweep"]


@dataclass
class ExperimentResult:
    """Rows plus a summary for one experiment.

    Attributes:
        experiment_id: short id ("E1", "F2", ...).
        title: one-line description, mirroring DESIGN.md's experiment index.
        rows: one dictionary per trial (or per aggregated sweep point).
        summary: headline quantities (fit exponents, ratios, pass flags).
    """

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        """Aligned plain-text table of the rows."""
        return format_table(self.rows, title=f"{self.experiment_id}: {self.title}")

    def markdown(self) -> str:
        """Markdown rendering (used to refresh EXPERIMENTS.md)."""
        lines = [f"### {self.experiment_id} — {self.title}", "", format_markdown_table(self.rows)]
        if self.summary:
            lines.append("")
            lines.append(
                "Summary: " + ", ".join(f"{key} = {value}" for key, value in self.summary.items())
            )
        return "\n".join(lines)


def make_deployment(config: ExperimentConfig, n: int, seed: int, **kwargs) -> list[Node]:
    """Generate the configured deployment for a trial."""
    rng = np.random.default_rng(seed)
    return deployment_by_name(config.deployment, n, rng, **kwargs)


def run_sweep(trial_fn: Callable[[tuple], Any], config: ExperimentConfig) -> list[Any]:
    """Evaluate a module-level trial function over ``config.trials()``.

    Fans out over ``config.workers`` processes on the persistent trial
    fabric (see :mod:`repro.experiments.parallel`); the config is broadcast
    once per sweep through shared memory, each task carries only its
    ``(n, seed)`` tail, and every trial receives the same ``(config, n,
    seed)`` tuple it always has - results come back in sweep order,
    bit-identical at any worker count.
    """
    trials = [(n, seed) for n, seed in config.trials()]
    with span(
        "experiment.sweep",
        trial_fn=getattr(trial_fn, "__name__", str(trial_fn)),
        trials=len(trials),
        workers=config.workers,
    ):
        return map_trials(
            trial_fn,
            trials,
            workers=config.workers,
            shared=config,
        )


def average_rows(
    rows: Sequence[dict[str, Any]],
    group_by: str,
    fields: Sequence[str],
) -> list[dict[str, Any]]:
    """Average numeric fields over rows sharing the same ``group_by`` value."""
    groups: dict[Any, list[dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault(row[group_by], []).append(row)
    averaged: list[dict[str, Any]] = []
    for key in sorted(groups):
        bucket = groups[key]
        entry: dict[str, Any] = {group_by: key}
        for field_name in fields:
            values = [row[field_name] for row in bucket if field_name in row]
            if values and all(isinstance(v, (int, float, np.floating, np.integer)) for v in values):
                entry[field_name] = float(np.mean(values))
            elif values:
                entry[field_name] = values[0]
        averaged.append(entry)
    return averaged
