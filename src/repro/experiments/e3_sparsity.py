"""E3 - Theorem 11: the tree built by ``Init`` is O(log n)-sparse."""

from __future__ import annotations

import math

import numpy as np

from ..analysis import tree_sparsity
from ..core import InitialTreeBuilder
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[dict, float]:
    """One (n, seed) trial; returns the row plus the unrounded sparsity ratio."""
    config, n, seed = args
    builder = InitialTreeBuilder(config.params, config.constants)
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(3000 + seed)
    outcome = builder.build(nodes, rng)
    psi = tree_sparsity(outcome.tree)
    log_n = math.log2(max(n, 2))
    row = {
        "n": n,
        "seed": seed,
        "delta": round(outcome.delta, 1),
        "sparsity_psi": psi,
        "log2_n": round(log_n, 1),
        "psi_per_log_n": round(psi / log_n, 2),
    }
    return row, psi / log_n


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure the psi-sparsity (Definition 8) of the Init tree across sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E3",
        title="Init tree is O(log n)-sparse under Definition 8 (Thm 11)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for row, _ in outcomes]
    ratios = [ratio for _, ratio in outcomes]
    result.summary = {
        "mean_psi_per_log_n": round(float(np.mean(ratios)), 2),
        "max_psi_per_log_n": round(float(np.max(ratios)), 2),
    }
    return result
