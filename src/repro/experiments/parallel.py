"""Parallel multi-trial orchestration for the experiment sweeps.

Every experiment in this package is a sweep of independent trials (one per
``(size, seed)`` pair, or per ``(delta_target, seed)`` for the Delta sweeps).
Each trial derives all of its randomness from its own arguments
(``np.random.default_rng(offset + seed)``), so trials can be evaluated in any
order - or in different processes - and produce bit-identical rows.

:func:`map_trials` exploits that: it fans the trial function out over a
``ProcessPoolExecutor`` and returns results in sweep order.  With
``workers=1`` (the default of :class:`~repro.experiments.config
.ExperimentConfig.workers`) it degrades to a plain sequential loop, so the
parallel path is strictly opt-in.

The trial function must be picklable (a module-level function), as must its
argument tuples and returned rows; every experiment module here follows that
shape (``_trial`` at module scope, rows of plain scalars).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

__all__ = ["default_workers", "map_trials"]

_A = TypeVar("_A")
_R = TypeVar("_R")


def default_workers() -> int:
    """Worker count used for ``workers=-1``: all cores but one, at least 1."""
    return max(1, (os.cpu_count() or 1) - 1)


def map_trials(
    trial_fn: Callable[[_A], _R],
    trial_args: Iterable[_A],
    *,
    workers: int | None = None,
) -> list[_R]:
    """Evaluate ``trial_fn`` over ``trial_args``, preserving sweep order.

    Args:
        trial_fn: module-level function of one argument (typically a tuple
            ``(config, n, seed)``); must be picklable for the process pool.
        trial_args: the per-trial argument values, in sweep order.
        workers: ``None``/``0``/``1`` run sequentially in-process; ``k > 1``
            fans out over ``min(k, len(trials))`` worker processes; ``-1``
            uses :func:`default_workers`.

    Returns:
        The per-trial results, in the same order as ``trial_args`` -
        identical to the sequential result because trials are independent
        and deterministically seeded from their arguments.
    """
    items: Sequence[Any] = list(trial_args)
    count = workers if workers is not None else 1
    if count < 0:
        count = default_workers()
    if count <= 1 or len(items) <= 1:
        return [trial_fn(args) for args in items]
    with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
        return list(pool.map(trial_fn, items))
