"""Parallel multi-trial orchestration: the shared-memory trial fabric.

Every experiment in this package is a sweep of independent trials (one per
``(size, seed)`` pair, or per ``(delta_target, seed)`` for the Delta sweeps).
Each trial derives all of its randomness from its own arguments
(``np.random.default_rng(offset + seed)``), so trials can be evaluated in any
order - or in different processes - and produce bit-identical rows.

Before PR 5 the fan-out paid two fixed costs per sweep: a *cold*
``ProcessPoolExecutor`` was created (and torn down) for every ``run(...)``
call, and every task pickled its full argument tuple - including the shared
``ExperimentConfig`` and, for geometry-heavy trial functions, O(n^2)
matrices.  :func:`map_trials` now runs on a persistent **trial fabric**:

* one :class:`TrialFabric` per worker count lives for the whole process
  (created on first use, shut down at exit), so sweeps after the first pay
  zero pool start-up;
* the sweep-constant ``shared`` payload (typically the config) is pickled
  **once** into a POSIX shared-memory block; tasks carry only the tiny
  per-trial tails, and workers unpickle the payload once per sweep;
* a sweep-constant :class:`~repro.state.NetworkState` can ride along as
  ``state=``: its matrices are exported through
  :mod:`repro.state.shared` and mapped **zero-copy** in every worker
  (no per-trial matrix pickling); trial functions fetch it with
  :func:`shared_state`;
* trials are dispatched in contiguous *chunks*, cutting per-task overhead.

The pre-fabric behaviour - cold pool, every argument pickled per task - is
preserved as :func:`map_trials_cold`, the oracle the parity tests and
benchmarks compare against.  Results are bit-identical on every path
because the trial function receives exactly the same argument values.

The trial function must be picklable (a module-level function), as must its
argument tuples and returned rows; every experiment module here follows that
shape (``_trial`` at module scope, rows of plain scalars).
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..obs.kernels import instrument_kernels, kernel_timers_active, uninstrument_kernels
from ..obs.runtime import OBS, telemetry
from ..obs.spans import begin_span, end_span, span
from ..state import NetworkState, SharedStateSpec, attach_state, export_state
from ..state.shared import StateExport

__all__ = [
    "usable_cpu_count",
    "default_workers",
    "map_trials",
    "map_trials_cold",
    "shared_state",
    "TrialFabric",
    "get_fabric",
    "shutdown_fabrics",
]

_A = TypeVar("_A")
_R = TypeVar("_R")


def usable_cpu_count() -> int | None:
    """CPUs this process may actually use (affinity-aware).

    Containers and batch schedulers routinely pin a process to a subset of
    the machine, so the affinity mask (``os.process_cpu_count`` on Python >=
    3.13, ``sched_getaffinity`` elsewhere) is consulted before the raw
    ``os.cpu_count``.  This is the one implementation of that probe
    (``scripts/run_benchmarks.py`` records it in baseline fingerprints).
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        return process_cpu_count()
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count()


def default_workers() -> int:
    """Worker count used for ``workers=-1``: all *usable* cores but one."""
    return max(1, (usable_cpu_count() or 1) - 1)


# --------------------------------------------------------------------------
# Worker-side payload registry
# --------------------------------------------------------------------------

#: Per-process cache of attached sweep payloads, keyed by shm block name.
#: Workers are reused across sweeps; entries for past sweeps are evicted
#: when a task referencing a different payload arrives.
_ATTACHED: dict[str, Any] = {}
#: The NetworkState broadcast of the sweep currently being executed (set in
#: workers by ``_run_chunk``, in the parent by the sequential path).
_CURRENT_STATE: NetworkState | None = None


def shared_state() -> NetworkState | None:
    """The sweep's broadcast :class:`~repro.state.NetworkState`, if any.

    Trial functions that opted into the fabric's ``state=`` channel call
    this to reach the zero-copy geometry store.  Works identically in
    worker processes (shared-memory view) and in the sequential in-process
    path (the original state).
    """
    return _CURRENT_STATE


def _attach_pickle(name: str, size: int) -> Any:
    """Unpickle a broadcast payload from its shm block, once per sweep."""
    if name in _ATTACHED:
        return _ATTACHED[name]
    block = shared_memory.SharedMemory(name=name)
    try:
        value = pickle.loads(bytes(block.buf[:size]))
    finally:
        block.close()
    _ATTACHED[name] = value
    return value


def _attach_shared_state(spec: SharedStateSpec) -> NetworkState:
    """Map a broadcast state zero-copy, once per sweep per worker."""
    key = spec.xy.name
    state = _ATTACHED.get(key)
    if state is None:
        state = attach_state(spec)
        _ATTACHED[key] = state
    return state


def _evict_stale(live_names: set[str]) -> None:
    for name in [name for name in _ATTACHED if name not in live_names]:
        del _ATTACHED[name]


def _run_chunk(task: tuple) -> tuple[list, dict | None]:
    """Worker entry point: resolve the sweep payloads, run one trial chunk.

    Returns ``(results, obs_payload)``.  When the parent had telemetry on,
    the chunk runs against a fresh worker-local registry and the payload
    carries everything it accumulated; the parent merges payloads in chunk
    (= sweep) order, so counters are exact and deterministic at any worker
    count.  ``obs_payload`` is ``None`` when telemetry was off.
    """
    trial_fn, shared_spec, state_spec, chunk, obs_spec = task
    live: set[str] = set()
    payload = None
    if shared_spec is not None:
        name, size = shared_spec
        payload = _attach_pickle(name, size)
        live.add(name)
    global _CURRENT_STATE
    _CURRENT_STATE = None
    if state_spec is not None:
        _CURRENT_STATE = _attach_shared_state(state_spec)
        live.add(state_spec.xy.name)
    _evict_stale(live)
    if obs_spec is None:
        if shared_spec is None:
            return [trial_fn(args) for args in chunk], None
        return [trial_fn((payload, *args)) for args in chunk], None
    kernel_timers, chunk_start = obs_spec
    # Mirror the parent's timer state: worker processes are reused across
    # sweeps, so an untimed sweep must also undo wrappers a previous timed
    # sweep installed - otherwise workers would record kernel counters the
    # sequential path doesn't, breaking worker-count parity.
    if kernel_timers:
        instrument_kernels()
    else:
        uninstrument_kernels()
    results: list = []
    with telemetry() as registry:
        for offset, args in enumerate(chunk):
            with span("trial", index=chunk_start + offset):
                results.append(
                    trial_fn(args if shared_spec is None else (payload, *args))
                )
    return results, registry.to_payload()


# --------------------------------------------------------------------------
# Parent-side fabric
# --------------------------------------------------------------------------


def _export_pickle(value: Any) -> tuple[tuple[str, int], shared_memory.SharedMemory]:
    """Pickle a sweep payload into one shm block (read by every worker)."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    block = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    block.buf[: len(payload)] = payload
    return (block.name, len(payload)), block


class TrialFabric:
    """A persistent worker pool with shared-memory sweep broadcasts.

    The pool is created lazily on the first :meth:`map` and reused for every
    subsequent sweep; :func:`get_fabric` hands out one fabric per worker
    count and registers an exit hook, so callers never manage lifetimes.

    Args:
        workers: number of worker processes.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(
        self,
        trial_fn: Callable[..., _R],
        trial_args: Iterable[Any],
        *,
        shared: Any = None,
        state: NetworkState | None = None,
        state_alphas: tuple[float, ...] = (),
        chunksize: int | None = None,
    ) -> list[_R]:
        """Evaluate ``trial_fn`` over the trials, preserving sweep order.

        Args:
            trial_fn: module-level function of one tuple argument.
            trial_args: per-trial argument tuples.  With ``shared``, these
                are the per-trial *tails*: each call receives
                ``(shared, *tail)`` re-assembled in the worker.
            shared: sweep-constant payload, pickled once into shared memory
                instead of once per trial.
            state: sweep-constant geometry store, exported zero-copy;
                trial functions reach it via :func:`shared_state`.
            state_alphas: path-loss exponents whose ``d**alpha`` attenuation
                matrices ride along in the state export, so workers do not
                re-derive them from the shared distances once per sweep.
            chunksize: trials per task (default: two chunks per worker).
        """
        items = list(trial_args)
        if not items:
            return []
        exports: list[StateExport | shared_memory.SharedMemory] = []
        shared_spec = None
        state_spec = None
        try:
            if shared is not None:
                shared_spec, block = _export_pickle(shared)
                exports.append(block)
            if state is not None:
                export = export_state(state, alphas=state_alphas)
                state_spec = export.spec
                exports.append(export)
            if chunksize is None:
                chunksize = max(1, math.ceil(len(items) / (2 * self.workers)))
            chunks = [items[i : i + chunksize] for i in range(0, len(items), chunksize)]
            # With telemetry on, each task carries (kernel-timer flag, global
            # index of its first trial) so workers label spans with sweep
            # positions and accumulate into fresh local registries.
            obs_on = OBS.enabled
            timers = kernel_timers_active()
            tasks = [
                (
                    trial_fn,
                    shared_spec,
                    state_spec,
                    chunk,
                    (timers, start * chunksize) if obs_on else None,
                )
                for start, chunk in enumerate(chunks)
            ]
            pool = self._ensure_pool()
            try:
                with span("fabric.map", trials=len(items), workers=self.workers):
                    nested = list(pool.map(_run_chunk, tasks))
            except BrokenProcessPool:
                # A dead worker poisons the executor permanently; drop it so
                # the next sweep starts a fresh pool.
                self.shutdown()
                raise
        finally:
            for handle in exports:
                if isinstance(handle, StateExport):
                    handle.close()
                else:
                    handle.close()
                    try:
                        handle.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
        results: list[_R] = []
        for chunk_results, obs_payload in nested:
            # Chunk order is sweep order, which makes gauge last-writer-wins
            # (and therefore the whole merge) worker-count invariant.
            results.extend(chunk_results)
            if obs_payload is not None:
                OBS.registry.merge_payload(obs_payload)
        return results

    def shutdown(self) -> None:
        """Terminate the worker pool (the fabric can be used again after)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


_FABRICS: dict[int, TrialFabric] = {}


def get_fabric(workers: int) -> TrialFabric:
    """The process-wide fabric for ``workers`` worker processes."""
    fabric = _FABRICS.get(workers)
    if fabric is None:
        fabric = TrialFabric(workers)
        _FABRICS[workers] = fabric
    return fabric


def shutdown_fabrics() -> None:
    """Shut down every fabric pool (registered as an exit hook)."""
    for fabric in _FABRICS.values():
        fabric.shutdown()
    _FABRICS.clear()


atexit.register(shutdown_fabrics)


# --------------------------------------------------------------------------
# Sweep entry points
# --------------------------------------------------------------------------


def _resolve_workers(workers: int | None, items: int) -> int:
    count = workers if workers is not None else 1
    if count < 0:
        count = default_workers()
    if items <= 1:
        return 1
    return count


def _map_sequential(
    trial_fn: Callable[..., _R],
    items: Sequence[Any],
    shared: Any,
    state: NetworkState | None,
) -> list[_R]:
    """In-process path; composes the same argument tuples the workers see.

    The broadcast state is flipped read-only for the duration of the sweep:
    workers only ever see an immutable shared-memory view, and the contract
    must not diverge with the worker count - a trial mutating the broadcast
    raises identically at ``workers=1``.
    """
    global _CURRENT_STATE
    previous = _CURRENT_STATE
    _CURRENT_STATE = state
    was_readonly = None
    if state is not None:
        was_readonly = state._readonly  # noqa: SLF001 - sweep-scoped freeze
        state._readonly = True  # repro-lint: disable=RL004 - the freeze itself
    try:
        results: list[_R] = []
        for index, args in enumerate(items):
            handle = begin_span("trial", index=index)
            try:
                results.append(
                    trial_fn(args) if shared is None else trial_fn((shared, *args))
                )
            finally:
                end_span(handle)
        return results
    finally:
        _CURRENT_STATE = previous
        if state is not None:
            state._readonly = was_readonly  # repro-lint: disable=RL004 - unfreeze


def map_trials(
    trial_fn: Callable[[_A], _R],
    trial_args: Iterable[_A],
    *,
    workers: int | None = None,
    shared: Any = None,
    state: NetworkState | None = None,
    state_alphas: tuple[float, ...] = (),
    chunksize: int | None = None,
) -> list[_R]:
    """Evaluate ``trial_fn`` over ``trial_args``, preserving sweep order.

    Args:
        trial_fn: module-level function of one argument (typically a tuple
            ``(config, n, seed)``); must be picklable for the worker pool.
        trial_args: the per-trial argument values, in sweep order.  With
            ``shared``, pass only the per-trial tails - each call receives
            ``(shared, *tail)``.
        workers: ``None``/``0``/``1`` run sequentially in-process; ``k > 1``
            fans out over the persistent ``k``-worker fabric; ``-1`` uses
            :func:`default_workers`.
        shared: sweep-constant payload broadcast once per sweep (pickled
            into shared memory) instead of once per trial.
        state: sweep-constant :class:`~repro.state.NetworkState` broadcast
            zero-copy; trial functions fetch it via :func:`shared_state`.
            The broadcast is immutable for the sweep's duration on every
            path (workers map it read-only; the sequential path freezes it).
        state_alphas: attenuation exponents exported with the state (see
            :meth:`TrialFabric.map`).
        chunksize: trials per pool task (default: two chunks per worker).

    Returns:
        The per-trial results, in the same order as ``trial_args`` -
        identical to the sequential result because trials are independent
        and deterministically seeded from their arguments.
    """
    items: Sequence[Any] = list(trial_args)
    count = _resolve_workers(workers, len(items))
    if count <= 1:
        return _map_sequential(trial_fn, items, shared, state)
    return get_fabric(count).map(
        trial_fn,
        items,
        shared=shared,
        state=state,
        state_alphas=state_alphas,
        chunksize=chunksize,
    )


def map_trials_cold(
    trial_fn: Callable[[_A], _R],
    trial_args: Iterable[_A],
    *,
    workers: int | None = None,
) -> list[_R]:
    """The pre-fabric oracle: a cold pool per sweep, full args pickled per task.

    Kept so parity tests and the fabric benchmark can compare the persistent
    shared-memory path against the exact per-sweep cost model it replaced.
    """
    items: Sequence[Any] = list(trial_args)
    count = _resolve_workers(workers, len(items))
    if count <= 1:
        return [trial_fn(args) for args in items]
    with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
        return list(pool.map(trial_fn, items))
