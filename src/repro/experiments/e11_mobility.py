"""E11 - Mobility: how long a built structure survives node movement.

``Init`` builds its bi-tree for a frozen placement; when nodes then move,
link lengths drift away from the recorded powers and slot groups gradually
stop being SINR-feasible.  This experiment runs the
:class:`~repro.dynamics.simulator.DynamicSimulator` with a Brownian
:class:`~repro.dynamics.mobility.RandomWalk` of increasing step size and
measures the *connectivity half-life*: the first epoch at which fewer than
half of the schedule's slot groups remain feasible.  Faster movement should
shorten the half-life monotonically (in the mean).
"""

from __future__ import annotations

import numpy as np

from ..dynamics import DynamicScenario, DynamicSimulator, RandomWalk
from .config import ExperimentConfig
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

__all__ = ["run", "WALK_SIGMAS", "MOBILITY_EPOCHS"]

#: Brownian step standard deviations swept (in units of the paper's
#: normalized minimum node separation).
WALK_SIGMAS = (0.25, 0.5, 1.0)
#: Epoch horizon; a half-life beyond it is reported as the horizon itself.
MOBILITY_EPOCHS = 12


def _trial(args: tuple[ExperimentConfig, int, int]) -> list[dict]:
    """One (n, seed) trial: one row per walk step size."""
    config, n, seed = args
    nodes = make_deployment(config, n, seed)
    rows: list[dict] = []
    for sigma in WALK_SIGMAS:
        scenario = DynamicScenario(
            mobility=RandomWalk(sigma=sigma),
            epochs=MOBILITY_EPOCHS,
        )
        simulator = DynamicSimulator(
            list(nodes), config.params, scenario, config.constants, seed=11_000 + seed
        )
        outcome = simulator.run()
        half_life = outcome.half_life()
        final = outcome.records[-1] if outcome.records else None
        rows.append(
            {
                "n": n,
                "seed": seed,
                "sigma": sigma,
                "half_life": MOBILITY_EPOCHS if half_life is None else half_life,
                "survived_horizon": half_life is None,
                "final_feasible_fraction": round(final.feasible_fraction, 4) if final else 1.0,
                "final_delivery_rate": round(final.link_success_rate, 4) if final else 1.0,
            }
        )
    return rows


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure the connectivity half-life of a bi-tree under random walks."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E11",
        title="Mobility: connectivity half-life shrinks as nodes move faster",
    )
    result.rows = [row for rows in run_sweep(_trial, config) for row in rows]

    by_sigma = average_rows(result.rows, "sigma", ["half_life", "final_feasible_fraction"])
    half_lives = [entry["half_life"] for entry in by_sigma]
    result.summary = {
        "mean_half_life_by_sigma": {
            entry["sigma"]: round(entry["half_life"], 2) for entry in by_sigma
        },
        "faster_walks_die_sooner": all(
            later <= earlier + 1e-12 for earlier, later in zip(half_lives, half_lives[1:])
        ),
        "mean_final_feasible_fraction": round(
            float(np.mean([row["final_feasible_fraction"] for row in result.rows])), 4
        ),
    }
    return result
