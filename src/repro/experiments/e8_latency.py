"""E8 - the bi-tree property: aggregation, broadcast and pairwise
communication complete within (twice) the schedule length."""

from __future__ import annotations

import numpy as np

from ..analysis import pairwise_latency, simulate_broadcast, simulate_convergecast
from ..core import TreeViaCapacity
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> dict:
    """One (n, seed) trial: replay all three traffic patterns on a TVC bi-tree."""
    config, n, seed = args
    framework = TreeViaCapacity(config.params, config.constants, power_mode="arbitrary")
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(8000 + seed)
    outcome = framework.build(nodes, rng)
    up = simulate_convergecast(outcome.tree, outcome.power, config.params)
    down = simulate_broadcast(outcome.tree, outcome.power, config.params)
    node_ids = sorted(outcome.tree.nodes)
    pair = pairwise_latency(
        outcome.tree, outcome.power, config.params, node_ids[0], node_ids[-1]
    )
    return {
        "n": n,
        "seed": seed,
        "schedule_len": outcome.schedule_length,
        "convergecast_slots": up.slots,
        "convergecast_ok": up.correct,
        "broadcast_slots": down.slots,
        "broadcast_ok": down.complete,
        "pairwise_slots": pair.slots,
        "pairwise_ok": pair.delivered,
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Replay convergecast / broadcast / pairwise traffic on TVC bi-trees."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E8",
        title="Bi-tree latency: aggregation, broadcast, pairwise all O(schedule length)",
    )
    result.rows = run_sweep(_trial, config)
    result.summary = {
        "all_convergecasts_correct": all(row["convergecast_ok"] for row in result.rows),
        "all_broadcasts_complete": all(row["broadcast_ok"] for row in result.rows),
        "all_pairwise_delivered": all(row["pairwise_ok"] for row in result.rows),
    }
    return result
