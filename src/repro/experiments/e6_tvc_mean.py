"""E6 - Theorem 16: ``TreeViaCapacity`` with mean power schedules a bi-tree in
O(Upsilon * log n) slots."""

from __future__ import annotations

import math

import numpy as np

from ..core import TreeViaCapacity, upsilon
from .config import ExperimentConfig
from .runner import ExperimentResult, make_deployment, run_sweep

__all__ = ["run"]


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[dict, float]:
    """One (n, seed) trial; returns the row plus the unrounded length ratio."""
    config, n, seed = args
    framework = TreeViaCapacity(config.params, config.constants, power_mode="mean")
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(6000 + seed)
    outcome = framework.build(nodes, rng)
    log_n = math.log2(max(n, 2))
    ups = upsilon(n, max(outcome.delta, 1.0))
    ratio = outcome.schedule_length / (ups * log_n)
    row = {
        "n": n,
        "seed": seed,
        "delta": round(outcome.delta, 1),
        "schedule_len": outcome.schedule_length,
        "upsilon": round(ups, 1),
        "len_per_upsilon_log_n": round(ratio, 3),
        "len_per_log_n": round(outcome.schedule_length / log_n, 2),
        "aggregation_feasible": outcome.aggregation_feasible,
        "construction_slots": outcome.construction_slots,
    }
    return row, ratio


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure the mean-power TreeViaCapacity schedule length across sizes."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E6",
        title="TreeViaCapacity + mean power: O(Upsilon log n)-slot bi-tree (Thm 16)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for row, _ in outcomes]
    ratios = [ratio for _, ratio in outcomes]
    result.summary = {
        "mean_len_per_upsilon_log_n": round(float(np.mean(ratios)), 3),
        "all_feasible": all(row["aggregation_feasible"] for row in result.rows),
    }
    return result
