"""E12 - Churn: repair cost scales with damage, not network size.

The repair protocol re-runs ``Init`` among the orphaned subtree roots only,
so its slot cost should track the damage size ``k`` (roughly
``O(log Delta * log k)``) and stay well below rebuilding from scratch.  This
experiment kills ``k`` random non-root nodes for growing ``k``, repairs, and
compares ``slots(repair)`` against ``slots(rebuild)``; a sustained-churn run
through the :class:`~repro.dynamics.simulator.DynamicSimulator` with a
seeded :class:`~repro.dynamics.churn.ChurnProcess` (failures *and*
arrivals) accumulates the same accounting across epochs.
"""

from __future__ import annotations

import numpy as np

from ..core import InitialTreeBuilder, TreeRepairer
from ..dynamics import ChurnProcess, DynamicScenario, DynamicSimulator
from .config import ExperimentConfig
from .runner import ExperimentResult, average_rows, make_deployment, run_sweep

__all__ = ["run", "DAMAGE_SIZES", "CHURN_EPOCHS"]

#: Failure-set sizes swept (capped below at n // 3 per trial).
DAMAGE_SIZES = (1, 2, 4, 8)
#: Epochs of the sustained-churn run.
CHURN_EPOCHS = 6


def _trial(args: tuple[ExperimentConfig, int, int]) -> tuple[list[dict], dict]:
    """One (n, seed) trial: single-shot rows per damage size + a churn run."""
    config, n, seed = args
    params = config.params
    nodes = make_deployment(config, n, seed)
    rng = np.random.default_rng(12_000 + seed)
    builder = InitialTreeBuilder(params, config.constants)
    outcome = builder.build(nodes, rng)
    repairer = TreeRepairer(params, config.constants)

    rows: list[dict] = []
    victims_pool = [node_id for node_id in outcome.tree.nodes if node_id != outcome.tree.root_id]
    for k in DAMAGE_SIZES:
        if k > max(1, n // 3):
            continue
        failed = [int(v) for v in rng.choice(victims_pool, size=k, replace=False)]
        repair = repairer.repair(outcome.tree, outcome.power, failed, rng)
        assert repair.tree.is_strongly_connected()
        rows.append(
            {
                "n": n,
                "seed": seed,
                "k": k,
                "reattached": len(repair.reattached),
                "repair_slots": repair.slots_used,
                "rebuild_slots": outcome.slots_used,
                "repair_over_rebuild": round(
                    repair.slots_used / max(outcome.slots_used, 1), 3
                ),
            }
        )

    churn = ChurnProcess(failure_prob=0.06, arrival_rate=0.5, seed=300 + seed)
    scenario = DynamicScenario(churn=churn, epochs=CHURN_EPOCHS)
    dynamic = DynamicSimulator(
        list(nodes), params, scenario, config.constants, seed=13_000 + seed
    ).run()
    sustained = {
        "n": n,
        "seed": seed,
        "epochs": CHURN_EPOCHS,
        "total_repair_slots": dynamic.total_repair_slots,
        "initial_slots": dynamic.initial_slots,
        "always_connected": all(r.strongly_connected for r in dynamic.records),
        "final_n": dynamic.records[-1].n_nodes if dynamic.records else n,
    }
    return rows, sustained


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Measure repair slot cost against damage size and sustained churn."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="E12",
        title="Churn: incremental repair cost tracks the damage, not the network (repair < rebuild)",
    )
    outcomes = run_sweep(_trial, config)
    result.rows = [row for rows, _ in outcomes for row in rows]
    sustained = [entry for _, entry in outcomes]

    by_k = average_rows(result.rows, "k", ["repair_slots", "repair_over_rebuild"])
    result.summary = {
        "mean_repair_slots_by_k": {
            entry["k"]: round(entry["repair_slots"], 1) for entry in by_k
        },
        "all_repairs_cheaper_than_rebuild": all(
            row["repair_slots"] < row["rebuild_slots"] for row in result.rows
        ),
        "sustained_always_connected": all(entry["always_connected"] for entry in sustained),
        "mean_sustained_repair_slots_per_epoch": round(
            float(
                np.mean([entry["total_repair_slots"] / entry["epochs"] for entry in sustained])
            ),
            1,
        ),
    }
    return result
