"""Typed ndarray aliases shared by the public APIs of ``state/`` and ``sinr/``.

``np.ndarray`` in a signature says nothing about what the hot-path contracts
actually promise — dtype and (by convention) shape.  These aliases carry the
dtype in the type and document the shape conventions once, so a signature
like ``def decode(...) -> tuple[IntpArray, FloatArray, BoolArray]`` is
self-describing and mypy-checkable.

Shape conventions (by alias, as used across the kernels):

* ``FloatArray`` — float64 data: coordinates ``(n, 2)``, matrices ``(n, n)``
  or ``(ntx, nrx)``, per-listener vectors ``(nrx,)``, trial stacks
  ``(T, ntx, nrx)``.
* ``IntpArray`` — ``np.intp`` index vectors (slot indices, argmax results);
  the dtype numpy's take/argmax kernels require.
* ``IdArray``  — ``int64`` node-id vectors; the dtype the SplitMix64 fade
  hashes consume.
* ``BoolArray`` — boolean masks (decode success, colocation, membership).
* ``DecodeTriple`` — the ``(best, sinr, ok)`` result of every decode kernel:
  per listener, the strongest transmitter's row index, its SINR, and whether
  it clears ``beta``.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "BoolArray",
    "DecodeTriple",
    "FloatArray",
    "IdArray",
    "IntpArray",
]

FloatArray = NDArray[np.float64]
IntpArray = NDArray[np.intp]
IdArray = NDArray[np.int64]
BoolArray = NDArray[np.bool_]

#: ``(best, sinr, ok)`` — the result triple of every decode kernel.
DecodeTriple = tuple[IntpArray, FloatArray, BoolArray]
