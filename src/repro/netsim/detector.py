"""Heartbeat-based failure detection.

Every alive node emits an out-of-band heartbeat each ``interval`` slots
carrying its protocol status; the detector suspects a node after
``miss_threshold`` consecutive missed heartbeats and un-suspects it on the
next one that arrives.  Heartbeats ride the control plane: they share the
transport's loss and partitions (a partitioned node looks dead, which is the
point of a failure detector) but consume no data-plane channel slots, so a
zero-fault run costs exactly the lockstep slot count.

The detector's *view* - who is alive, who is done - is what the round driver
and the netsim ``Init`` builder act on, replacing the lockstep simulator's
god's-eye reads of agent state.  Under zero faults the view coincides with
ground truth at every round boundary; under faults it is exactly as stale or
wrong as the heartbeats let it be.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError, NodeCrashedError
from ..obs.runtime import OBS

__all__ = ["HeartbeatDetector"]


class HeartbeatDetector:
    """Tracks per-node liveness and last-reported protocol status.

    Args:
        node_ids: the monitored nodes.
        interval: slots between expected heartbeats.
        miss_threshold: consecutive misses before a node is suspected.
    """

    __slots__ = ("_done", "_interval", "_misses", "_suspected", "_threshold", "node_ids")

    def __init__(
        self,
        node_ids: list[int],
        *,
        interval: int = 1,
        miss_threshold: int = 3,
    ) -> None:
        if interval < 1:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        if miss_threshold < 1:
            raise ConfigurationError(
                f"miss_threshold must be positive, got {miss_threshold}"
            )
        self.node_ids = list(node_ids)
        self._interval = interval
        self._threshold = miss_threshold
        self._misses: dict[int, int] = {node_id: 0 for node_id in self.node_ids}
        self._suspected: set[int] = set()
        #: last status each node reported (protocol "done" flag).
        self._done: dict[int, bool] = {node_id: False for node_id in self.node_ids}

    @property
    def interval(self) -> int:
        return self._interval

    def expects_heartbeat(self, slot: int) -> bool:
        """Whether ``slot`` is a heartbeat slot (all nodes share the phase)."""
        return slot % self._interval == 0

    def observe_heartbeat(self, node_id: int, slot: int, *, done: bool) -> None:
        """Record an arrived heartbeat: resets misses, refreshes status."""
        self._misses[node_id] = 0
        self._suspected.discard(node_id)
        self._done[node_id] = done
        if OBS.enabled:
            OBS.registry.inc("netsim.heartbeats")

    def observe_miss(self, node_id: int, slot: int) -> None:
        """Record a missed heartbeat; may push the node into the suspects."""
        misses = self._misses[node_id] + 1
        self._misses[node_id] = misses
        if OBS.enabled:
            OBS.registry.inc("netsim.heartbeat_misses")
        if misses >= self._threshold:
            if OBS.enabled and node_id not in self._suspected:
                OBS.registry.inc("netsim.suspicions")
            self._suspected.add(node_id)

    def suspected_ids(self) -> frozenset[int]:
        """Nodes currently suspected crashed."""
        return frozenset(self._suspected)

    def alive_view(self) -> list[int]:
        """Nodes currently believed alive, in monitor order."""
        return [node_id for node_id in self.node_ids if node_id not in self._suspected]

    def active_view(self) -> int:
        """Number of alive-believed nodes whose last status was not done."""
        return sum(
            1
            for node_id in self.node_ids
            if node_id not in self._suspected and not self._done[node_id]
        )

    def require_alive(self, node_id: int) -> None:
        """Raise :class:`NodeCrashedError` if ``node_id`` is suspected down."""
        if node_id in self._suspected:
            raise NodeCrashedError(
                f"node {node_id} is suspected crashed "
                f"(missed >= {self._threshold} heartbeats)"
            )
