"""Leader election and root failover over the faulty transport.

When the :class:`~repro.netsim.detector.HeartbeatDetector` suspects the tree
root, the survivors must agree on a replacement before aggregation can
resume.  :class:`BullyElection` is a deterministic bully-style protocol:
every node owns a *seeded priority* - a counter hash of ``(seed, node id)``
with the id as tie-break, so the ranking is a pure function of the
configuration and identical on every node without any communication -
and candidates campaign in priority order.  A campaign posts a claim to every
believed-alive peer through a :class:`~repro.netsim.delivery.ReliableOutbox`
(ack/retry/backoff), with every claim, ack and retry drawn through the same
:class:`~repro.netsim.transport.Transport` the data plane uses, so dropped
claims are retried, crashed candidates fall through to the next rank, and the
whole history lands in the run's :class:`~repro.netsim.faults.FaultTrace`
digest.  A candidate wins on an ack quorum; every wait is bounded by the
retry policy's final deadline (RL010: no unbounded loops), so the election
*always* terminates - if no campaign reaches quorum inside its budget the
highest-priority live candidate is seated with ``converged=False``.

:func:`run_root_failover` is the recovery orchestration the experiments and
the examples drive: elect a leader among the survivors, then re-root the tree
through :meth:`~repro.core.repair.TreeRepairer.integrate` with the elected
node as ``preferred_root_id`` - the completion patch (re-attaching subtrees
the dead root orphaned) runs over the same loss environment with its fault
counters offset past the election, exactly like ``Init``'s own completion
patches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..core.repair import RepairResult, TreeRepairer
from ..dynamics.gain import _hash_u64, _uniform_open
from ..exceptions import ConfigurationError, NodeCrashedError
from ..obs.runtime import OBS
from ..obs.spans import span
from ..sinr import ExplicitPower, SINRParameters
from .delivery import ReliableOutbox, RetryPolicy
from .faults import FaultPlan
from .transport import FaultyTransport, PerfectTransport, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bitree import BiTree

__all__ = [
    "BullyElection",
    "ElectionResult",
    "FailoverResult",
    "election_priority",
    "run_root_failover",
]

#: Domain-separation tag of the priority stream ("ELEC"), disjoint from the
#: drop/delay/crash/heartbeat streams in :mod:`repro.netsim.faults`.
_ELECTION_STREAM = 0x454C4543


def election_priority(seed: int, node_id: int) -> tuple[float, int]:
    """Seeded election priority of one node: ``(hash draw, id)``, max wins.

    A pure function of ``(seed, node_id)`` - every node computes the same
    total order with zero messages, and the id tie-break makes it strict.
    """
    draw = _uniform_open(_hash_u64(_ELECTION_STREAM, seed, node_id))
    return (float(draw), int(node_id))


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of one leader election.

    Attributes:
        leader_id: the elected node.
        rounds_used: candidate campaigns executed (1 = the top-priority live
            node won immediately).
        slots_used: total slots the campaigns occupied.
        messages: claim + ack transmissions attempted, retries included.
        retries: claim retransmissions across all campaigns.
        acks: acknowledgments the winning campaign collected.
        converged: whether the leader reached its ack quorum (``False`` only
            when every campaign's budget expired and the deterministic
            fallback seated the highest-priority live candidate).
        skipped_crashed: candidates skipped because they were down when
            their campaign would have started.
    """

    leader_id: int
    rounds_used: int
    slots_used: int
    messages: int
    retries: int
    acks: int
    converged: bool
    skipped_crashed: int


class BullyElection:
    """Deterministic bully-style election over a (possibly faulty) transport.

    Args:
        node_ids: the participants (typically the detector's alive view with
            the suspected root excluded).
        seed: stream seed of the priority hashes.
        transport: delivery policy; ``None`` means a perfect transport (the
            top-priority node then wins in one two-slot round).
        policy: claim retry budget and pacing per campaign.
        quorum: fraction of a campaign's live peers that must ack before the
            candidate wins (0.5 = majority of the believed-alive peers).
    """

    __slots__ = ("node_ids", "policy", "quorum", "seed", "transport")

    def __init__(
        self,
        node_ids: Sequence[int],
        *,
        seed: int = 0,
        transport: Transport | None = None,
        policy: RetryPolicy | None = None,
        quorum: float = 0.5,
    ) -> None:
        self.node_ids = sorted(int(i) for i in node_ids)
        if not self.node_ids:
            raise ConfigurationError("cannot elect a leader among zero nodes")
        if not 0.0 < quorum <= 1.0:
            raise ConfigurationError(f"quorum must be in (0, 1], got {quorum}")
        self.seed = seed
        self.transport = transport if transport is not None else PerfectTransport()
        self.policy = policy if policy is not None else RetryPolicy()
        self.quorum = quorum

    def ranking(self) -> list[int]:
        """All participants, highest priority first."""
        return sorted(
            self.node_ids,
            key=lambda nid: election_priority(self.seed, nid),
            reverse=True,
        )

    def elect(self, start_slot: int = 0) -> ElectionResult:
        """Run campaigns in priority order until a candidate reaches quorum."""
        if OBS.enabled:
            OBS.registry.inc("netsim.elections")
        transport = self.transport
        # Per-campaign slot budget: the final retry's deadline plus slack for
        # the last ack's round trip.  Every loop below is bounded by it.
        budget = self.policy.deadline_after(0, self.policy.max_attempts) + 16

        slot = start_slot
        rounds = messages = retries = skipped = 0
        leader: int | None = None
        winner_acks = 0
        converged = False
        with span("netsim.election", participants=len(self.node_ids)):
            for candidate in self.ranking():
                if transport.is_crashed(candidate, slot):
                    skipped += 1
                    continue
                rounds += 1
                if OBS.enabled:
                    OBS.registry.inc("netsim.election_rounds")
                peers = [
                    nid
                    for nid in self.node_ids
                    if nid != candidate and not transport.is_crashed(nid, slot)
                ]
                if not peers:
                    # Nobody left to object: the candidate seats itself.
                    leader, winner_acks, converged = candidate, 0, True
                    slot += 1
                    break
                needed = math.ceil(self.quorum * len(peers))
                acked, steps, sent, retried = self._campaign(
                    candidate, peers, slot, budget, needed
                )
                messages += sent
                retries += retried
                slot += steps
                if len(acked) >= needed:
                    leader, winner_acks, converged = candidate, len(acked), True
                    break
        if leader is None:
            # Deterministic fallback: no campaign reached quorum inside its
            # budget, so seat the best-ranked candidate still alive.
            live = [
                nid for nid in self.ranking() if not transport.is_crashed(nid, slot)
            ]
            leader = live[0] if live else self.ranking()[0]
        if OBS.enabled and converged:
            OBS.registry.inc("netsim.elections_won")
        return ElectionResult(
            leader_id=leader,
            rounds_used=rounds,
            slots_used=slot - start_slot,
            messages=messages,
            retries=retries,
            acks=winner_acks,
            converged=converged,
            skipped_crashed=skipped,
        )

    # -- internals ----------------------------------------------------------

    def _campaign(
        self,
        candidate: int,
        peers: list[int],
        round_start: int,
        budget: int,
        needed: int,
    ) -> tuple[set[int], int, int, int]:
        """One candidate's claim round; returns ``(acked, slots, msgs, retries)``.

        The campaign is a message-level replay: claims and acks are discrete
        transmissions whose fates come from :meth:`Transport.admit` draws at
        their actual slots, so the whole exchange is a pure function of the
        fault plan and lands in its trace.  ``inflight`` maps an arrival slot
        to the events maturing there (a delivered claim schedules the peer's
        ack one slot later; a delayed ack matures at its delivery slot).
        """
        transport = self.transport
        outbox = ReliableOutbox(self.policy)
        inflight: dict[int, list[tuple[str, int]]] = {}
        acked: set[int] = set()
        messages = 0
        for peer in peers:
            outbox.post(peer, ("claim", candidate), peer, round_start)
        messages += self._transmit_claims(candidate, peers, round_start, inflight)
        steps = 1
        # Bounded by the campaign budget (RL010): the retry policy's final
        # deadline plus the ack round-trip slack.
        for step in range(1, budget):
            if len(acked) >= needed:
                break
            current = round_start + step
            steps = step + 1
            for kind, peer in inflight.pop(current, ()):
                if kind == "send-ack":
                    if transport.is_crashed(peer, current):
                        continue
                    messages += 1
                    delivered, delay = transport.admit(
                        current,
                        np.array([peer], dtype=np.int64),
                        np.array([candidate], dtype=np.int64),
                    )
                    if delivered[0]:
                        lag = int(delay[0])
                        if lag == 0:
                            acked.add(peer)
                            outbox.ack(peer)
                        else:
                            inflight.setdefault(current + lag, []).append(
                                ("got-ack", peer)
                            )
                else:  # "got-ack": a delayed ack matured.
                    acked.add(peer)
                    outbox.ack(peer)
            if len(acked) >= needed:
                break
            due = outbox.due(current, strict=False)
            if due:
                targets = [send.dst_id for send in due]
                messages += self._transmit_claims(candidate, targets, current, inflight)
            if not len(outbox) and not inflight:
                # Every peer acked or exhausted its budget and nothing is in
                # the air: the tally can no longer change.
                break
        return acked, steps, messages, outbox.retries

    def _transmit_claims(
        self,
        candidate: int,
        peers: Sequence[int],
        slot: int,
        inflight: dict[int, list[tuple[str, int]]],
    ) -> int:
        """Send one claim to each peer; schedule acks for the deliveries."""
        dst = np.asarray(peers, dtype=np.int64)
        src = np.full(len(dst), candidate, dtype=np.int64)
        delivered, delay = self.transport.admit(slot, src, dst)
        for peer, ok, lag in zip(peers, delivered, delay):
            arrival = slot + int(lag)
            if ok and not self.transport.is_crashed(int(peer), arrival):
                inflight.setdefault(arrival + 1, []).append(("send-ack", int(peer)))
        return len(peers)


@dataclass(frozen=True)
class FailoverResult:
    """Outcome of a full root-failover: election + re-rooted repair.

    Attributes:
        election: the leader-election outcome.
        repair: the repair/splice outcome (re-rooted at the leader).
        tree: the repaired tree, rooted at the elected node.
        power: per-link powers of the repaired tree.
        slots_used: election slots plus the completion patch's slots.
        new_root_id: the elected root (== ``election.leader_id``).
    """

    election: ElectionResult
    repair: RepairResult
    tree: "BiTree"
    power: ExplicitPower
    slots_used: int
    new_root_id: int


def run_root_failover(
    tree: "BiTree",
    power: ExplicitPower,
    *,
    params: SINRParameters,
    constants: AlgorithmConstants = DEFAULT_CONSTANTS,
    plan: FaultPlan | None = None,
    crashed_ids: Sequence[int] = (),
    rng: np.random.Generator,
    seed: int | None = None,
    policy: RetryPolicy | None = None,
    quorum: float = 0.5,
    start_slot: int = 0,
    max_sweeps: int = 20,
) -> FailoverResult:
    """Survive a root crash: elect a new root, re-root and repair the tree.

    The election runs among the survivors over the plan's loss environment
    (crash windows consulted at the election's actual slots); the elected
    leader is passed to :meth:`~repro.core.repair.TreeRepairer.integrate` as
    ``preferred_root_id``, and any completion patch (re-attaching the dead
    root's orphaned children) executes over the same loss environment with
    crash windows stripped and fault counters offset past the election -
    mirroring ``Init``'s own completion semantics.

    Args:
        tree: the tree whose root (and possibly other nodes) died.
        power: recorded per-link powers of ``tree``.
        params: physical-model parameters.
        constants: protocol constants forwarded to the patch ``Init``.
        plan: the fault environment (``None`` = perfect transport).
        crashed_ids: nodes known/suspected down (must include the dead root).
        rng: randomness source for the patch ``Init`` re-run.
        seed: priority-stream seed (defaults to ``plan.seed`` or 0).
        policy: claim retry policy of the election.
        quorum: ack quorum fraction of the election.
        start_slot: slot at which recovery begins; fault counters continue
            from here.
        max_sweeps: sweep budget of the patch ``Init``.

    Raises:
        NodeCrashedError: if no survivors remain to elect from.
    """
    crashed = frozenset(int(i) for i in crashed_ids)
    survivors = [nid for nid in sorted(tree.nodes) if nid not in crashed]
    if not survivors:
        raise NodeCrashedError("every node is down; no survivors to elect from")
    if plan is None or plan.faultless:
        transport: Transport = PerfectTransport()
    else:
        transport = FaultyTransport(plan, slot_offset=start_slot)
    election = BullyElection(
        survivors,
        seed=plan.seed if seed is None and plan is not None else (seed or 0),
        transport=transport,
        policy=policy,
        quorum=quorum,
    ).elect()

    # Lazy import: the patch builder lives one layer up in this package.
    from .init_builder import NetInitBuilder

    patch_plan = None if plan is None else plan.without_crashes()
    repairer = TreeRepairer(
        params,
        constants,
        patch_builder=NetInitBuilder(
            params,
            constants,
            max_sweeps,
            plan=None if patch_plan is None or patch_plan.faultless else patch_plan,
            delivery="reliable",
            slot_offset=start_slot + election.slots_used,
        ),
    )
    repair = repairer.integrate(
        tree,
        power,
        failed_ids=sorted(crashed & set(tree.nodes)),
        rng=rng,
        preferred_root_id=election.leader_id,
    )
    if OBS.enabled:
        OBS.registry.inc("netsim.reroot_splices")
    return FailoverResult(
        election=election,
        repair=repair,
        tree=repair.tree,
        power=repair.power,
        slots_used=election.slots_used + repair.slots_used,
        new_root_id=election.leader_id,
    )
