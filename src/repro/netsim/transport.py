"""Transport layer: who actually receives a decoded message, and when.

The SINR channel decides what a radio *could* decode in a slot; the transport
decides what the protocol stack above it actually *delivers*.  A
:class:`PerfectTransport` delivers every decoded message in its send slot -
composing it with the netsim runtime reproduces the lockstep simulator trace
bit for bit.  A :class:`FaultyTransport` consults a
:class:`~repro.netsim.faults.FaultPlan` per message and records what it did
to a :class:`~repro.netsim.faults.FaultTrace`.

The ``slot_offset`` lets a follow-up run (e.g. the tree-completion patch
after crashes) continue the same fault streams instead of replaying the
drops of slot 0: the hash is keyed on ``slot + offset``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._types import BoolArray, IntpArray
from ..obs.runtime import OBS
from .faults import FaultPlan, FaultTrace

__all__ = ["FaultyTransport", "PerfectTransport", "Transport"]


class Transport(ABC):
    """Delivery policy for decoded messages plus node liveness."""

    __slots__ = ()

    @abstractmethod
    def admit(
        self, slot: int, src_ids: np.ndarray, dst_ids: np.ndarray
    ) -> tuple[BoolArray, IntpArray]:
        """Fate of aligned ``src -> dst`` deliveries decoded at ``slot``.

        Returns ``(delivered, delay)``: a boolean mask of messages that
        survive the transport and their extra delivery delay in slots
        (0 = the send slot itself).
        """

    @abstractmethod
    def is_crashed(self, node_id: int, slot: int) -> bool:
        """Whether ``node_id`` is down at ``slot``."""

    @abstractmethod
    def heartbeat_delivered(self, node_id: int, slot: int) -> bool:
        """Whether ``node_id``'s out-of-band heartbeat at ``slot`` arrives."""


class PerfectTransport(Transport):
    """Everything is delivered immediately; nobody crashes."""

    __slots__ = ()

    def admit(
        self, slot: int, src_ids: np.ndarray, dst_ids: np.ndarray
    ) -> tuple[BoolArray, IntpArray]:
        count = len(np.asarray(dst_ids))
        return np.ones(count, dtype=bool), np.zeros(count, dtype=np.intp)

    def is_crashed(self, node_id: int, slot: int) -> bool:
        return False

    def heartbeat_delivered(self, node_id: int, slot: int) -> bool:
        return True


class FaultyTransport(Transport):
    """Applies a :class:`FaultPlan` to every delivery and liveness query.

    Args:
        plan: the fault configuration.
        trace: recorder for injected faults (a fresh one if omitted).
        slot_offset: added to every slot before hashing, so chained runs
            (main run, then a completion patch) draw from fresh counters.
    """

    __slots__ = ("plan", "slot_offset", "trace")

    def __init__(
        self,
        plan: FaultPlan,
        trace: FaultTrace | None = None,
        *,
        slot_offset: int = 0,
    ) -> None:
        self.plan = plan
        self.trace = trace if trace is not None else FaultTrace()
        self.slot_offset = slot_offset

    def admit(
        self, slot: int, src_ids: np.ndarray, dst_ids: np.ndarray
    ) -> tuple[BoolArray, IntpArray]:
        src = np.asarray(src_ids, dtype=np.int64)
        dst = np.asarray(dst_ids, dtype=np.int64)
        hashed_slot = slot + self.slot_offset
        delivered = np.ones(len(dst), dtype=bool)
        delay = np.zeros(len(dst), dtype=np.intp)
        # Group by sender: the plan's draws are vectorized over receivers of
        # one sender's message, and the hash keys make the grouping
        # immaterial to the outcome.
        for src_id in np.unique(src):
            mask = src == src_id
            targets = dst[mask]
            drops = self.plan.dropped(int(src_id), targets, hashed_slot)
            delays = self.plan.delays(int(src_id), targets, hashed_slot)
            delivered[mask] = ~drops
            delay[mask] = np.where(drops, 0, delays)
            for dst_id, was_dropped, d in zip(targets, drops, delays):
                if was_dropped:
                    self.trace.record_drop(slot, int(src_id), int(dst_id))
                elif d:
                    self.trace.record_delay(slot, int(src_id), int(dst_id), int(d))
        if OBS.enabled:
            registry = OBS.registry
            drop_count = len(dst) - int(delivered.sum())
            if drop_count:
                registry.inc("netsim.dropped", drop_count)
            delay_count = int((delay > 0).sum())
            if delay_count:
                registry.inc("netsim.delayed", delay_count)
        return delivered, delay

    def is_crashed(self, node_id: int, slot: int) -> bool:
        return self.plan.crashes.is_crashed(node_id, slot + self.slot_offset)

    def heartbeat_delivered(self, node_id: int, slot: int) -> bool:
        hashed_slot = slot + self.slot_offset
        if self.plan.heartbeat_dropped(node_id, hashed_slot):
            self.trace.record_heartbeat_loss(hashed_slot, node_id)
            return False
        return True
