"""``Distr-Cap`` over the faulty transport: phased selection that survives.

:class:`NetDistrCapBuilder` runs the exact phased selection of
:class:`~repro.core.distr_cap.DistrCapSelector` - same phase partition, same
slot-pair structure, same affectance arithmetic and the same RNG consumption
- but threads every phase through a :class:`~repro.netsim.transport
.Transport`:

* a candidate whose endpoint is **crashed** at a phase slot sits that slot
  out (it cannot transmit or measure), so crashes thin the competition
  mid-phase instead of wedging it;
* each phase's winners **announce** their membership in ``T'`` to a
  coordinator node.  The first announcement piggybacks on the phase's dual
  slot; a dropped announcement is retried in dedicated extra slots under the
  :class:`~repro.netsim.delivery.RetryPolicy` budget, and a winner whose
  every announcement is lost falls out of ``T'`` (its endpoints stay free
  for later phases) - reported, never silent.

Under a faultless plan no candidate is ever filtered, every announcement
lands on the first (piggybacked) attempt, and the selection loop consumes
the RNG stream identically - so the selected set, the slot count and the
phase count are **bit-identical** to the lockstep oracle (the parity tests
pin this), and the oracle stays authoritative for everything faults perturb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..core.distr_cap import DistrCapSelector
from ..core.power_solver import is_power_controllable
from ..exceptions import ConfigurationError
from ..links import Link, LinkSet
from ..obs.runtime import OBS
from ..obs.spans import span
from ..sinr import LinearPower, SINRParameters
from .delivery import RetryPolicy
from .faults import FaultPlan
from .transport import FaultyTransport, PerfectTransport, Transport

__all__ = ["NetDistrCapBuilder", "NetDistrCapResult"]


@dataclass(frozen=True)
class NetDistrCapResult:
    """Outcome of ``Distr-Cap`` over the message runtime.

    The first block mirrors :class:`~repro.core.distr_cap.DistrCapResult`
    (field-for-field identical on a faultless run); the second reports what
    the transport did to the selection.

    Attributes:
        selected: the selected link set ``T'``.
        slots_used: channel slots consumed (two per phase, plus any
            dedicated announcement-retry slots).
        phases: number of length-class phases executed.
        power_controllable: whether ``T'`` passed the feasibility test.
        crashed_candidates: candidate links that sat a phase slot out
            because an endpoint was down.
        announce_retries: announcement retransmissions across all phases.
        announce_timeouts: winners whose announcements were never
            acknowledged within the retry budget.
        dropped_winners: winners excluded from ``T'`` because *no*
            announcement attempt was delivered.
        degraded: whether faults perturbed the selection at all.
        fault_summary: transport counters (drops, delays, ...).
        fault_digest: fingerprint of the fault history (``None`` on a
            perfect transport).
    """

    selected: LinkSet
    slots_used: int
    phases: int
    power_controllable: bool
    crashed_candidates: int = 0
    announce_retries: int = 0
    announce_timeouts: int = 0
    dropped_winners: int = 0
    degraded: bool = False
    fault_summary: dict[str, int] = field(default_factory=dict)
    fault_digest: str | None = None


class NetDistrCapBuilder:
    """Runs the distributed capacity selection over a fault-injected stack.

    Args:
        params: physical-model parameters.
        constants: protocol constants (thresholds, selection probability).
        plan: fault configuration; ``None`` means a perfect transport.
        policy: announcement retry budget and pacing.
        slot_offset: added to every slot before fault hashing, so a run
            chained after ``Init`` (or an election) draws fresh counters.
        coordinator_id: node collecting membership announcements (defaults
            to the smallest endpoint id; a crashed coordinator is replaced
            by the smallest live endpoint for the affected phase).
    """

    __slots__ = ("_oracle", "constants", "coordinator_id", "params", "plan", "policy", "slot_offset")

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        slot_offset: int = 0,
        coordinator_id: int | None = None,
    ) -> None:
        if slot_offset < 0:
            raise ConfigurationError(f"slot_offset must be non-negative, got {slot_offset}")
        self.params = params
        self.constants = constants
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.slot_offset = slot_offset
        self.coordinator_id = coordinator_id
        # The oracle instance supplies the phase partition, the geometry
        # store and the per-slot affectance check, so the zero-fault path is
        # bit-identical to it by construction.
        self._oracle = DistrCapSelector(params, constants)

    def select(
        self,
        candidates: Sequence[Link] | LinkSet,
        rng: np.random.Generator,
        *,
        link_rounds: Mapping[tuple[int, int], int] | None = None,
    ) -> NetDistrCapResult:
        """Run the phased selection over the candidate set and the transport."""
        link_list = list(candidates)
        if not link_list:
            return NetDistrCapResult(LinkSet(), 0, 0, True)
        transport = self._make_transport()
        oracle = self._oracle
        linear = LinearPower.for_noise(self.params)
        state = oracle._geometry_state(link_list)
        phases = oracle._partition_into_phases(link_list, link_rounds)
        tau = self.constants.distr_cap_tau
        gamma = self.constants.duality_gamma
        probability = self.constants.selection_probability
        endpoint_ids = sorted(
            {link.sender.id for link in link_list} | {link.receiver.id for link in link_list}
        )
        default_coordinator = (
            self.coordinator_id if self.coordinator_id is not None else endpoint_ids[0]
        )

        selected: list[Link] = []
        used_nodes: set[int] = set()
        slots_used = 0
        crashed_candidates = 0
        announce_retries = 0
        announce_timeouts = 0
        dropped_winners = 0
        with span("netsim.distr_cap", candidates=len(link_list), phases=len(phases)):
            for _, phase_links in sorted(phases.items()):
                forward_slot = slots_used
                dual_slot = slots_used + 1
                slots_used += 2
                eligible = [
                    link
                    for link in phase_links
                    if link.sender.id not in used_nodes and link.receiver.id not in used_nodes
                ]
                # A candidate with a downed endpoint sits the phase out; it
                # consumes no randomness, matching the runtime's rule that
                # crashed agents are never polled.
                alive = [
                    link for link in eligible if not self._link_down(transport, link, forward_slot)
                ]
                crashed_candidates += len(eligible) - len(alive)
                if not alive:
                    continue
                survivors = oracle._phase_slot(
                    alive, selected, linear, rng, probability, tau / 4.0, state, forward=True
                )
                if not survivors:
                    continue
                # Mid-phase dropout: an endpoint that dies between the two
                # slots cannot transmit (or measure) the dual check.
                standing = [
                    link for link in survivors if not self._link_down(transport, link, dual_slot)
                ]
                crashed_candidates += len(survivors) - len(standing)
                if not standing:
                    continue
                winners = oracle._phase_slot(
                    standing, selected, linear, rng, 1.0, gamma * tau / 4.0, state, forward=False
                )
                if not winners:
                    continue
                coordinator = self._phase_coordinator(
                    transport, default_coordinator, endpoint_ids, dual_slot
                )
                admitted, extra_slots, retries, timeouts = self._announce(
                    transport, winners, coordinator, dual_slot
                )
                slots_used += extra_slots
                announce_retries += retries
                announce_timeouts += timeouts
                dropped_winners += len(winners) - len(admitted)
                for link in admitted:
                    if link.sender.id in used_nodes or link.receiver.id in used_nodes:
                        continue
                    selected.append(link)
                    used_nodes.add(link.sender.id)
                    used_nodes.add(link.receiver.id)

        if OBS.enabled:
            registry = OBS.registry
            if announce_retries:
                registry.inc("netsim.announce_retries", announce_retries)
            if announce_timeouts:
                registry.inc("netsim.announce_timeouts", announce_timeouts)
            if crashed_candidates:
                registry.inc("netsim.phase_dropouts", crashed_candidates)
        selected_set = LinkSet(selected)
        controllable = is_power_controllable(list(selected_set), self.params)
        trace = getattr(transport, "trace", None)
        return NetDistrCapResult(
            selected=selected_set,
            slots_used=slots_used,
            phases=len(phases),
            power_controllable=controllable,
            crashed_candidates=crashed_candidates,
            announce_retries=announce_retries,
            announce_timeouts=announce_timeouts,
            dropped_winners=dropped_winners,
            degraded=bool(
                crashed_candidates or dropped_winners or (trace is not None and trace.dropped)
            ),
            fault_summary=trace.summary() if trace is not None else {},
            fault_digest=trace.digest() if trace is not None else None,
        )

    # -- internals ----------------------------------------------------------

    def _make_transport(self) -> Transport:
        if self.plan is None or self.plan.faultless:
            return PerfectTransport()
        return FaultyTransport(self.plan, slot_offset=self.slot_offset)

    @staticmethod
    def _link_down(transport: Transport, link: Link, slot: int) -> bool:
        return transport.is_crashed(link.sender.id, slot) or transport.is_crashed(
            link.receiver.id, slot
        )

    @staticmethod
    def _phase_coordinator(
        transport: Transport, preferred: int, endpoint_ids: Sequence[int], slot: int
    ) -> int:
        """The phase's announcement collector, skipping crashed nodes."""
        if not transport.is_crashed(preferred, slot):
            return preferred
        for node_id in endpoint_ids:
            if not transport.is_crashed(node_id, slot):
                return node_id
        return preferred

    def _announce(
        self,
        transport: Transport,
        winners: Sequence[Link],
        coordinator: int,
        dual_slot: int,
    ) -> tuple[list[Link], int, int, int]:
        """Deliver the winners' membership announcements to the coordinator.

        Returns ``(admitted winners, extra slots, retries, timeouts)``.  The
        first attempt piggybacks on the phase's dual slot (zero extra cost);
        each later round occupies one dedicated slot shared by every still
        unacknowledged winner.  A winner is *admitted* once any announcement
        attempt is delivered; it keeps retrying until the coordinator's ack
        (drawn at the following slot) lands or the attempt budget runs out.
        """
        announced: set[tuple[int, int]] = set()
        acked: set[tuple[int, int]] = set()
        retries = 0
        extra_slots = 0
        # Bounded by the retry policy: round 0 is the piggybacked attempt,
        # later rounds are the dedicated retry slots.
        for attempt in range(self.policy.max_attempts):
            pending = [link for link in winners if link.endpoint_ids not in acked]
            if not pending:
                break
            if attempt > 0:
                extra_slots += 1
                retries += len(pending)
            slot = dual_slot + extra_slots
            src = np.array([link.sender.id for link in pending], dtype=np.int64)
            dst = np.full(len(pending), coordinator, dtype=np.int64)
            delivered, _ = transport.admit(slot, src, dst)
            landed = [link for link, ok in zip(pending, delivered) if ok]
            announced.update(link.endpoint_ids for link in landed)
            if landed:
                ack_src = np.full(len(landed), coordinator, dtype=np.int64)
                ack_dst = np.array([link.sender.id for link in landed], dtype=np.int64)
                ack_ok, _ = transport.admit(slot + 1, ack_src, ack_dst)
                acked.update(
                    link.endpoint_ids for link, ok in zip(landed, ack_ok) if ok
                )
        timeouts = sum(1 for link in winners if link.endpoint_ids not in acked)
        admitted = [link for link in winners if link.endpoint_ids in announced]
        return admitted, extra_slots, retries, timeouts
