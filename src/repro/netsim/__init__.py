"""Fault-injected message-passing runtime (``repro.netsim``).

The lockstep :class:`~repro.runtime.simulator.Simulator` assumes a perfect
stack: every decoded message is delivered in its slot and nodes never die.
This package runs the *same* protocol agents over an explicit transport that
can drop, delay, partition and crash - with every fault drawn from stateless
counter-hashed randomness, so a fault trace is bit-reproducible across runs,
scheduling orders and worker counts.  Composed with a perfect transport the
runtime reduces exactly to the lockstep batch engine, which therefore stays
the oracle for everything the faults perturb.

Layers (bottom up): :mod:`.faults` (seeded fault models), :mod:`.transport`
(delivery policy), :mod:`.detector` (heartbeat failure detection),
:mod:`.runtime` (the :class:`NetSimulator` engine), :mod:`.delivery`
(ack/retry/backoff reliable mode), :mod:`.driver` (quorum-or-timeout round
advancement), :mod:`.init_builder` (``Init`` over the lossy transport,
with crash damage repaired through :class:`~repro.core.repair.TreeRepairer`),
:mod:`.election` (bully-style leader election and root failover),
:mod:`.distr_cap_builder` (``Distr-Cap`` selection over the transport) and
:mod:`.aggregation` (convergecast/dissemination with per-hop retry budgets
and an explicit partial-result degradation contract).
"""

from .aggregation import (
    NetConvergecastResult,
    NetDisseminationResult,
    run_convergecast,
    run_dissemination,
)
from .delivery import (
    AckResponderAgent,
    OutstandingSend,
    ReliableOutbox,
    ReliableSenderAgent,
    RetryPolicy,
)
from .detector import HeartbeatDetector
from .distr_cap_builder import NetDistrCapBuilder, NetDistrCapResult
from .driver import RoundDriver
from .election import (
    BullyElection,
    ElectionResult,
    FailoverResult,
    election_priority,
    run_root_failover,
)
from .faults import (
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    FaultTrace,
    LatencyModel,
    Partition,
)
from .init_builder import DELIVERY_MODES, NetInitBuilder, NetInitResult
from .runtime import NetSimulator
from .transport import FaultyTransport, PerfectTransport, Transport

__all__ = [
    "AckResponderAgent",
    "BullyElection",
    "CrashSchedule",
    "CrashWindow",
    "DELIVERY_MODES",
    "ElectionResult",
    "FailoverResult",
    "FaultPlan",
    "FaultTrace",
    "FaultyTransport",
    "HeartbeatDetector",
    "LatencyModel",
    "NetConvergecastResult",
    "NetDisseminationResult",
    "NetDistrCapBuilder",
    "NetDistrCapResult",
    "NetInitBuilder",
    "NetInitResult",
    "NetSimulator",
    "OutstandingSend",
    "Partition",
    "PerfectTransport",
    "ReliableOutbox",
    "ReliableSenderAgent",
    "RetryPolicy",
    "RoundDriver",
    "Transport",
    "election_priority",
    "run_convergecast",
    "run_dissemination",
    "run_root_failover",
]
