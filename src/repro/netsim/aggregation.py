"""Aggregation and dissemination over the faulty transport.

:func:`run_convergecast` / :func:`run_dissemination` drive the paper's
bi-tree schedules (:mod:`repro.core.schedule`) over a :class:`~repro.netsim
.transport.Transport`.  The scheduled slots replay exactly like the lockstep
oracles :func:`~repro.analysis.latency.simulate_convergecast` and
:func:`~repro.analysis.latency.simulate_broadcast` - same physical resolve,
same slot indices, same combine order - and every delivery is then filtered
through the transport.  A hop the *transport* interfered with (a dropped
delivery, a crashed endpoint) is retried in dedicated extra slots under a
per-hop :class:`~repro.netsim.delivery.RetryPolicy` budget, serially and
contention-free, before the next scheduled slot fires - a parent transmits
its accumulated value at its own slot, so late child deliveries must land
first or be declared lost.

Degradation contract: a hop that exhausts its retry budget makes the child's
whole subtree *missing* - its value simply never reaches the root.  Missing
subtree roots are reported explicitly (``missing_subtrees``), the surviving
fraction is checked against a ``quorum``, and the run always terminates
(every loop is bounded by the schedule and the retry budget - RL010).
Nothing is ever silently dropped: ``contributing`` lists exactly whose
values the root's aggregate contains.

Zero-fault parity is pinned by the tests: with no faults the retry machinery
never engages, and slots, the root value (bitwise) and the failure counts
coincide with the lockstep replay.  Pure SINR failures are deliberately
*not* retried - the oracle does not retry them, and retrying would break
that equivalence; the transport's own interference is what the retry budget
buys back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..core.bitree import BiTree
from ..exceptions import ConfigurationError
from ..obs.runtime import OBS
from ..obs.spans import span
from ..sinr import Channel, PowerAssignment, SINRParameters, Transmission
from .delivery import RetryPolicy
from .faults import FaultPlan
from .transport import FaultyTransport, PerfectTransport, Transport

__all__ = [
    "NetConvergecastResult",
    "NetDisseminationResult",
    "run_convergecast",
    "run_dissemination",
]


@dataclass(frozen=True)
class NetConvergecastResult:
    """Convergecast outcome over the message runtime.

    Attributes:
        slots: total channel slots, retry slots included.
        scheduled_slots: schedule-replay slots (the lockstep latency).
        root_value: the aggregate the root ended up with.
        expected_value: the true aggregate over all nodes.
        correct: full fidelity - every value reached the root.
        contributing: ids whose values the root's aggregate contains.
        missing_subtrees: subtree roots whose aggregates were lost (their
            hop exhausted the retry budget, or the subtree hangs below one
            that did).
        retries: per-hop retransmissions across the run.
        failed_links: hops that never delivered (transport timeouts plus
            pure physical failures).
        degraded: whether anything was lost.
        quorum_met: whether ``len(contributing) / n`` reached the quorum.
        root_alive: whether the root was up when the run ended.
        fault_summary: transport counters.
        fault_digest: fault-history fingerprint (``None`` on a perfect
            transport).
    """

    slots: int
    scheduled_slots: int
    root_value: float
    expected_value: float
    correct: bool
    contributing: frozenset[int]
    missing_subtrees: tuple[int, ...]
    retries: int
    failed_links: int
    degraded: bool
    quorum_met: bool
    root_alive: bool
    fault_summary: dict[str, int] = field(default_factory=dict)
    fault_digest: str | None = None


@dataclass(frozen=True)
class NetDisseminationResult:
    """Broadcast outcome over the message runtime.

    Attributes:
        slots: total channel slots, retry slots included.
        scheduled_slots: schedule-replay slots (the lockstep latency).
        reached: nodes that received the root's message.
        total: nodes that should have received it.
        complete: whether every node was reached.
        missing: ids the flood never reached.
        retries: per-hop retransmissions across the run.
        degraded: whether anything was lost.
        quorum_met: whether ``reached / total`` reached the quorum.
        fault_summary: transport counters.
        fault_digest: fault-history fingerprint.
    """

    slots: int
    scheduled_slots: int
    reached: int
    total: int
    complete: bool
    missing: tuple[int, ...]
    retries: int
    degraded: bool
    quorum_met: bool
    fault_summary: dict[str, int] = field(default_factory=dict)
    fault_digest: str | None = None


def _make_transport(plan: FaultPlan | None, slot_offset: int) -> Transport:
    if slot_offset < 0:
        raise ConfigurationError(f"slot_offset must be non-negative, got {slot_offset}")
    if plan is None or plan.faultless:
        return PerfectTransport()
    return FaultyTransport(plan, slot_offset=slot_offset)


def _check_quorum(quorum: float) -> None:
    if not 0.0 < quorum <= 1.0:
        raise ConfigurationError(f"quorum must be in (0, 1], got {quorum}")


def run_convergecast(
    tree: BiTree,
    power: PowerAssignment,
    params: SINRParameters,
    *,
    plan: FaultPlan | None = None,
    policy: RetryPolicy | None = None,
    quorum: float = 1.0,
    slot_offset: int = 0,
    values: Mapping[int, float] | None = None,
    combine: Callable[[float, float], float] = lambda a, b: a + b,
) -> NetConvergecastResult:
    """Aggregate values up the tree over the transport, retrying lost hops.

    Args:
        tree: the bi-tree whose aggregation schedule is replayed.
        power: power assignment used by the tree links.
        params: physical-model parameters.
        plan: fault configuration (``None`` = perfect transport).
        policy: per-hop retry budget (``max_attempts`` transmissions total).
        quorum: fraction of nodes whose values must reach the root for
            ``quorum_met``.
        slot_offset: added to every slot before fault hashing (chain after
            an ``Init`` run or an election).
        values: initial value per node id (defaults to 1.0 each).
        combine: associative, commutative combination function.
    """
    _check_quorum(quorum)
    transport = _make_transport(plan, slot_offset)
    retry_policy = policy if policy is not None else RetryPolicy()
    initial = {node_id: 1.0 for node_id in tree.nodes}
    if values is not None:
        initial.update({int(k): float(v) for k, v in values.items()})
    accumulator = dict(initial)
    included: dict[int, set[int]] = {node_id: {node_id} for node_id in tree.nodes}
    channel = Channel(params)
    schedule = tree.aggregation_schedule
    lost_children: list[int] = []
    physical_failures = 0
    retries = 0
    sched_slots = 0
    total_slots = 0
    with span("netsim.convergecast", n=tree.size, links=len(tree.parent)):
        for slot in schedule.used_slots():
            sched_slots += 1
            group = schedule.links_in_slot(slot)
            # Snapshot values and provenance at slot start, as the oracle
            # does: a link's message carries its sender's pre-slot aggregate.
            payloads = {
                link.sender.id: (accumulator[link.sender.id], frozenset(included[link.sender.id]))
                for link in group
            }
            down = {
                link.sender.id: (
                    transport.is_crashed(link.sender.id, total_slots)
                    or transport.is_crashed(link.receiver.id, total_slots)
                )
                for link in group
            }
            transmissions = [
                Transmission(
                    sender=link.sender,
                    power=power.power(link),
                    message=(link.sender.id, payloads[link.sender.id][0]),
                )
                for link in group
                if not down[link.sender.id]
            ]
            listeners = [
                link.receiver for link in group if not down[link.sender.id]
            ]
            # The physical replay is slot-for-slot the lockstep oracle's:
            # same channel, same contention group, same slot index.
            receptions = channel.resolve(transmissions, listeners, slot=sched_slots - 1)
            pending: list = []
            for link in group:
                if down[link.sender.id]:
                    pending.append(link)
                    continue
                reception = receptions.get(link.receiver.id)
                if reception is None or reception.sender.id != link.sender.id:
                    # Pure SINR failure: the oracle does not retry these, and
                    # neither do we - parity over the zero-fault path.
                    physical_failures += 1
                    continue
                delivered, _ = transport.admit(
                    total_slots,
                    np.array([link.sender.id], dtype=np.int64),
                    np.array([link.receiver.id], dtype=np.int64),
                )
                if not delivered[0]:
                    pending.append(link)
                    continue
                _, value = reception.message
                accumulator[link.receiver.id] = combine(accumulator[link.receiver.id], value)
                included[link.receiver.id] |= payloads[link.sender.id][1]
            total_slots += 1
            # Late deliveries must land before the next scheduled slot: the
            # parent transmits its own aggregate at its own slot, so a child
            # arriving later would be silently lost.  Each pending hop gets
            # its own contention-free retry slots, bounded by the budget.
            for link in pending:
                recovered = False
                for _ in range(1, retry_policy.max_attempts):
                    retry_slot = total_slots
                    total_slots += 1
                    retries += 1
                    if OBS.enabled:
                        OBS.registry.inc("netsim.agg_retries")
                    if transport.is_crashed(link.sender.id, retry_slot) or transport.is_crashed(
                        link.receiver.id, retry_slot
                    ):
                        continue
                    payload_value, payload_ids = payloads[link.sender.id]
                    solo = channel.resolve(
                        [
                            Transmission(
                                sender=link.sender,
                                power=power.power(link),
                                message=(link.sender.id, payload_value),
                            )
                        ],
                        [link.receiver],
                        slot=retry_slot,
                    )
                    reception = solo.get(link.receiver.id)
                    if reception is None:
                        continue
                    delivered, _ = transport.admit(
                        retry_slot,
                        np.array([link.sender.id], dtype=np.int64),
                        np.array([link.receiver.id], dtype=np.int64),
                    )
                    if not delivered[0]:
                        continue
                    accumulator[link.receiver.id] = combine(
                        accumulator[link.receiver.id], payload_value
                    )
                    included[link.receiver.id] |= payload_ids
                    recovered = True
                    break
                if not recovered:
                    lost_children.append(link.sender.id)

    all_values = [initial[node_id] for node_id in tree.nodes]
    expected = all_values[0]
    for value in all_values[1:]:
        expected = combine(expected, value)
    root_value = accumulator[tree.root_id]
    contributing = frozenset(included[tree.root_id])
    missing = tuple(sorted(set(lost_children)))
    failed = physical_failures + len(missing)
    degraded = bool(missing)
    if OBS.enabled and degraded:
        OBS.registry.inc("netsim.degraded_aggregations")
    trace = getattr(transport, "trace", None)
    return NetConvergecastResult(
        slots=total_slots,
        scheduled_slots=sched_slots,
        root_value=root_value,
        expected_value=expected,
        correct=abs(root_value - expected) < 1e-9 and failed == 0,
        contributing=contributing,
        missing_subtrees=missing,
        retries=retries,
        failed_links=failed,
        degraded=degraded,
        quorum_met=len(contributing) >= quorum * len(tree.nodes),
        root_alive=not transport.is_crashed(tree.root_id, max(total_slots - 1, 0)),
        fault_summary=trace.summary() if trace is not None else {},
        fault_digest=trace.digest() if trace is not None else None,
    )


def run_dissemination(
    tree: BiTree,
    power: PowerAssignment,
    params: SINRParameters,
    *,
    plan: FaultPlan | None = None,
    policy: RetryPolicy | None = None,
    quorum: float = 1.0,
    slot_offset: int = 0,
    payload: object = "broadcast",
) -> NetDisseminationResult:
    """Flood a message down the tree over the transport, retrying lost hops."""
    _check_quorum(quorum)
    transport = _make_transport(plan, slot_offset)
    retry_policy = policy if policy is not None else RetryPolicy()
    channel = Channel(params)
    schedule = tree.dissemination_schedule
    informed: set[int] = {tree.root_id}
    retries = 0
    sched_slots = 0
    total_slots = 0
    with span("netsim.dissemination", n=tree.size, links=len(tree.parent)):
        for slot in schedule.used_slots():
            sched_slots += 1
            group = schedule.links_in_slot(slot)
            informed_at_start = frozenset(informed)
            senders = {}
            for link in group:
                if link.sender.id in informed_at_start:
                    senders.setdefault(link.sender.id, link)
            # A parent may serve several children in one slot, so the crash
            # filter is per link (endpoint pair), not per sender.
            down = {
                link.endpoint_ids: (
                    transport.is_crashed(link.sender.id, total_slots)
                    or transport.is_crashed(link.receiver.id, total_slots)
                )
                for link in group
            }
            transmissions = [
                Transmission(sender=link.sender, power=power.power(link), message=payload)
                for link in senders.values()
                if not transport.is_crashed(link.sender.id, total_slots)
            ]
            listeners = [link.receiver for link in group if not down[link.endpoint_ids]]
            receptions = channel.resolve(transmissions, listeners, slot=sched_slots - 1)
            pending: list = []
            for link in group:
                if link.sender.id not in informed_at_start:
                    continue
                if down[link.endpoint_ids]:
                    pending.append(link)
                    continue
                reception = receptions.get(link.receiver.id)
                if reception is None or reception.sender.id != link.sender.id:
                    continue  # pure SINR failure: not retried (oracle parity)
                delivered, _ = transport.admit(
                    total_slots,
                    np.array([link.sender.id], dtype=np.int64),
                    np.array([link.receiver.id], dtype=np.int64),
                )
                if not delivered[0]:
                    pending.append(link)
                    continue
                informed.add(link.receiver.id)
            total_slots += 1
            for link in pending:
                for _ in range(1, retry_policy.max_attempts):
                    retry_slot = total_slots
                    total_slots += 1
                    retries += 1
                    if OBS.enabled:
                        OBS.registry.inc("netsim.agg_retries")
                    if transport.is_crashed(link.sender.id, retry_slot) or transport.is_crashed(
                        link.receiver.id, retry_slot
                    ):
                        continue
                    solo = channel.resolve(
                        [
                            Transmission(
                                sender=link.sender, power=power.power(link), message=payload
                            )
                        ],
                        [link.receiver],
                        slot=retry_slot,
                    )
                    reception = solo.get(link.receiver.id)
                    if reception is None:
                        continue
                    delivered, _ = transport.admit(
                        retry_slot,
                        np.array([link.sender.id], dtype=np.int64),
                        np.array([link.receiver.id], dtype=np.int64),
                    )
                    if delivered[0]:
                        informed.add(link.receiver.id)
                        break

    missing = tuple(sorted(set(tree.nodes) - informed))
    degraded = bool(missing)
    if OBS.enabled and degraded:
        OBS.registry.inc("netsim.degraded_aggregations")
    trace = getattr(transport, "trace", None)
    return NetDisseminationResult(
        slots=total_slots,
        scheduled_slots=sched_slots,
        reached=len(informed),
        total=len(tree.nodes),
        complete=len(informed) == len(tree.nodes),
        missing=missing,
        retries=retries,
        degraded=degraded,
        quorum_met=len(informed) >= quorum * len(tree.nodes),
        fault_summary=trace.summary() if trace is not None else {},
        fault_digest=trace.digest() if trace is not None else None,
    )
