"""Round driver: advance on quorum-or-timeout instead of global lockstep.

The lockstep builders read agent state directly between slots ("is exactly
one node still active?") - a god's-eye view no real deployment has.  The
:class:`RoundDriver` replaces those reads with the failure detector's view:
a protocol phase runs until a *quorum* of the nodes the detector believes
alive report completion, or until the phase's slot budget (the paper's
``lambda_1 log n`` rounds are exactly such budgets) times out - whichever
comes first.  Every wait is therefore bounded by construction, which is the
invariant repro-lint's RL010 enforces across this package.
"""

from __future__ import annotations

import math
from typing import Callable

from ..exceptions import ConfigurationError
from ..obs.spans import span
from .runtime import NetSimulator

__all__ = ["RoundDriver"]


class RoundDriver:
    """Phase advancement on quorum-or-timeout over a :class:`NetSimulator`.

    Args:
        sim: the runtime to drive.
        quorum: fraction of detector-alive nodes that must report done for a
            phase to complete early (1.0 = all of them).
    """

    __slots__ = ("quorum", "sim")

    def __init__(self, sim: NetSimulator, *, quorum: float = 1.0) -> None:
        if not 0.0 < quorum <= 1.0:
            raise ConfigurationError(f"quorum must be in (0, 1], got {quorum}")
        self.sim = sim
        self.quorum = quorum

    # -- detector views ------------------------------------------------------

    def alive_count(self) -> int:
        """How many nodes the detector currently believes alive."""
        return len(self.sim.detector.alive_view())

    def remaining_active(self) -> int:
        """Alive-believed nodes whose last heartbeat said "not done"."""
        return self.sim.detector.active_view()

    def quorum_done(self) -> bool:
        """Whether a quorum of alive-believed nodes reported completion."""
        alive = self.alive_count()
        if alive == 0:
            return True
        done = alive - self.remaining_active()
        return done >= math.ceil(self.quorum * alive)

    # -- phase execution -----------------------------------------------------

    def run_phase(self, slots: int, label: str = "") -> int:
        """Run a fixed slot budget (the lockstep-compatible phase form)."""
        if slots < 0:
            raise ConfigurationError(f"slots must be non-negative, got {slots}")
        with span("netsim.phase", label=label, budget=slots):
            for _ in range(slots):
                self.sim.step(label)
        return slots

    def run_until_quorum(
        self,
        max_slots: int,
        label: str = "",
        *,
        predicate: Callable[["RoundDriver"], bool] | None = None,
        check_every: int = 1,
    ) -> tuple[int, bool]:
        """Step until quorum (or ``predicate``) holds or the budget times out.

        The predicate is evaluated every ``check_every`` slots from the
        detector's view only - never from direct agent state.  Returns
        ``(slots executed, completed before timeout)``.
        """
        if max_slots < 0:
            raise ConfigurationError(f"max_slots must be non-negative, got {max_slots}")
        if check_every < 1:
            raise ConfigurationError(f"check_every must be positive, got {check_every}")
        done = predicate(self) if predicate is not None else self.quorum_done()
        executed = 0
        with span("netsim.phase", label=label, budget=max_slots, mode="quorum"):
            # Bounded by construction: the loop runs at most max_slots steps.
            for _ in range(max_slots):
                if done:
                    break
                self.sim.step(label)
                executed += 1
                if executed % check_every == 0:
                    done = predicate(self) if predicate is not None else self.quorum_done()
        return executed, bool(done)
