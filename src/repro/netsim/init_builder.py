"""``Init`` over a lossy transport: build the bi-tree and survive the faults.

:class:`NetInitBuilder` runs the exact protocol of :class:`~repro.core
.init_tree.InitialTreeBuilder` - same agents, same labels, same sweep
structure - but over a :class:`~repro.netsim.runtime.NetSimulator`, with the
lockstep builder's god's-eye agent reads replaced by the failure detector's
view.  Under a faultless plan every seam collapses to the lockstep engine,
so the message trace and the resulting tree are bit-identical to the oracle
(the parity tests pin this).  Under faults, the outcome depends on the
delivery mode:

* ``"fire-and-forget"`` is the paper's semantics: the protocol's own
  redundancy absorbs message loss, but nothing repairs structural damage -
  crashes or non-convergence raise.
* ``"reliable"`` survives: whatever partial forest the faulty run leaves
  behind (extra active nodes, orphans whose parent crashed mid-run, subtrees
  cut loose) is completed through :meth:`~repro.core.repair.TreeRepairer
  .integrate`, whose patch ``Init`` re-run executes over the *same lossy
  transport* (crash windows stripped, hash counters offset past the main
  run) - so the repair machinery is exercised by emergent failures, not
  synthetic ones, and the extra slots are reported as the price of loss.

One non-paper hazard is handled explicitly: with message *latency*, a stale
acknowledgment can mature slots after it was sent and close a parent cycle
(the slot-synchronous protocol cannot produce one).  Cycles are detected and
cut deterministically before the splice; the cut nodes re-attach with the
other orphans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..core.bitree import BiTree
from ..core.init_tree import InitAgent, InitialTreeBuilder, InitialTreeResult, round_power
from ..core.quantities import num_rounds_for_delta
from ..core.repair import TreeRepairer
from ..exceptions import ConfigurationError, NodeCrashedError, ProtocolError
from ..geometry import Node, node_distance_matrix
from ..obs.spans import span
from ..runtime import ExecutionTrace, spawn_agent_rngs
from ..sinr import Channel, ExplicitPower, SINRParameters, UniformPower
from .detector import HeartbeatDetector
from .driver import RoundDriver
from .faults import FaultPlan
from .runtime import NetSimulator
from .transport import FaultyTransport, PerfectTransport, Transport

__all__ = ["DELIVERY_MODES", "NetInitBuilder", "NetInitResult"]

DELIVERY_MODES = ("fire-and-forget", "reliable")


@dataclass
class NetInitResult:
    """Outcome of running ``Init`` over the message-passing runtime.

    The first block of attributes mirrors :class:`~repro.core.init_tree
    .InitialTreeResult` (and is field-for-field identical to it on a
    faultless run); the second block reports what the transport did.

    Attributes:
        tree: the constructed bi-tree, spanning the nodes alive at the end.
        slots_used: total channel slots, completion patch included.
        rounds_used: protocol rounds executed by the main run.
        sweeps_used: round sweeps executed by the main run.
        delta: the distance ratio of the instance.
        power: per-link powers (patch links included).
        link_rounds: formation round of each main-run link still in the tree.
        trace: the main run's slot-by-slot execution trace.
        stored_degrees: per node, links stored during the main run.
        crashed: nodes down when the main run ended (absent from the tree).
        reattached: orphaned subtree roots the completion patch re-attached.
        completed_by_repair: whether a completion patch was needed at all.
        completion_slots: slots the completion patch consumed.
        send_budget: per-node transmissions actually attempted.
        fault_summary: transport counters (drops, delays, crashes, ...).
        fault_digest: order-normalized fingerprint of the fault history,
            ``None`` when the run used a perfect transport.
    """

    tree: BiTree
    slots_used: int
    rounds_used: int
    sweeps_used: int
    delta: float
    power: ExplicitPower
    link_rounds: dict[tuple[int, int], int]
    trace: ExecutionTrace
    stored_degrees: dict[int, int]
    crashed: frozenset[int] = frozenset()
    reattached: frozenset[int] = frozenset()
    completed_by_repair: bool = False
    completion_slots: int = 0
    send_budget: dict[int, int] = field(default_factory=dict)
    fault_summary: dict[str, int] = field(default_factory=dict)
    fault_digest: str | None = None


class NetInitBuilder:
    """Runs distributed ``Init`` over a fault-injected transport.

    Args:
        params: SINR model parameters.
        constants: protocol constants (probabilities, slot-pairs per round).
        max_sweeps: round-sweep budget of the main run (and of each patch).
        plan: the fault configuration; ``None`` means a perfect transport.
        delivery: ``"fire-and-forget"`` (paper semantics, raises on damage)
            or ``"reliable"`` (completes the tree through the repairer).
        miss_threshold: consecutive heartbeat misses before the detector
            suspects a node.
        slot_offset: added to every slot before fault hashing, so chained
            runs draw fresh fault counters (used by completion patches).
    """

    #: completion patches beyond this depth run over a perfect transport,
    #: bounding the recursion while keeping the first patch realistically
    #: lossy.
    _MAX_LOSSY_DEPTH = 1

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        max_sweeps: int = 20,
        *,
        plan: FaultPlan | None = None,
        delivery: str = "reliable",
        miss_threshold: int = 3,
        slot_offset: int = 0,
        _completion_depth: int = 0,
    ) -> None:
        if max_sweeps < 1:
            raise ConfigurationError("max_sweeps must be at least 1")
        if delivery not in DELIVERY_MODES:
            raise ConfigurationError(
                f"delivery must be one of {DELIVERY_MODES}, got {delivery!r}"
            )
        if slot_offset < 0:
            raise ConfigurationError(f"slot_offset must be non-negative, got {slot_offset}")
        self.params = params
        self.constants = constants
        self.max_sweeps = max_sweeps
        self.plan = plan
        self.delivery = delivery
        self.miss_threshold = miss_threshold
        self.slot_offset = slot_offset
        self._completion_depth = _completion_depth

    # -- construction --------------------------------------------------------

    def build(self, nodes: Sequence[Node], rng: np.random.Generator) -> NetInitResult:
        """Run ``Init`` on ``nodes`` over the configured transport.

        Raises:
            ProtocolError: if the run does not converge and the delivery mode
                offers no completion path.
            NodeCrashedError: if crashes leave nothing to span, or leave
                damage that ``"fire-and-forget"`` cannot repair.
        """
        node_list = list(nodes)
        if not node_list:
            raise ProtocolError("cannot build a tree on zero nodes")
        if len(node_list) == 1:
            only = node_list[0]
            return NetInitResult(
                tree=BiTree.from_parent_map([only], only.id, {}),
                slots_used=0,
                rounds_used=0,
                sweeps_used=0,
                delta=1.0,
                power=ExplicitPower({}),
                link_rounds={},
                trace=ExecutionTrace(),
                stored_degrees={only.id: 0},
                send_budget={only.id: 0},
            )

        distances = node_distance_matrix(node_list)
        np.fill_diagonal(distances, 0.0)
        delta = float(distances.max())
        rounds_per_sweep = num_rounds_for_delta(max(delta, 1.0))
        pairs_per_round = self.constants.slot_pairs_per_round(len(node_list))

        agent_rngs = spawn_agent_rngs(rng, len(node_list))
        agents = [
            InitAgent(
                node=node,
                rng=agent_rng,
                params=self.params,
                constants=self.constants,
                rounds_per_sweep=rounds_per_sweep,
                slot_pairs_per_round=pairs_per_round,
            )
            for node, agent_rng in zip(node_list, agent_rngs)
        ]
        detector = HeartbeatDetector(
            [node.id for node in node_list],
            interval=1,
            miss_threshold=self.miss_threshold,
        )
        # The plain Channel is upgraded to a CachedChannel by the inherited
        # Simulator init path: always for n <= MAX_CACHED_CHANNEL_NODES, and
        # at any n when ``params.store == "tiled"`` (the O(n) tiled geometry
        # store has no matrix to materialize, so batch index decoding stays
        # engaged for 50k+ node networks).
        sim = NetSimulator(
            agents,
            Channel(self.params),
            self._make_transport(),
            detector=detector,
            trace_level="columnar",
        )
        driver = RoundDriver(sim)

        rounds_used = 0
        sweeps_used = 0
        with span(
            "init.build",
            n=len(node_list),
            delivery=self.delivery,
            depth=self._completion_depth,
        ):
            for sweep in range(self.max_sweeps):
                sweeps_used = sweep + 1
                with span("init.sweep", sweep=sweep):
                    for round_index in range(1, rounds_per_sweep + 1):
                        # Same structure as the lockstep builder, but the
                        # early-out reads the detector's view, never agent
                        # state: the first sweep always runs in full, later
                        # sweeps stop as soon as at most one alive-believed
                        # node still reports "active".
                        if sweep > 0 and driver.remaining_active() <= 1:
                            break
                        rounds_used += 1
                        with span("init.round", sweep=sweep, round=round_index):
                            for _ in range(pairs_per_round):
                                sim.step(label=f"init:sweep{sweep}:round{round_index}:broadcast")
                                sim.step(label=f"init:sweep{sweep}:round{round_index}:ack")
                if driver.remaining_active() <= 1:
                    break

        crashed_now = sim.crashed_ids()
        parent_probe = {
            agent.node_id: agent.parent_id
            for agent in agents
            if agent.parent_id is not None
        }
        cycle_cuts = self._cycle_cuts(parent_probe)

        if self.delivery == "fire-and-forget":
            if crashed_now:
                raise NodeCrashedError(
                    f"{len(crashed_now)} node(s) crashed during Init; "
                    'fire-and-forget delivery cannot repair the tree - '
                    'use delivery="reliable"'
                )
            if cycle_cuts:
                raise ProtocolError(
                    "delayed acknowledgments formed a parent cycle; "
                    'use delivery="reliable" to have it cut and repaired'
                )
            if sum(1 for agent in agents if agent.active) > 1:
                raise ProtocolError(
                    f"Init did not converge to a single active node within "
                    f"{self.max_sweeps} sweeps"
                )
            return self._lockstep_result(node_list, agents, sim, delta, rounds_used, sweeps_used)

        # Reliable mode: anything short of a clean single-root run is
        # completed through the repairer.
        if not any(node.id not in crashed_now for node in node_list):
            raise NodeCrashedError("every node crashed during Init; nothing to span")
        active_alive = [
            agent.node_id
            for agent in agents
            if agent.active and agent.node_id not in crashed_now
        ]
        if not crashed_now and not cycle_cuts and len(active_alive) == 1:
            return self._lockstep_result(node_list, agents, sim, delta, rounds_used, sweeps_used)
        return self._complete_with_repair(
            node_list, agents, sim, delta, rounds_used, sweeps_used,
            crashed_now, cycle_cuts, rng,
        )

    # -- transports ----------------------------------------------------------

    def _make_transport(self) -> Transport:
        if self.plan is None or self.plan.faultless:
            return PerfectTransport()
        return FaultyTransport(self.plan, slot_offset=self.slot_offset)

    # -- result extraction ---------------------------------------------------

    def _lockstep_result(
        self,
        node_list: Sequence[Node],
        agents: Sequence[InitAgent],
        sim: NetSimulator,
        delta: float,
        rounds_used: int,
        sweeps_used: int,
    ) -> NetInitResult:
        """Clean convergence: reuse the lockstep extractor verbatim (parity)."""
        oracle: InitialTreeResult = InitialTreeBuilder(
            self.params, self.constants, self.max_sweeps
        )._extract_result(node_list, agents, sim, delta, rounds_used, sweeps_used)
        return NetInitResult(
            tree=oracle.tree,
            slots_used=oracle.slots_used,
            rounds_used=oracle.rounds_used,
            sweeps_used=oracle.sweeps_used,
            delta=oracle.delta,
            power=oracle.power,
            link_rounds=oracle.link_rounds,
            trace=oracle.trace,
            stored_degrees=oracle.stored_degrees,
            send_budget=dict(sim.send_budget),
            fault_summary=sim.fault_summary(),
            fault_digest=None if sim.fault_trace is None else sim.fault_trace.digest(),
        )

    def _complete_with_repair(
        self,
        node_list: Sequence[Node],
        agents: Sequence[InitAgent],
        sim: NetSimulator,
        delta: float,
        rounds_used: int,
        sweeps_used: int,
        crashed_now: frozenset[int],
        cycle_cuts: list[int],
        rng: np.random.Generator,
    ) -> NetInitResult:
        """Splice whatever the faulty run left into a spanning tree.

        The partial forest (crashed nodes included, so the repairer's failure
        path is driven by the emergent crashes) goes through
        :meth:`TreeRepairer.integrate`; the patch ``Init`` runs over the same
        loss environment minus the crash windows, with its fault counters
        offset past the main run.
        """
        parent: dict[int, int] = {}
        slots: dict[int, int] = {}
        power_map: dict[tuple[int, int], float] = {}
        for agent in agents:
            if agent.parent_id is None or agent.node_id in cycle_cuts:
                continue
            assert agent.parent_slot_pair is not None and agent.parent_round is not None
            parent[agent.node_id] = agent.parent_id
            slots[agent.node_id] = agent.parent_slot_pair
            power = round_power(agent.parent_round, self.params)
            power_map[(agent.node_id, agent.parent_id)] = power
            power_map[(agent.parent_id, agent.node_id)] = power

        # Root: the unique alive active node if there is one; otherwise the
        # smallest parentless id (preferring alive nodes).  Parentless nodes
        # always exist - the pointer graph is acyclic after the cuts.
        active_alive = [
            agent.node_id
            for agent in agents
            if agent.active and agent.node_id not in crashed_now
        ]
        if len(active_alive) == 1:
            root_id = active_alive[0]
        else:
            parentless = [node.id for node in node_list if node.id not in parent]
            alive_parentless = [nid for nid in parentless if nid not in crashed_now]
            root_id = min(alive_parentless) if alive_parentless else min(parentless)

        partial = BiTree.from_parent_map(node_list, root_id, parent, slots)
        fallback = UniformPower.for_max_length(self.params, max(delta, 1.0))
        repairer = TreeRepairer(
            self.params,
            self.constants,
            patch_builder=NetInitBuilder(
                self.params,
                self.constants,
                self.max_sweeps,
                plan=self._patch_plan(),
                delivery="reliable",
                miss_threshold=self.miss_threshold,
                slot_offset=self.slot_offset + sim.current_slot,
                _completion_depth=self._completion_depth + 1,
            ),
        )
        repair = repairer.integrate(
            partial,
            ExplicitPower(power_map, fallback=fallback),
            failed_ids=crashed_now,
            rng=rng,
        )

        link_rounds = {
            (agent.node_id, agent.parent_id): agent.parent_round
            for agent in agents
            if agent.parent_id is not None
            and agent.parent_round is not None
            and repair.tree.parent.get(agent.node_id) == agent.parent_id
        }
        return NetInitResult(
            tree=repair.tree,
            slots_used=sim.current_slot + repair.slots_used,
            rounds_used=rounds_used,
            sweeps_used=sweeps_used,
            delta=delta,
            power=repair.power,
            link_rounds=link_rounds,
            trace=sim.trace,
            stored_degrees={agent.node_id: agent.stored_degree() for agent in agents},
            crashed=crashed_now,
            reattached=repair.reattached,
            completed_by_repair=bool(repair.reattached) or repair.slots_used > 0,
            completion_slots=repair.slots_used,
            send_budget=dict(sim.send_budget),
            fault_summary=sim.fault_summary(),
            fault_digest=None if sim.fault_trace is None else sim.fault_trace.digest(),
        )

    def _patch_plan(self) -> FaultPlan | None:
        """Loss environment of the next completion patch: crash windows are
        stripped (those crashes already happened), and past the lossy depth
        bound the patch runs clean so the recursion provably terminates."""
        if self.plan is None or self._completion_depth >= self._MAX_LOSSY_DEPTH:
            return None
        return self.plan.without_crashes()

    @staticmethod
    def _cycle_cuts(parent: dict[int, int]) -> list[int]:
        """Nodes whose parent pointer must be cut to leave an acyclic forest.

        The slot-synchronous protocol cannot form a cycle, but a *delayed*
        acknowledgment maturing rounds late can.  One deterministic victim
        per cycle (the largest id on it) loses its pointer and re-attaches as
        an orphan.
        """
        color: dict[int, int] = {}
        cuts: list[int] = []
        for start in sorted(parent):
            if start in color:
                continue
            path: list[int] = []
            node = start
            # A pointer chain can visit each node at most once before
            # repeating, so the walk is bounded by the map size.
            for _ in range(len(parent) + 1):
                if node not in parent or node in color:
                    break
                color[node] = 1
                path.append(node)
                node = parent[node]
            if color.get(node) == 1:
                cuts.append(max(path[path.index(node):]))
            for visited in path:
                color[visited] = 2
        return cuts
