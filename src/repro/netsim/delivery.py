"""Delivery semantics agents can opt into.

The paper's protocols are fire-and-forget: a broadcast is sent once and the
protocol's own redundancy (repeated slot pairs) absorbs loss.  This module
adds the other mode a lossy transport makes necessary: **reliable unicast**
with acknowledgments, per-message retry budgets, timeouts and exponential
backoff.  A :class:`ReliableOutbox` tracks each outstanding message; the
owning agent retransmits whatever :meth:`ReliableOutbox.due` returns and the
outbox raises :class:`~repro.exceptions.DeliveryTimeout` when a message
exhausts its attempts.  Retries are real transmissions, so they land in the
runtime's per-node send budget and inflate the round-complexity metrics -
which is exactly the overhead the loss-resilience experiments measure.

:class:`ReliableSenderAgent` and :class:`AckResponderAgent` are a minimal
protocol pair exercising the mode end to end over :class:`~repro.netsim
.runtime.NetSimulator`; the chaos tests run them at double-digit loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError, DeliveryTimeout
from ..geometry import Node
from ..obs.runtime import OBS
from ..runtime import AckMessage, DataMessage, NodeAgent
from ..sinr import Reception, Transmission

__all__ = [
    "AckResponderAgent",
    "OutstandingSend",
    "ReliableOutbox",
    "ReliableSenderAgent",
    "RetryPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and pacing of reliable sends.

    Attempt ``k`` (0-based) waits ``timeout_slots * backoff**k`` slots for an
    ack before retransmitting; after ``max_attempts`` unacked attempts the
    send times out.

    Attributes:
        max_attempts: total transmissions allowed per message (>= 1).
        timeout_slots: slots to wait for an ack after the first attempt.
        backoff: multiplicative backoff on the timeout per retry.
    """

    max_attempts: int = 5
    timeout_slots: int = 4
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.timeout_slots < 1:
            raise ConfigurationError(
                f"timeout_slots must be positive, got {self.timeout_slots}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")

    def deadline_after(self, slot: int, attempt: int) -> int:
        """Slot at which attempt ``attempt`` (0-based) times out."""
        return slot + max(1, int(self.timeout_slots * self.backoff**attempt))


@dataclass
class OutstandingSend:
    """One reliable message awaiting its acknowledgment."""

    key: int
    payload: Any
    dst_id: int
    attempts: int
    deadline: int


class ReliableOutbox:
    """Per-agent bookkeeping of unacked reliable sends.

    Args:
        policy: retry budget and pacing.

    The owner calls :meth:`post` when it first wants a message delivered,
    retransmits whatever :meth:`due` hands back, and calls :meth:`ack` when
    the matching acknowledgment arrives.  ``retries`` counts retransmissions
    only (attempts beyond each message's first), the quantity the send-budget
    metrics report.
    """

    __slots__ = ("_outstanding", "policy", "retries", "timeouts")

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self._outstanding: dict[int, OutstandingSend] = {}
        self.retries = 0
        #: keys that exhausted their budget (populated only in lenient mode).
        self.timeouts: list[int] = []

    def __len__(self) -> int:
        return len(self._outstanding)

    @property
    def pending_keys(self) -> list[int]:
        return sorted(self._outstanding)

    def post(self, key: int, payload: Any, dst_id: int, slot: int) -> Any:
        """Register a new reliable send; returns the payload to transmit now."""
        if key in self._outstanding:
            raise ConfigurationError(f"message key {key} is already outstanding")
        self._outstanding[key] = OutstandingSend(
            key=key,
            payload=payload,
            dst_id=dst_id,
            attempts=1,
            deadline=self.policy.deadline_after(slot, 0),
        )
        if OBS.enabled:
            OBS.registry.inc("netsim.reliable_posts")
        return payload

    def ack(self, key: int) -> bool:
        """Mark ``key`` acknowledged; returns whether it was outstanding."""
        return self._outstanding.pop(key, None) is not None

    def due(self, slot: int, *, strict: bool = True) -> list[OutstandingSend]:
        """Messages whose ack deadline passed, ready for retransmission.

        Each returned message has its attempt count bumped and a fresh
        backoff deadline.  A message with no attempts left is removed and
        either raises :class:`DeliveryTimeout` (``strict=True``) or is
        recorded in :attr:`timeouts`.
        """
        expired = [send for key, send in sorted(self._outstanding.items()) if slot >= send.deadline]
        ready: list[OutstandingSend] = []
        for send in expired:
            if send.attempts >= self.policy.max_attempts:
                del self._outstanding[send.key]
                if OBS.enabled:
                    OBS.registry.inc("netsim.timeouts")
                if strict:
                    raise DeliveryTimeout(
                        f"message {send.key} to node {send.dst_id} unacked after "
                        f"{send.attempts} attempts"
                    )
                self.timeouts.append(send.key)
                continue
            send.attempts += 1
            send.deadline = self.policy.deadline_after(slot, send.attempts - 1)
            self.retries += 1
            if OBS.enabled:
                OBS.registry.inc("netsim.retries")
            ready.append(send)
        return ready


class ReliableSenderAgent(NodeAgent):
    """Delivers a fixed batch of payloads to one peer, reliably.

    Sends one :class:`~repro.runtime.message.DataMessage` at a time (stop and
    wait), retransmitting per the outbox's policy until every payload is
    acked or a message times out.

    Args:
        node: the controlled node.
        rng: agent randomness (unused; the schedule is deterministic).
        dst_id: the receiving node's id.
        payloads: the payload sequence to deliver, in order.
        power: transmission power.
        policy: retry policy (default :class:`RetryPolicy`).
        strict: raise :class:`DeliveryTimeout` on budget exhaustion when
            ``True``, otherwise record the loss and move on.
    """

    def __init__(
        self,
        node: Node,
        rng: np.random.Generator,
        *,
        dst_id: int,
        payloads: list[Any],
        power: float,
        policy: RetryPolicy | None = None,
        strict: bool = True,
    ) -> None:
        super().__init__(node, rng)
        self.dst_id = dst_id
        self.payloads = list(payloads)
        self.power = power
        self.outbox = ReliableOutbox(policy)
        self.strict = strict
        self.acked = 0
        self._next_key = 0

    def act(self, slot: int) -> Transmission | None:
        action = self.act_batch(slot)
        if action is None:
            return None
        return Transmission(sender=self.node, power=action[0], message=action[1])

    def act_batch(self, slot: int) -> tuple[float, Any] | None:
        due = self.outbox.due(slot, strict=self.strict)
        if due:
            send = due[0]
            return self.power, send.payload
        if len(self.outbox) == 0 and self._next_key < len(self.payloads):
            key = self._next_key
            self._next_key += 1
            payload = DataMessage(
                sender=self.node,
                payload=self.payloads[key],
                destination_id=self.dst_id,
                metadata={"key": key},
            )
            return self.power, self.outbox.post(key, payload, self.dst_id, slot)
        return None

    def observe(self, slot: int, reception: Reception | None) -> None:
        if reception is None:
            return
        message = reception.message
        if isinstance(message, AckMessage) and message.target_id == self.node_id:
            if self.outbox.ack(message.slot_pair):
                self.acked += 1

    def is_done(self) -> bool:
        return (
            self._next_key >= len(self.payloads)
            and len(self.outbox) == 0
        )


class AckResponderAgent(NodeAgent):
    """Acknowledges every :class:`DataMessage` addressed to it."""

    def __init__(self, node: Node, rng: np.random.Generator, *, power: float) -> None:
        super().__init__(node, rng)
        self.power = power
        self.received: dict[int, Any] = {}
        self._pending_ack: AckMessage | None = None

    def act(self, slot: int) -> Transmission | None:
        action = self.act_batch(slot)
        if action is None:
            return None
        return Transmission(sender=self.node, power=action[0], message=action[1])

    def act_batch(self, slot: int) -> tuple[float, Any] | None:
        if self._pending_ack is not None:
            ack = self._pending_ack
            self._pending_ack = None
            return self.power, ack
        return None

    def observe(self, slot: int, reception: Reception | None) -> None:
        if reception is None:
            return
        message = reception.message
        if (
            isinstance(message, DataMessage)
            and message.destination_id == self.node_id
        ):
            key = int(message.metadata.get("key", -1))
            self.received.setdefault(key, message.payload)
            # `slot_pair` carries the message key back, which is all the
            # sender needs to clear its outbox (dup-acks are harmless).
            self._pending_ack = AckMessage(
                sender=self.node, target_id=message.sender_id, slot_pair=key
            )

    def is_done(self) -> bool:
        # A responder is a pure service: it is "done" whenever no ack is
        # waiting to go out, which lets all-nodes quorums complete.
        return self._pending_ack is None

    def on_crash(self, slot: int) -> None:
        self._pending_ack = None

    def on_recover(self, slot: int) -> None:
        self._pending_ack = None
