"""Composable fault models drawn from stateless counter-hashed randomness.

A :class:`FaultPlan` bundles every way the transport can misbehave - per
message Bernoulli drops, seeded latency distributions, node crash/recover
windows and link partitions - behind pure functions of ``(seed, sender,
receiver, slot)``.  All draws go through the same SplitMix64 counter hash the
fading models use (see :mod:`repro.dynamics.gain`), never through a shared
RNG stream, so a fault trace is bit-reproducible regardless of query order,
agent scheduling, node subsets or worker count: the drop decision for message
``(u, v, t)`` is the same whether it is the first or the millionth question
asked of the plan.

Crash schedules can be written explicitly, sampled from a counter hash
(:meth:`CrashSchedule.sample`), or derived from the dynamics subsystem's
seeded :class:`~repro.dynamics.churn.ChurnProcess`
(:meth:`CrashSchedule.from_churn`), which maps each churn epoch's failure
draw onto a crash window in slot time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from .._types import BoolArray, IntpArray
from ..dynamics.gain import _hash_u64, _uniform_open
from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dynamics.churn import ChurnProcess
    from ..geometry import Node

__all__ = [
    "CrashSchedule",
    "CrashWindow",
    "FaultPlan",
    "FaultTrace",
    "LatencyModel",
    "Partition",
]

# Domain-separation tags: one per fault stream, so identical seeds never
# correlate drops with delays, crash draws or heartbeat loss.
_DROP_STREAM = 0x44524F50
_DELAY_STREAM = 0x44454C41
_CRASH_STREAM = 0x43524153
_HEARTBEAT_STREAM = 0x48454152


@dataclass(frozen=True)
class LatencyModel:
    """Seeded per-message delivery delay, in whole slots.

    With probability ``delay_prob`` a message is late; its extra delay is a
    geometric draw with mean ``mean_slots`` (conditioned on being >= 1),
    capped at ``max_slots``.  Both draws are counter hashes of
    ``(seed, sender, receiver, slot)``, so the delay of a given message is a
    pure function of its identity.

    Attributes:
        delay_prob: probability that a delivered message is delayed at all.
        mean_slots: mean of the geometric delay, given that it is delayed.
        max_slots: hard cap on the per-message delay.
    """

    delay_prob: float = 0.0
    mean_slots: float = 1.0
    max_slots: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.delay_prob <= 1.0:
            raise ConfigurationError(f"delay_prob must be in [0, 1], got {self.delay_prob}")
        if self.mean_slots < 1.0:
            raise ConfigurationError(f"mean_slots must be >= 1, got {self.mean_slots}")
        if self.max_slots < 1:
            raise ConfigurationError(f"max_slots must be positive, got {self.max_slots}")

    def delays(self, seed: int, src_id: int, dst_ids: np.ndarray, slot: int) -> IntpArray:
        """Per-receiver delivery delays for one sender's slot-``slot`` message."""
        dst = np.asarray(dst_ids, dtype=np.int64)
        if self.delay_prob <= 0.0:
            return np.zeros(dst.shape, dtype=np.intp)
        u_late = _uniform_open(_hash_u64(_DELAY_STREAM, seed, src_id, dst, slot, 1))
        u_size = _uniform_open(_hash_u64(_DELAY_STREAM, seed, src_id, dst, slot, 2))
        # Geometric with the requested mean: ceil(log(u) / log(1 - 1/mean)).
        p = 1.0 / self.mean_slots
        if p >= 1.0:
            size = np.ones(dst.shape, dtype=np.intp)
        else:
            size = np.ceil(np.log(u_size) / np.log1p(-p)).astype(np.intp)
        size = np.clip(size, 1, self.max_slots)
        return np.where(u_late < self.delay_prob, size, 0).astype(np.intp)


@dataclass(frozen=True)
class CrashWindow:
    """One node-down interval: crashed in ``[start_slot, end_slot)``.

    ``end_slot=None`` means crash-stop: the node never comes back.
    """

    node_id: int
    start_slot: int
    end_slot: int | None = None

    def covers(self, slot: int) -> bool:
        if slot < self.start_slot:
            return False
        return self.end_slot is None or slot < self.end_slot


@dataclass(frozen=True)
class CrashSchedule:
    """A set of crash windows, queried per (node, slot).

    Attributes:
        windows: the node-down intervals; one node may have several.
    """

    windows: tuple[CrashWindow, ...] = ()

    def is_crashed(self, node_id: int, slot: int) -> bool:
        """Whether ``node_id`` is down at ``slot``."""
        return any(w.node_id == node_id and w.covers(slot) for w in self.windows)

    def crashed_ids(self, slot: int) -> frozenset[int]:
        """Ids of every node down at ``slot``."""
        return frozenset(w.node_id for w in self.windows if w.covers(slot))

    def permanently_crashed_ids(self, horizon_slot: int) -> frozenset[int]:
        """Nodes still (or again) down at ``horizon_slot``."""
        return self.crashed_ids(horizon_slot)

    @property
    def node_ids(self) -> frozenset[int]:
        """Every node that crashes at least once."""
        return frozenset(w.node_id for w in self.windows)

    @classmethod
    def sample(
        cls,
        node_ids: Sequence[int],
        count: int,
        horizon: int,
        *,
        seed: int = 0,
        recover_after: int | None = None,
        min_slot: int = 0,
    ) -> "CrashSchedule":
        """Draw ``count`` distinct victims and crash slots from a counter hash.

        The draw is a pure function of ``(seed, node ids, horizon)``: victims
        are the ``count`` nodes with the smallest hash rank, each crashing at
        a hash-derived slot in ``[min_slot, horizon)``.  No RNG object is
        involved, so the schedule is identical across processes and call
        orders.

        Args:
            node_ids: candidate victims.
            count: how many nodes crash.
            horizon: exclusive upper bound on crash slots.
            seed: stream seed.
            recover_after: slots until recovery (``None`` = crash-stop).
            min_slot: inclusive lower bound on crash slots.
        """
        ids = np.asarray(sorted(int(i) for i in node_ids), dtype=np.int64)
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if count > len(ids):
            raise ConfigurationError(f"cannot crash {count} of {len(ids)} nodes")
        if horizon <= min_slot:
            raise ConfigurationError(f"horizon {horizon} must exceed min_slot {min_slot}")
        rank = _hash_u64(_CRASH_STREAM, seed, ids, 1)
        victims = ids[np.argsort(rank, kind="stable")][:count]
        span = horizon - min_slot
        slots = min_slot + (
            _hash_u64(_CRASH_STREAM, seed, victims, 2) % np.uint64(span)
        ).astype(np.int64)
        windows = tuple(
            CrashWindow(
                node_id=int(v),
                start_slot=int(s),
                end_slot=None if recover_after is None else int(s) + int(recover_after),
            )
            for v, s in zip(victims, slots)
        )
        return cls(windows=windows)

    @classmethod
    def from_churn(
        cls,
        churn: "ChurnProcess",
        nodes: Sequence["Node"],
        *,
        epochs: int,
        slots_per_epoch: int,
        recover_after: int | None = None,
    ) -> "CrashSchedule":
        """Map a seeded churn process onto crash windows in slot time.

        Epoch ``e``'s failure draw (a pure function of ``(churn.seed, e)``)
        becomes a set of crashes at slot ``e * slots_per_epoch``.  Arrivals
        in the churn stream are ignored - the message runtime models node
        loss, not deployment.  Nodes already scheduled to crash are excluded
        from later epochs' alive sets, mirroring the dynamics driver.
        """
        if epochs < 0:
            raise ConfigurationError(f"epochs must be non-negative, got {epochs}")
        if slots_per_epoch < 1:
            raise ConfigurationError(
                f"slots_per_epoch must be positive, got {slots_per_epoch}"
            )
        alive = list(nodes)
        next_id = max((node.id for node in alive), default=0) + 1
        windows: list[CrashWindow] = []
        for epoch in range(epochs):
            event = churn.events_for(epoch, alive, next_id)
            start = epoch * slots_per_epoch
            for node_id in event.failed:
                windows.append(
                    CrashWindow(
                        node_id=int(node_id),
                        start_slot=start,
                        end_slot=None if recover_after is None else start + recover_after,
                    )
                )
            failed = set(event.failed)
            alive = [node for node in alive if node.id not in failed]
        return cls(windows=tuple(windows))


@dataclass(frozen=True)
class Partition:
    """A link partition: messages crossing the cut are dropped.

    The cut separates ``left`` from everyone else during
    ``[start_slot, end_slot)`` (``end_slot=None`` = forever).
    """

    left: frozenset[int]
    start_slot: int = 0
    end_slot: int | None = None

    def active(self, slot: int) -> bool:
        if slot < self.start_slot:
            return False
        return self.end_slot is None or slot < self.end_slot

    def severs(self, src_id: int, dst_id: int, slot: int) -> bool:
        """Whether the partition cuts the ``src -> dst`` message at ``slot``."""
        return self.active(slot) and ((src_id in self.left) != (dst_id in self.left))


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault configuration of one run.

    Every decision the plan makes is a counter hash of the message identity,
    so two plans with equal fields behave identically everywhere.

    Attributes:
        seed: stream seed for drops, delays and heartbeat loss.
        drop_prob: per-message Bernoulli loss probability.
        latency: per-message delay model (``None`` = always immediate).
        crashes: node crash/recover windows.
        partitions: link partitions.
        heartbeat_drop_prob: loss probability of the out-of-band heartbeats
            feeding the failure detector (defaults to ``drop_prob``).
    """

    seed: int = 0
    drop_prob: float = 0.0
    latency: LatencyModel | None = None
    crashes: CrashSchedule = field(default_factory=CrashSchedule)
    partitions: tuple[Partition, ...] = ()
    heartbeat_drop_prob: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ConfigurationError(f"drop_prob must be in [0, 1], got {self.drop_prob}")
        if self.heartbeat_drop_prob is not None and not 0.0 <= self.heartbeat_drop_prob <= 1.0:
            raise ConfigurationError(
                f"heartbeat_drop_prob must be in [0, 1], got {self.heartbeat_drop_prob}"
            )

    @property
    def faultless(self) -> bool:
        """Whether the plan can never perturb a run."""
        return (
            self.drop_prob == 0.0
            and (self.latency is None or self.latency.delay_prob == 0.0)
            and not self.crashes.windows
            and not self.partitions
            and not self.heartbeat_drop_prob
        )

    def without_crashes(self) -> "FaultPlan":
        """The same loss/latency environment with no scheduled crashes."""
        return FaultPlan(
            seed=self.seed,
            drop_prob=self.drop_prob,
            latency=self.latency,
            partitions=self.partitions,
            heartbeat_drop_prob=self.heartbeat_drop_prob,
        )

    # -- message-level draws ------------------------------------------------

    def dropped(self, src_id: int, dst_ids: np.ndarray, slot: int) -> BoolArray:
        """Per-receiver drop decisions for one sender's slot-``slot`` message."""
        dst = np.asarray(dst_ids, dtype=np.int64)
        out = np.zeros(dst.shape, dtype=bool)
        if self.drop_prob > 0.0:
            u = _uniform_open(_hash_u64(_DROP_STREAM, self.seed, src_id, dst, slot))
            out |= u < self.drop_prob
        for partition in self.partitions:
            if partition.active(slot):
                src_left = src_id in partition.left
                out |= np.fromiter(
                    ((int(d) in partition.left) != src_left for d in dst),
                    dtype=bool,
                    count=len(dst),
                )
        return out

    def delays(self, src_id: int, dst_ids: np.ndarray, slot: int) -> IntpArray:
        """Per-receiver delivery delays (0 = arrives in the send slot)."""
        dst = np.asarray(dst_ids, dtype=np.int64)
        if self.latency is None:
            return np.zeros(dst.shape, dtype=np.intp)
        return self.latency.delays(self.seed, src_id, dst, slot)

    def heartbeat_dropped(self, node_id: int, slot: int) -> bool:
        """Whether ``node_id``'s heartbeat at ``slot`` is lost."""
        prob = self.drop_prob if self.heartbeat_drop_prob is None else self.heartbeat_drop_prob
        if prob <= 0.0:
            return False
        u = _uniform_open(_hash_u64(_HEARTBEAT_STREAM, self.seed, node_id, slot))
        return bool(u < prob)


class FaultTrace:
    """Recorder of every fault the transport actually injected.

    The trace lists events in slot order with deterministic tie-breaks, so
    two runs of the same plan produce byte-identical traces; :meth:`digest`
    condenses that into a fingerprint the property tests compare across
    scheduling orders and worker counts.
    """

    __slots__ = ("crashes", "delayed", "dropped", "heartbeat_losses", "recoveries")

    def __init__(self) -> None:
        #: (slot, src_id, dst_id) of every dropped delivery.
        self.dropped: list[tuple[int, int, int]] = []
        #: (slot, src_id, dst_id, delay) of every delayed delivery.
        self.delayed: list[tuple[int, int, int, int]] = []
        #: (slot, node_id) of every crash transition.
        self.crashes: list[tuple[int, int]] = []
        #: (slot, node_id) of every recovery transition.
        self.recoveries: list[tuple[int, int]] = []
        #: (hashed slot, node_id) of every lost out-of-band heartbeat.  The
        #: *hashed* slot (protocol slot + transport offset) is recorded so a
        #: completion patch that continues the streams at a fresh offset is
        #: distinguishable from a replay of the main run's decisions.
        self.heartbeat_losses: list[tuple[int, int]] = []

    def record_drop(self, slot: int, src_id: int, dst_id: int) -> None:
        self.dropped.append((slot, src_id, dst_id))

    def record_delay(self, slot: int, src_id: int, dst_id: int, delay: int) -> None:
        self.delayed.append((slot, src_id, dst_id, delay))

    def record_crash(self, slot: int, node_id: int) -> None:
        self.crashes.append((slot, node_id))

    def record_recovery(self, slot: int, node_id: int) -> None:
        self.recoveries.append((slot, node_id))

    def record_heartbeat_loss(self, hashed_slot: int, node_id: int) -> None:
        self.heartbeat_losses.append((hashed_slot, node_id))

    def summary(self) -> dict[str, int]:
        return {
            "dropped": len(self.dropped),
            "delayed": len(self.delayed),
            "crashes": len(self.crashes),
            "recoveries": len(self.recoveries),
            "heartbeat_losses": len(self.heartbeat_losses),
        }

    def digest(self) -> str:
        """Order-normalized fingerprint of the whole fault history."""
        payload = repr(
            (
                sorted(self.dropped),
                sorted(self.delayed),
                sorted(self.crashes),
                sorted(self.recoveries),
                sorted(self.heartbeat_losses),
            )
        ).encode("utf-8")
        return hashlib.sha1(payload).hexdigest()
