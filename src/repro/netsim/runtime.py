"""The fault-injected message-passing runtime.

:class:`NetSimulator` executes the same :class:`~repro.runtime.agent
.NodeAgent` protocol machines as the lockstep :class:`~repro.runtime
.simulator.Simulator`, but every decoded message passes through an explicit
:class:`~repro.netsim.transport.Transport` before it reaches an agent:

* a message may be **dropped** (Bernoulli loss or a link partition) - the
  sender's interference still happened, only the delivery is lost;
* a message may be **delayed** - it matures in a later slot and is handed to
  the receiver then, provided the receiver is listening (half-duplex) and up;
* a node may be **crashed** - it is neither polled (consuming no randomness)
  nor delivered to until its recovery slot, and its agent sees
  :meth:`~repro.runtime.agent.NodeAgent.on_crash` /
  :meth:`~repro.runtime.agent.NodeAgent.on_recover` transitions;
* out-of-band **heartbeats** feed a :class:`~repro.netsim.detector
  .HeartbeatDetector`, whose view of liveness and progress is what round
  drivers act on instead of the lockstep engine's god's-eye agent reads.

Composed with :class:`~repro.netsim.transport.PerfectTransport`, every seam
reduces to the lockstep batch engine: the same poll order, the same decode
arithmetic, the same delivery order - so the zero-fault message trace and
protocol outcome are bit-identical to ``runtime.Simulator`` (the parity
tests pin this), and the lockstep engine remains the oracle for everything
the transport can perturb.

Delivery bookkeeping: at most one message reaches an agent per slot (the
radio decodes one frame).  A matured delayed message takes precedence over a
fresh decode in the same slot - it is older - and the displaced fresh frame
is counted in ``receiver_busy_drops``.  With zero latency the maturity queue
is empty and the rule never fires.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..obs.runtime import OBS
from ..runtime.agent import NodeAgent
from ..runtime.simulator import Simulator
from ..runtime.trace import ExecutionTrace, SlotRecord
from ..sinr import Channel, Reception
from .detector import HeartbeatDetector
from .faults import FaultTrace
from .transport import PerfectTransport, Transport

__all__ = ["NetSimulator"]


class NetSimulator(Simulator):
    """Message-passing runtime: the batch slot engine behind a lossy transport.

    Args:
        agents: the per-node protocol agents.
        channel: the SINR channel instance.
        transport: delivery policy (drops, delays, crashes, partitions).
        detector: failure detector fed by out-of-band heartbeats; a default
            one monitoring every agent each slot is created if omitted.
        trace: optional pre-existing trace to append to.
        trace_level: trace backend to create when ``trace`` is ``None``.
    """

    def __init__(
        self,
        agents: Sequence[NodeAgent],
        channel: Channel,
        transport: Transport | None = None,
        *,
        detector: HeartbeatDetector | None = None,
        trace: ExecutionTrace | None = None,
        trace_level: str = "records",
    ) -> None:
        super().__init__(agents, channel, trace, trace_level=trace_level, engine="batch")
        self.transport: Transport = transport if transport is not None else PerfectTransport()
        self.detector = (
            detector
            if detector is not None
            else HeartbeatDetector(list(self._node_ids), interval=1)
        )
        unknown = set(self.detector.node_ids) - set(self._node_ids)
        if unknown:
            raise ConfigurationError(
                f"detector monitors ids outside the agent set: {sorted(unknown)[:5]}"
            )
        self._crashed = [False] * len(self.agents)
        #: mature slot -> [(sequence, dst position, reception)], FIFO by sequence.
        self._pending: dict[int, list[tuple[int, int, Reception]]] = {}
        self._pending_seq = 0
        #: per-node transmissions actually attempted (retries included).
        self.send_budget: dict[int, int] = {node_id: 0 for node_id in self._node_ids}
        #: fresh decodes displaced by a matured delayed message (or a matured
        #: message arriving while its receiver transmitted).
        self.receiver_busy_drops = 0
        #: matured deliveries lost because the receiver was down.
        self.crash_drops = 0

    # -- fault bookkeeping ---------------------------------------------------

    @property
    def fault_trace(self) -> FaultTrace | None:
        """The transport's fault recorder, when it keeps one."""
        return getattr(self.transport, "trace", None)

    def crashed_ids(self) -> frozenset[int]:
        """Ids of the nodes currently down."""
        return frozenset(
            node_id
            for node_id, crashed in zip(self._node_ids, self._crashed)
            if crashed
        )

    def _sync_crashes(self, slot: int) -> None:
        """Apply the transport's crash windows, firing agent transitions."""
        trace = self.fault_trace
        for i, node_id in enumerate(self._node_ids):
            down = self.transport.is_crashed(node_id, slot)
            if down == self._crashed[i]:
                continue
            self._crashed[i] = down
            if down:
                self.agents[i].on_crash(slot)
                if trace is not None:
                    trace.record_crash(slot, node_id)
                if OBS.enabled:
                    OBS.registry.inc("netsim.crashes")
            else:
                self.agents[i].on_recover(slot)
                if trace is not None:
                    trace.record_recovery(slot, node_id)
                if OBS.enabled:
                    OBS.registry.inc("netsim.recoveries")

    # -- engine seams --------------------------------------------------------

    def _poll_batch(self, slot: int) -> tuple[list[int], list[float], list[Any]]:
        self._sync_crashes(slot)
        if not any(self._crashed):
            tx_pos, powers, messages = super()._poll_batch(slot)
        else:
            # Crashed agents are not polled at all: they consume no
            # randomness, transmit nothing and do not listen.
            tx_pos, powers, messages = [], [], []
            listening = self._listening
            listening[:] = True
            for i, act_batch in enumerate(self._act_batch):
                if self._crashed[i]:
                    listening[i] = False
                    continue
                action = act_batch(slot)
                if action is not None:
                    tx_pos.append(i)
                    powers.append(action[0])
                    messages.append(action[1])
                    listening[i] = False
        for i in tx_pos:
            self.send_budget[self._node_ids[i]] += 1
        return tx_pos, powers, messages

    def _apply_transport(
        self,
        slot: int,
        receptions: list[Reception | None],
        pairs: list[tuple[int, int]],
    ) -> tuple[list[Reception | None], list[tuple[int, int]]]:
        """Filter decoded deliveries through the transport and the queue."""
        matured = self._pending.pop(slot, [])
        if pairs:
            dst_ids = np.array([dst for dst, _ in pairs], dtype=np.int64)
            src_ids = np.array([src for _, src in pairs], dtype=np.int64)
            delivered, delay = self.transport.admit(slot, src_ids, dst_ids)
            if bool(delivered.all()) and not delay.any() and not matured:
                return receptions, pairs
            kept_pairs: list[tuple[int, int]] = []
            for k, (dst_id, src_id) in enumerate(pairs):
                pos = self._pos_by_id[dst_id]
                if not delivered[k]:
                    receptions[pos] = None
                    continue
                if delay[k]:
                    reception = receptions[pos]
                    receptions[pos] = None
                    assert reception is not None
                    self._pending.setdefault(slot + int(delay[k]), []).append(
                        (self._pending_seq, pos, reception)
                    )
                    self._pending_seq += 1
                    continue
                kept_pairs.append((dst_id, src_id))
            pairs = kept_pairs
        for _, pos, reception in sorted(matured, key=lambda item: item[0]):
            if self._crashed[pos]:
                self.crash_drops += 1
                if OBS.enabled:
                    OBS.registry.inc("netsim.crash_drops")
                continue
            if not self._listening[pos]:
                # Half-duplex: the receiver transmitted in the arrival slot.
                self.receiver_busy_drops += 1
                if OBS.enabled:
                    OBS.registry.inc("netsim.receiver_busy_drops")
                continue
            if receptions[pos] is not None:
                # The older (matured) message wins the receive buffer.
                self.receiver_busy_drops += 1
                if OBS.enabled:
                    OBS.registry.inc("netsim.receiver_busy_drops")
                pairs = [(dst, src) for dst, src in pairs if dst != self._node_ids[pos]]
            receptions[pos] = reception
            pairs.append((self._node_ids[pos], reception.sender.id))
        return receptions, pairs

    def _deliver_batch(self, slot: int, receptions: list[Reception | None]) -> None:
        for i, (observe, reception) in enumerate(zip(self._observe, receptions)):
            if self._crashed[i]:
                continue
            observe(slot, reception)

    def _emit_heartbeats(self, slot: int) -> None:
        detector = self.detector
        if not detector.expects_heartbeat(slot):
            return
        monitored = set(detector.node_ids)
        for i, node_id in enumerate(self._node_ids):
            if node_id not in monitored:
                continue
            if self._crashed[i] or not self.transport.heartbeat_delivered(node_id, slot):
                detector.observe_miss(node_id, slot)
            else:
                detector.observe_heartbeat(node_id, slot, done=self.agents[i].is_done())

    def _step_batch(self, label: str) -> SlotRecord | None:
        slot = self._slot
        tx_pos, powers, messages = self._poll_batch(slot)
        receptions, pairs = self._decode_batch(slot, tx_pos, powers, messages)
        receptions, pairs = self._apply_transport(slot, receptions, pairs)
        self._deliver_batch(slot, receptions)
        record = self.trace.append_slot(
            slot, [self._node_ids[i] for i in tx_pos], pairs, label
        )
        if OBS.enabled:
            registry = OBS.registry
            registry.inc("netsim.slots")
            if tx_pos:
                registry.inc("netsim.sends", len(tx_pos))
            if pairs:
                registry.inc("netsim.deliveries", len(pairs))
        self._slot += 1
        self._emit_heartbeats(slot)
        return record

    # -- summaries -----------------------------------------------------------

    def fault_summary(self) -> dict[str, int]:
        """Counters of everything the transport did to this run.

        Includes the reliable-delivery tallies (``retries``/``timeouts``)
        summed over every agent that owns a :class:`~repro.netsim.delivery
        .ReliableOutbox` (zero when no agent uses reliable sends).
        """
        trace = self.fault_trace
        summary = trace.summary() if trace is not None else {
            "dropped": 0, "delayed": 0, "crashes": 0, "recoveries": 0,
            "heartbeat_losses": 0,
        }
        summary["receiver_busy_drops"] = self.receiver_busy_drops
        summary["crash_drops"] = self.crash_drops
        summary["transmissions"] = sum(self.send_budget.values())
        retries = 0
        timeouts = 0
        for agent in self.agents:
            outbox = getattr(agent, "outbox", None)
            if outbox is not None:
                retries += outbox.retries
                timeouts += len(outbox.timeouts)
        summary["retries"] = retries
        summary["timeouts"] = timeouts
        return summary
