"""The initial distributed bi-tree construction ``Init`` (Section 6).

Every node starts *active*.  Time is organized into rounds ``r = 1, 2, ...``;
round ``r`` handles candidate links with length in ``[2**(r-1), 2**r)`` and
consists of ``lambda_1 * log n`` slot-pairs.  In every slot-pair each active
node independently elects to be a *broadcaster* (with probability ``p``) or a
*listener*:

* first slot: broadcasters transmit a hello carrying their id and location;
* second slot: a listener that decoded a hello from a node in the current
  length class acknowledges it (with probability ``p``); a broadcaster that
  decodes an acknowledgment addressed to it records the link pair, adopts the
  acknowledger as its parent, and becomes inactive.

All transmissions in round ``r`` use the fixed power ``~ 2 * beta * N *
2**(r*alpha)``, which keeps the link cost ``c(u, v)`` at most ``2 * beta`` for
every link the round may form.  After ``ceil(log2 Delta)`` rounds exactly one
node remains active w.h.p.; it is the root of both the aggregation and the
dissemination tree (Theorem 2).

Practical constants (see ``repro.constants``) do not guarantee the w.h.p.
single-sweep termination, so the builder optionally repeats the whole round
sweep until a single active node remains; the extra slots are included in the
reported cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..exceptions import ProtocolError
from ..geometry import Node, node_distance_matrix
from ..links import Link
from ..runtime import AckMessage, BroadcastMessage, ExecutionTrace, NodeAgent, Simulator, spawn_agent_rngs
from ..sinr import Channel, ExplicitPower, Reception, SINRParameters, Transmission, UniformPower
from .bitree import BiTree
from .quantities import num_rounds_for_delta

__all__ = ["InitAgent", "InitialTreeBuilder", "InitialTreeResult", "round_power"]


def round_power(round_index: int, params: SINRParameters, slack: float = 2.0) -> float:
    """Fixed transmission power used throughout round ``round_index``.

    The paper sets it to ``2 * beta * N * 2**(r * alpha)``, the smallest power
    keeping ``c(u, v) <= 2 * beta`` for every link of length below ``2**r``.
    With zero ambient noise any positive power works; we keep the same
    length-scaling so behaviour is continuous in ``N``.
    """
    if round_index < 1:
        raise ValueError("round_index is 1-based and must be positive")
    reach = 2.0**round_index
    if params.noise > 0:
        return params.min_power_for(reach, slack)
    return params.beta * reach**params.alpha


@dataclass(frozen=True)
class _LinkRecord:
    """A link stored by a node, with its schedule time stamp (slot-pair index)."""

    peer_id: int
    outgoing: bool
    slot_pair: int
    round_index: int


class InitAgent(NodeAgent):
    """Per-node state machine of the ``Init`` protocol.

    The agent derives the current round and slot-pair phase from the global
    slot index using only globally known quantities (``n``, ``Delta``, the
    protocol constants), as permitted by the paper's model (Section 5).
    """

    def __init__(
        self,
        node: Node,
        rng: np.random.Generator,
        params: SINRParameters,
        constants: AlgorithmConstants,
        rounds_per_sweep: int,
        slot_pairs_per_round: int,
    ):
        super().__init__(node, rng)
        self.params = params
        self.constants = constants
        self.rounds_per_sweep = rounds_per_sweep
        self.slot_pairs_per_round = slot_pairs_per_round

        self.active = True
        self.parent_id: int | None = None
        self.parent_slot_pair: int | None = None
        self.parent_round: int | None = None
        self.records: list[_LinkRecord] = []

        self._is_broadcaster = False
        self._pending_broadcast: BroadcastMessage | None = None
        self._round_powers: dict[int, float] = {}

    # -- time bookkeeping ---------------------------------------------------

    def _slot_pair(self, slot: int) -> int:
        return slot // 2

    def _phase(self, slot: int) -> int:
        return slot % 2

    def _round(self, slot: int) -> int:
        pair = self._slot_pair(slot)
        return (pair // self.slot_pairs_per_round) % self.rounds_per_sweep + 1

    def _round_power(self, round_index: int) -> float:
        """Round power, memoized (it is evaluated once per agent per slot)."""
        power = self._round_powers.get(round_index)
        if power is None:
            power = round_power(round_index, self.params)
            self._round_powers[round_index] = power
        return power

    # -- protocol -----------------------------------------------------------

    def act(self, slot: int) -> Transmission | None:
        action = self.act_batch(slot)
        if action is None:
            return None
        power, message = action
        return Transmission(sender=self.node, power=power, message=message)

    def act_batch(self, slot: int) -> tuple[float, Any] | None:
        phase = self._phase(slot)
        round_index = self._round(slot)

        if phase == 0:
            self._pending_broadcast = None
            self._is_broadcaster = False
            if not self.active:
                return None
            if self.rng.random() < self.constants.broadcast_probability:
                self._is_broadcaster = True
                return (
                    self._round_power(round_index),
                    BroadcastMessage(sender=self.node, round_index=round_index),
                )
            return None

        # phase == 1: acknowledgment slot.
        if not self.active:
            return None
        if self._is_broadcaster:
            return None  # listen for acknowledgments
        broadcast = self._pending_broadcast
        if broadcast is None:
            return None
        distance = self.node.distance_to(broadcast.sender)
        lower, upper = 2.0 ** (round_index - 1), 2.0**round_index
        if not (lower <= distance < upper):
            return None
        if self.rng.random() >= self.constants.ack_probability:
            return None
        pair = self._slot_pair(slot)
        # Store both directions now (the paper notes this may create stray
        # links if the acknowledgment is lost; they are cleaned up later).
        self.records.append(
            _LinkRecord(peer_id=broadcast.sender_id, outgoing=False, slot_pair=pair, round_index=round_index)
        )
        self.records.append(
            _LinkRecord(peer_id=broadcast.sender_id, outgoing=True, slot_pair=pair, round_index=round_index)
        )
        return (
            self._round_power(round_index),
            AckMessage(
                sender=self.node, target_id=broadcast.sender_id, round_index=round_index, slot_pair=pair
            ),
        )

    def observe(self, slot: int, reception: Reception | None) -> None:
        if reception is None:
            return
        phase = self._phase(slot)
        round_index = self._round(slot)
        if phase == 0:
            if self.active and not self._is_broadcaster and isinstance(reception.message, BroadcastMessage):
                self._pending_broadcast = reception.message
            return
        # phase == 1
        if (
            self.active
            and self._is_broadcaster
            and isinstance(reception.message, AckMessage)
            and reception.message.target_id == self.node_id
        ):
            ack = reception.message
            pair = self._slot_pair(slot)
            self.parent_id = ack.sender_id
            self.parent_slot_pair = pair
            self.parent_round = round_index
            self.records.append(
                _LinkRecord(peer_id=ack.sender_id, outgoing=True, slot_pair=pair, round_index=round_index)
            )
            self.records.append(
                _LinkRecord(peer_id=ack.sender_id, outgoing=False, slot_pair=pair, round_index=round_index)
            )
            self.active = False

    def is_done(self) -> bool:
        return not self.active

    def on_crash(self, slot: int) -> None:
        # Links and parent adoption survive a crash (they are committed
        # state); only the intra-slot-pair context is volatile.
        self._pending_broadcast = None
        self._is_broadcaster = False

    def on_recover(self, slot: int) -> None:
        # The slot pair the pending broadcast belonged to has passed while
        # the node was down, so the ack it would trigger must not be sent.
        self._pending_broadcast = None
        self._is_broadcaster = False

    def stored_degree(self) -> int:
        """Number of distinct peers this node stored links with (Theorem 7's |Lu|)."""
        return len({record.peer_id for record in self.records})


@dataclass
class InitialTreeResult:
    """Outcome of running ``Init`` on a set of nodes.

    Attributes:
        tree: the constructed bi-tree.
        slots_used: total channel slots consumed (Theorem 2's cost measure).
        rounds_used: number of protocol rounds executed (across all sweeps).
        sweeps_used: number of full round sweeps needed (1 matches the paper's
            single-pass guarantee; more indicate the practical constants
            needed extra passes).
        delta: the distance ratio of the instance.
        power: the per-link powers actually used, for schedule verification.
        link_rounds: round in which each aggregation link was formed (used by
            ``Distr-Cap`` to phase links by length class).
        trace: the slot-by-slot execution trace.
        stored_degrees: per node, the number of links it stored (including
            stray links), the quantity bounded by Theorem 7.
    """

    tree: BiTree
    slots_used: int
    rounds_used: int
    sweeps_used: int
    delta: float
    power: ExplicitPower
    link_rounds: dict[tuple[int, int], int]
    trace: ExecutionTrace
    stored_degrees: dict[int, int]


class InitialTreeBuilder:
    """Runs the distributed ``Init`` protocol (Theorem 2).

    Args:
        params: SINR model parameters.
        constants: protocol constants (probabilities, slot-pairs per round).
        max_sweeps: how many times the full round sweep may be repeated before
            giving up.  The paper's constants need one sweep w.h.p.; the
            practical defaults occasionally need a second one.
    """

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        max_sweeps: int = 20,
    ):
        if max_sweeps < 1:
            raise ValueError("max_sweeps must be at least 1")
        self.params = params
        self.constants = constants
        self.max_sweeps = max_sweeps

    def build(self, nodes: Sequence[Node], rng: np.random.Generator) -> InitialTreeResult:
        """Run ``Init`` on ``nodes`` and return the resulting bi-tree.

        Raises:
            ProtocolError: if more than one active node remains after
                ``max_sweeps`` sweeps (practically unreachable with defaults).
        """
        node_list = list(nodes)
        if not node_list:
            raise ProtocolError("cannot build a tree on zero nodes")
        if len(node_list) == 1:
            only = node_list[0]
            tree = BiTree.from_parent_map([only], only.id, {})
            return InitialTreeResult(
                tree=tree,
                slots_used=0,
                rounds_used=0,
                sweeps_used=0,
                delta=1.0,
                power=ExplicitPower({}),
                link_rounds={},
                trace=ExecutionTrace(),
                stored_degrees={only.id: 0},
            )

        distances = node_distance_matrix(node_list)
        np.fill_diagonal(distances, 0.0)
        delta = float(distances.max())
        rounds_per_sweep = num_rounds_for_delta(max(delta, 1.0))
        pairs_per_round = self.constants.slot_pairs_per_round(len(node_list))

        agent_rngs = spawn_agent_rngs(rng, len(node_list))
        agents = [
            InitAgent(
                node=node,
                rng=agent_rng,
                params=self.params,
                constants=self.constants,
                rounds_per_sweep=rounds_per_sweep,
                slot_pairs_per_round=pairs_per_round,
            )
            for node, agent_rng in zip(node_list, agent_rngs)
        ]
        # Columnar trace: the slot loop is the hot path and only aggregate
        # counts (plus on-demand records) are ever read from the result.
        simulator = Simulator(agents, Channel(self.params), trace_level="columnar")

        rounds_used = 0
        sweeps_used = 0
        for sweep in range(self.max_sweeps):
            sweeps_used = sweep + 1
            for round_index in range(1, rounds_per_sweep + 1):
                # The first sweep always runs in full (the paper's algorithm has
                # no early termination); later sweeps stop as soon as a single
                # active node remains.
                if sweep > 0 and self._active_count(agents) <= 1:
                    break
                rounds_used += 1
                for _ in range(pairs_per_round):
                    simulator.step(label=f"init:sweep{sweep}:round{round_index}:broadcast")
                    simulator.step(label=f"init:sweep{sweep}:round{round_index}:ack")
            if self._active_count(agents) <= 1:
                break
        if self._active_count(agents) > 1:
            raise ProtocolError(
                f"Init did not converge to a single active node within {self.max_sweeps} sweeps"
            )

        return self._extract_result(
            node_list, agents, simulator, delta, rounds_used, sweeps_used
        )

    @staticmethod
    def _active_count(agents: Sequence[InitAgent]) -> int:
        return sum(1 for agent in agents if agent.active)

    def _extract_result(
        self,
        node_list: Sequence[Node],
        agents: Sequence[InitAgent],
        simulator: Simulator,
        delta: float,
        rounds_used: int,
        sweeps_used: int,
    ) -> InitialTreeResult:
        node_map = {node.id: node for node in node_list}
        root_candidates = [agent.node_id for agent in agents if agent.active]
        if len(root_candidates) != 1:
            raise ProtocolError(f"expected exactly one root, found {len(root_candidates)}")
        root_id = root_candidates[0]

        parent: dict[int, int] = {}
        slots: dict[int, int] = {}
        link_rounds: dict[tuple[int, int], int] = {}
        power_map: dict[tuple[int, int], float] = {}
        for agent in agents:
            if agent.node_id == root_id:
                continue
            if agent.parent_id is None or agent.parent_slot_pair is None or agent.parent_round is None:
                raise ProtocolError(f"inactive node {agent.node_id} has no recorded parent")
            parent[agent.node_id] = agent.parent_id
            slots[agent.node_id] = agent.parent_slot_pair
            power = round_power(agent.parent_round, self.params)
            link_rounds[(agent.node_id, agent.parent_id)] = agent.parent_round
            power_map[(agent.node_id, agent.parent_id)] = power
            power_map[(agent.parent_id, agent.node_id)] = power

        tree = BiTree.from_parent_map(node_list, root_id, parent, slots)
        fallback = UniformPower.for_max_length(self.params, max(delta, 1.0))
        return InitialTreeResult(
            tree=tree,
            slots_used=simulator.current_slot,
            rounds_used=rounds_used,
            sweeps_used=sweeps_used,
            delta=delta,
            power=ExplicitPower(power_map, fallback=fallback),
            link_rounds=link_rounds,
            trace=simulator.trace,
            stored_degrees={agent.node_id: agent.stored_degree() for agent in agents},
        )
