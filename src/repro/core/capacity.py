"""Centralized capacity and scheduling primitives.

Two classical centralized building blocks the paper leans on:

* **Capacity selection** (Kesselheim, SODA 2011 [14]): processing links in
  ascending length order and admitting a link ``l`` whenever

      a^L_L(l) + a^U_l(L) <= tau                       (Eqn. 3 of the paper)

  - the linear-power affectance of the already-selected set on ``l`` plus the
  uniform-power affectance of ``l`` on the set - yields a constant-factor
  approximation of the maximum feasible subset under power control.  The
  admitted set is power-controllable; powers come from
  ``repro.core.power_solver``.

* **First-fit scheduling** under a fixed power assignment: process links in
  descending length order and place each into the first slot where the total
  affectance (in both directions) stays below 1.  For psi-sparse sets this
  uses ``O(psi log n)`` slots (Theorem 9), and it doubles as the centralized
  baseline scheduler.

The pair-weight function ``f_l(l')`` (Section 8.2.2) used in the analysis of
``Distr-Cap`` is also provided, for the property-based tests that check
Eqn. (5)-style bounds on feasible sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..links import Link, LinkSet
from ..sinr import (
    AffectanceAccumulator,
    LinearPower,
    LinkArrayCache,
    PowerAssignment,
    SINRParameters,
    UniformPower,
    affectance_between_links,
)
from ..state import NetworkState
from .schedule import Schedule

__all__ = [
    "CapacityResult",
    "select_feasible_subset",
    "select_power_controllable_subset",
    "pair_weight",
    "total_pair_weight",
    "first_fit_schedule",
    "first_fit_schedule_result",
    "FirstFitResult",
]


def _default_uniform(links: Sequence[Link], params: SINRParameters) -> UniformPower:
    longest = max((link.length for link in links), default=1.0)
    return UniformPower.for_max_length(params, max(longest, 1.0))


def _default_linear(params: SINRParameters) -> LinearPower:
    return LinearPower.for_noise(params)


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of the centralized capacity selection.

    Attributes:
        selected: the admitted link set (power-controllable by construction).
        considered: number of links examined.
        tau: the admission threshold used.
    """

    selected: LinkSet
    considered: int
    tau: float


def select_feasible_subset(
    links: Sequence[Link] | LinkSet,
    params: SINRParameters,
    *,
    tau: float = 0.8,
    exclusive_nodes: bool = True,
    state: NetworkState | None = None,
) -> CapacityResult:
    """Kesselheim's ascending-length greedy capacity selection (Eqn. 3).

    Args:
        links: candidate links.
        params: physical-model parameters.
        tau: admission threshold; smaller is more conservative.
        state: optional shared :class:`~repro.state.NetworkState` covering
            the link endpoints; the candidate universe's distance block is
            then gathered from its node store instead of recomputed.
        exclusive_nodes: additionally require that no node appears in two
            admitted links.  The paper's connectivity use-case needs this (a
            feasible set in one slot cannot reuse a node); pure capacity
            studies may disable it.

    Returns:
        The admitted subset in a :class:`CapacityResult`.
    """
    link_list = sorted(links, key=lambda link: (link.length, link.endpoint_ids))
    if not link_list:
        return CapacityResult(LinkSet(), 0, tau)
    if tau <= 0:
        raise ValueError("tau must be positive")

    uniform = _default_uniform(link_list, params)
    linear = _default_linear(params)
    # Both pairwise affectance matrices are computed once over the candidate
    # universe; the greedy loop then runs on incremental accumulators: O(1)
    # admission tests and one O(m) row/column update per accepted link,
    # instead of rescanning the selected set per candidate.
    cache = LinkArrayCache(link_list, state=state)
    incoming = AffectanceAccumulator(cache.affectance_matrix(linear, params))
    outgoing = AffectanceAccumulator(cache.affectance_matrix(uniform, params).T)
    selected: list[Link] = []
    used_nodes: set[int] = set()
    for index, candidate in enumerate(link_list):
        if exclusive_nodes and (
            candidate.sender.id in used_nodes or candidate.receiver.id in used_nodes
        ):
            continue
        if incoming.total(index) + outgoing.total(index) <= tau:
            incoming.add(index)
            outgoing.add(index)
            selected.append(candidate)
            used_nodes.add(candidate.sender.id)
            used_nodes.add(candidate.receiver.id)
    return CapacityResult(LinkSet(selected), len(link_list), tau)


def select_power_controllable_subset(
    links: Sequence[Link] | LinkSet,
    params: SINRParameters,
    *,
    tau: float = 0.5,
    margin: float = 1.05,
    exclusive_nodes: bool = True,
) -> LinkSet:
    """Capacity selection followed by pruning to exact power-controllability.

    The Eqn. 3 admission rule guarantees a power-controllable set for a
    sufficiently small ``tau``; with practical thresholds the guarantee can be
    marginal, so this helper verifies the exact spectral condition (at the
    requested SINR ``margin``) and greedily drops the longest admitted links
    until it holds.  The result is always solvable by ``solve_power``.
    """
    from .power_solver import is_power_controllable

    selected = list(
        select_feasible_subset(links, params, tau=tau, exclusive_nodes=exclusive_nodes).selected
    )
    selected.sort(key=lambda link: (link.length, link.endpoint_ids))
    while len(selected) > 1 and not is_power_controllable(selected, params, margin=margin):
        selected.pop()
    return LinkSet(selected)


def pair_weight(first: Link, second: Link, params: SINRParameters) -> float:
    """The weight ``f_first(second)`` of Section 8.2.2.

    ``f_l(l') = a^U_{l'}(l) + a^L_l(l')`` when ``l`` is no longer than ``l'``,
    and 0 otherwise.
    """
    if first.length > second.length:
        return 0.0
    uniform = _default_uniform([first, second], params)
    linear = _default_linear(params)
    incoming = affectance_between_links(second, first, uniform, params)
    outgoing = affectance_between_links(first, second, linear, params)
    return incoming + outgoing


def total_pair_weight(link: Link, others: Sequence[Link], params: SINRParameters) -> float:
    """``f_link(others) = sum of f_link(other)`` over the given links."""
    return sum(pair_weight(link, other, params) for other in others if other != link)


@dataclass(frozen=True)
class FirstFitResult:
    """Outcome of the first-fit scheduler.

    Attributes:
        schedule: the produced schedule.
        power: the power assignment it was built against.
    """

    schedule: Schedule
    power: PowerAssignment


def first_fit_schedule(
    links: Sequence[Link] | LinkSet,
    power: PowerAssignment,
    params: SINRParameters,
    *,
    exclusive_nodes: bool = True,
    state: NetworkState | None = None,
) -> Schedule:
    """Greedy first-fit scheduling of a link set under a fixed power assignment.

    Links are processed in descending length order; each goes into the first
    slot where (a) the slot's total affectance on every member, including the
    newcomer, stays at most 1, and (b) optionally no node is reused within the
    slot.  A new slot is opened when no existing slot fits.

    The pairwise affectance matrix is computed once over the whole input;
    each slot keeps an incremental :class:`AffectanceAccumulator`, so a
    placement test costs O(slot size) and an accepted link one O(m) vector
    update - the seed implementation rebuilt the full slot matrix per test.
    ``state`` optionally shares a node-geometry store with the caller (see
    :func:`select_feasible_subset`).
    """
    link_list = sorted(links, key=lambda link: (-link.length, link.endpoint_ids))
    schedule = Schedule()
    cache = LinkArrayCache(link_list, state=state)
    matrix = cache.affectance_matrix(power, params)
    slot_accumulators: list[AffectanceAccumulator] = []
    slot_nodes: list[set[int]] = []
    for index, link in enumerate(link_list):
        placed = False
        for slot_index, accumulator in enumerate(slot_accumulators):
            if exclusive_nodes and (
                link.sender.id in slot_nodes[slot_index]
                or link.receiver.id in slot_nodes[slot_index]
            ):
                continue
            if accumulator.max_total_with(index) <= 1.0 + 1e-9:
                accumulator.add(index)
                slot_nodes[slot_index].update(link.endpoint_ids)
                schedule.assign(link, slot_index)
                placed = True
                break
        if not placed:
            accumulator = AffectanceAccumulator(matrix, members=(index,))
            slot_accumulators.append(accumulator)
            slot_nodes.append(set(link.endpoint_ids))
            schedule.assign(link, len(slot_accumulators) - 1)
    return schedule


def first_fit_schedule_result(
    links: Sequence[Link] | LinkSet,
    power: PowerAssignment,
    params: SINRParameters,
    *,
    exclusive_nodes: bool = True,
) -> FirstFitResult:
    """Convenience wrapper returning the schedule together with its power."""
    schedule = first_fit_schedule(links, power, params, exclusive_nodes=exclusive_nodes)
    return FirstFitResult(schedule=schedule, power=power)
