"""Bi-trees: aggregation + dissemination trees sharing links and schedule.

Definition 1 of the paper: a *bi-tree* is an aggregation tree (a convergecast
tree whose schedule respects the leaf-to-root order) together with the
complementary dissemination tree, which uses the same links in the opposite
direction with the schedule reversed.  With a bi-tree, aggregation, broadcast
and any pairwise communication complete within (twice) the schedule length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from ..exceptions import ScheduleError
from ..geometry import Node
from ..links import Link, LinkSet
from .schedule import Schedule

__all__ = ["BiTree"]


@dataclass
class BiTree:
    """A rooted spanning bi-tree over a set of wireless nodes.

    Attributes:
        nodes: mapping from node id to node, covering every spanned node.
        root_id: id of the root (the last node to remain active).
        parent: mapping from non-root node id to its parent's id.
        aggregation_schedule: slot assignment of the child->parent links.
    """

    nodes: dict[int, Node]
    root_id: int
    parent: dict[int, int]
    aggregation_schedule: Schedule = field(default_factory=Schedule)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_parent_map(
        cls,
        nodes: Sequence[Node] | Iterable[Node],
        root_id: int,
        parent: Mapping[int, int],
        slots: Mapping[int, int] | None = None,
    ) -> "BiTree":
        """Build a bi-tree from a parent map and optional per-node slot stamps.

        Args:
            nodes: all spanned nodes.
            root_id: id of the root node.
            parent: maps each non-root node id to its parent id.
            slots: optional map from a non-root node id to the schedule slot of
                its outgoing (child -> parent) link.  Nodes missing from the
                map get slot 0.
        """
        node_map = {node.id: node for node in nodes}
        if root_id not in node_map:
            raise ScheduleError(f"root id {root_id} is not among the nodes")
        schedule = Schedule()
        for child_id, parent_id in parent.items():
            if child_id not in node_map or parent_id not in node_map:
                raise ScheduleError(f"parent map references unknown node ({child_id}->{parent_id})")
            link = Link(node_map[child_id], node_map[parent_id])
            slot = 0 if slots is None else int(slots.get(child_id, 0))
            schedule.assign(link, slot)
        return cls(
            nodes=node_map,
            root_id=root_id,
            parent=dict(parent),
            aggregation_schedule=schedule,
        )

    # -- basic structure ----------------------------------------------------

    @property
    def root(self) -> Node:
        """The root node."""
        return self.nodes[self.root_id]

    @property
    def size(self) -> int:
        """Number of spanned nodes."""
        return len(self.nodes)

    def aggregation_links(self) -> LinkSet:
        """The child -> parent links (the convergecast tree)."""
        return self.aggregation_schedule.links()

    def dissemination_links(self) -> LinkSet:
        """The parent -> child links (the broadcast tree)."""
        return self.aggregation_links().duals()

    def all_links(self) -> LinkSet:
        """Both directions of every tree edge."""
        return self.aggregation_links().union(self.dissemination_links())

    @property
    def dissemination_schedule(self) -> Schedule:
        """Schedule of the dissemination tree: same slots in reverse order."""
        reversed_slots = self.aggregation_schedule.reversed()
        return Schedule({link.dual: slot for link, slot in reversed_slots.items()})

    def slot_stamps(self) -> dict[int, int]:
        """Per-child slot stamp of its outgoing (child -> parent) link.

        Each non-root node has exactly one outgoing aggregation link, so the
        schedule is equivalently a map keyed by the child id; repair and the
        dynamics driver rebuild trees from this form.
        """
        return {link.sender.id: slot for link, slot in self.aggregation_schedule.items()}

    def children(self, node_id: int) -> list[int]:
        """Ids of the children of ``node_id``."""
        return sorted(child for child, parent in self.parent.items() if parent == node_id)

    def parent_of(self, node_id: int) -> int | None:
        """Parent id of ``node_id`` (``None`` for the root)."""
        if node_id == self.root_id:
            return None
        return self.parent.get(node_id)

    def depth_of(self, node_id: int) -> int:
        """Number of hops from ``node_id`` to the root.

        Raises:
            ScheduleError: if the parent chain does not reach the root (cycle
                or disconnection).
        """
        depth = 0
        current = node_id
        visited = {current}
        while current != self.root_id:
            current = self.parent.get(current, None)
            if current is None or current in visited:
                raise ScheduleError(f"node {node_id} is not connected to the root")
            visited.add(current)
            depth += 1
        return depth

    def depth(self) -> int:
        """Maximum node depth (tree height in hops)."""
        return max((self.depth_of(node_id) for node_id in self.nodes), default=0)

    def path_to_root(self, node_id: int) -> list[int]:
        """Node ids on the path from ``node_id`` to the root, inclusive."""
        path = [node_id]
        while path[-1] != self.root_id:
            nxt = self.parent.get(path[-1])
            if nxt is None or nxt in path:
                raise ScheduleError(f"node {node_id} is not connected to the root")
            path.append(nxt)
        return path

    def subtree_nodes(self, node_id: int) -> set[int]:
        """Ids of all descendants of ``node_id``, including itself."""
        result = {node_id}
        frontier = [node_id]
        children_map: dict[int, list[int]] = {}
        for child, parent in self.parent.items():
            children_map.setdefault(parent, []).append(child)
        while frontier:
            current = frontier.pop()
            for child in children_map.get(current, ()):
                if child not in result:
                    result.add(child)
                    frontier.append(child)
        return result

    def degrees(self) -> dict[int, int]:
        """Undirected tree degree of each node (children count + 1 for parent)."""
        degree = {node_id: 0 for node_id in self.nodes}
        for child, parent in self.parent.items():
            degree[child] += 1
            degree[parent] += 1
        return degree

    def max_degree(self) -> int:
        """Largest undirected degree in the tree."""
        return max(self.degrees().values(), default=0)

    # -- graph views ---------------------------------------------------------

    def to_digraph(self) -> nx.DiGraph:
        """A networkx digraph containing both directions of every tree edge."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes.keys())
        for link in self.all_links():
            graph.add_edge(link.sender.id, link.receiver.id, length=link.length)
        return graph

    def is_strongly_connected(self) -> bool:
        """Whether the bidirectional link set strongly connects all nodes."""
        if len(self.nodes) <= 1:
            return True
        return nx.is_strongly_connected(self.to_digraph())

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check the structural bi-tree invariants.

        Raises:
            ScheduleError: if the parent map is not a spanning in-tree rooted
                at ``root_id`` or the schedule does not cover the tree links.
        """
        if self.root_id not in self.nodes:
            raise ScheduleError("root id missing from node map")
        if self.root_id in self.parent:
            raise ScheduleError("root must not have a parent")
        expected_children = set(self.nodes) - {self.root_id}
        if set(self.parent) != expected_children:
            missing = expected_children - set(self.parent)
            extra = set(self.parent) - expected_children
            raise ScheduleError(
                f"parent map mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
            )
        for node_id in self.nodes:
            self.depth_of(node_id)  # raises on cycles / disconnection
        self.aggregation_schedule.validate_covers(
            Link(self.nodes[c], self.nodes[p]) for c, p in self.parent.items()
        )

    def validate_aggregation_order(self) -> None:
        """Check the aggregation-tree scheduling order.

        Every link (x, y) must be scheduled strictly after every link whose
        sender is a proper descendant of x.

        Raises:
            ScheduleError: when the order is violated.
        """
        for child_id, parent_id in self.parent.items():
            link = Link(self.nodes[child_id], self.nodes[parent_id])
            own_slot = self.aggregation_schedule.slot_of(link)
            for descendant in self.subtree_nodes(child_id) - {child_id}:
                descendant_parent = self.parent[descendant]
                descendant_link = Link(self.nodes[descendant], self.nodes[descendant_parent])
                descendant_slot = self.aggregation_schedule.slot_of(descendant_link)
                if descendant_slot >= own_slot:
                    raise ScheduleError(
                        f"aggregation order violated: link {descendant_link.endpoint_ids} "
                        f"(slot {descendant_slot}) must precede {link.endpoint_ids} (slot {own_slot})"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BiTree(n={self.size}, root={self.root_id}, "
            f"schedule_length={self.aggregation_schedule.length})"
        )
