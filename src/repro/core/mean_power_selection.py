"""Feasible-subset selection with mean power by random sampling (Section 8.1).

Given the O(1)-sparse candidate set ``T(M)``, the average affectance under
mean power is O(Upsilon) (Lemma 14), so sampling every link independently with
probability ``Theta(1 / Upsilon)`` leaves each sampled link with expected
affectance below a constant; the links that actually succeed on the channel
form a feasible set of expected size ``Omega(|T(M)| / Upsilon)`` (Lemma 15).

The implementation runs the sampling as a real slot-pair on the SINR channel:
a data slot in which every sampled link transmits with mean power, and an
acknowledgment slot confirming to each sender whether its transmission got
through (the paper notes this extra acknowledgment slot explicitly in the
proof of Theorem 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..links import Link, LinkSet
from ..sinr import Channel, MeanPower, PowerAssignment, SINRParameters, Transmission
from .quantities import upsilon

__all__ = ["MeanPowerSelectionResult", "MeanPowerSelector"]


@dataclass(frozen=True)
class MeanPowerSelectionResult:
    """Outcome of one mean-power sampling selection.

    Attributes:
        selected: the links that succeeded in both directions (feasible under
            mean power by construction).
        power: the mean-power assignment used.
        slots_used: channel slots consumed by the selection.
        attempts: how many slot-pairs were run before a non-empty set emerged.
        probability: the per-link sampling probability used.
    """

    selected: LinkSet
    power: PowerAssignment
    slots_used: int
    attempts: int
    probability: float


class MeanPowerSelector:
    """Samples a feasible subset of a sparse link set under mean power.

    Args:
        params: physical-model parameters.
        probability: per-link sampling probability.  ``None`` (default) uses
            ``min(0.5, sampling_scale / Upsilon)`` as in Lemma 15.
        sampling_scale: numerator of the default probability.
    """

    def __init__(
        self,
        params: SINRParameters,
        *,
        probability: float | None = None,
        sampling_scale: float = 2.0,
    ):
        if probability is not None and not (0.0 < probability <= 1.0):
            raise ValueError("probability must be in (0, 1]")
        if sampling_scale <= 0:
            raise ValueError("sampling_scale must be positive")
        self.params = params
        self.probability = probability
        self.sampling_scale = sampling_scale

    def sampling_probability(self, n: int, delta: float) -> float:
        """The default ``Theta(1 / Upsilon)`` sampling probability."""
        if self.probability is not None:
            return self.probability
        return min(0.5, self.sampling_scale / max(upsilon(n, delta), 1.0))

    def select(
        self,
        candidates: Sequence[Link] | LinkSet,
        rng: np.random.Generator,
        *,
        n_hint: int | None = None,
        delta_hint: float | None = None,
        max_attempts: int = 5,
        power: PowerAssignment | None = None,
    ) -> MeanPowerSelectionResult:
        """Run slot-pairs of mean-power sampling until a non-empty set succeeds.

        Args:
            candidates: the candidate links (typically ``T(M)``).
            rng: source of randomness.
            n_hint: the network size used in the Upsilon estimate (defaults to
                the number of candidate nodes).
            delta_hint: the distance ratio used in the Upsilon estimate
                (defaults to the candidates' length spread).
            max_attempts: slot-pairs to try before returning an empty result.
            power: mean-power assignment to use (defaults to a noise-safe one
                scaled to the candidates' longest link).  Callers that verify
                schedules later should pass the same assignment they verify
                with, because mean-power feasibility is not scale-invariant in
                the presence of noise.
        """
        link_list = list(candidates)
        empty_power = MeanPower.for_max_length(self.params, 1.0)
        if not link_list:
            return MeanPowerSelectionResult(LinkSet(), empty_power, 0, 0, 0.0)

        longest = max(link.length for link in link_list)
        shortest = min(link.length for link in link_list)
        n = n_hint if n_hint is not None else len({l.sender.id for l in link_list} | {l.receiver.id for l in link_list})
        delta = delta_hint if delta_hint is not None else max(longest / max(shortest, 1e-12), 1.0)
        probability = self.sampling_probability(max(n, 2), max(delta, 1.0))
        if power is None:
            power = MeanPower.for_max_length(self.params, max(longest, 1.0))
        channel = Channel(self.params)

        slots_used = 0
        for attempt in range(1, max_attempts + 1):
            sampled = [link for link in link_list if rng.random() < probability]
            first_slot = slots_used  # data/ack slot indices for fading models
            slots_used += 2
            if not sampled:
                continue
            selected = self._run_slot_pair(sampled, power, channel, first_slot)
            if selected:
                return MeanPowerSelectionResult(
                    selected=LinkSet(selected),
                    power=power,
                    slots_used=slots_used,
                    attempts=attempt,
                    probability=probability,
                )
        return MeanPowerSelectionResult(LinkSet(), power, slots_used, max_attempts, probability)

    # -- internals ----------------------------------------------------------

    def _run_slot_pair(
        self,
        sampled: Sequence[Link],
        power: PowerAssignment,
        channel: Channel,
        first_slot: int = 0,
    ) -> list[Link]:
        """Data + acknowledgment slot for the sampled links; return the winners."""
        by_sender: dict[int, Link] = {}
        for link in sampled:
            # One transmission per radio per slot.
            by_sender.setdefault(link.sender.id, link)
        attempts = list(by_sender.values())

        data_transmissions = [
            Transmission(sender=link.sender, power=power.power(link), message=link)
            for link in attempts
        ]
        data_receptions = channel.resolve(
            data_transmissions, [link.receiver for link in attempts], slot=first_slot
        )
        data_ok = [
            link
            for link in attempts
            if data_receptions.get(link.receiver.id) is not None
            and data_receptions[link.receiver.id].sender.id == link.sender.id
        ]
        if not data_ok:
            return []
        ack_transmissions = [
            Transmission(sender=link.receiver, power=power.power(link), message=link)
            for link in data_ok
        ]
        ack_receptions = channel.resolve(
            ack_transmissions, [link.sender for link in data_ok], slot=first_slot + 1
        )
        return [
            link
            for link in data_ok
            if ack_receptions.get(link.sender.id) is not None
            and ack_receptions[link.sender.id].sender.id == link.receiver.id
        ]
