"""Power assignment computation for a feasible link set (Section 8.2.3).

The paper uses, as a black box, any algorithm that converges to a feasible
power assignment for a set of links known to be power-controllable - citing
the distributed power-control dynamics of Lotker et al. [17] and Dams et al.
[2].  We substitute the canonical member of that family:

* an exact feasibility test based on the spectral radius of the normalized
  gain matrix: the set admits a feasible power assignment iff
  ``rho(B) < 1`` where ``B[i, j] = beta * G[i, j] / G[i, i]`` for ``i != j``;
* the closed-form minimal solution ``P = (I - B)^{-1} c`` with
  ``c[i] = beta * N / G[i, i]``;
* the Foschini-Miljanic iteration, the distributed dynamic the cited papers
  analyze, which converges to that same fixed point whenever it exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConvergenceError, InfeasiblePowerError
from ..links import Link
from ..sinr import ExplicitPower, LinkArrayCache, SINRParameters

__all__ = [
    "gain_matrix",
    "spectral_radius",
    "is_power_controllable",
    "solve_power",
    "foschini_miljanic",
    "PowerControlResult",
]


def gain_matrix(links: Sequence[Link], params: SINRParameters) -> np.ndarray:
    """Channel gain matrix ``G`` with ``G[i, j] = 1 / d(sender_j, receiver_i)**alpha``.

    Row ``i`` is link ``i``'s receiver; column ``j`` is link ``j``'s sender.
    Pairs with coincident sender and receiver positions get an infinite gain.

    ``links`` may be a :class:`~repro.sinr.arrays.LinkArrayCache` to reuse its
    cached distance matrix; a fresh writable array is returned either way.
    """
    if len(links) == 0:
        return np.zeros((0, 0), dtype=float)
    cache = links if isinstance(links, LinkArrayCache) else LinkArrayCache(links)
    return np.array(cache.gain_matrix(params))


def _normalized_interference_matrix(
    links: Sequence[Link], params: SINRParameters, margin: float
) -> tuple[np.ndarray, np.ndarray]:
    """The matrix ``B`` and vector ``c`` of the power-control fixed point."""
    cache = links if isinstance(links, LinkArrayCache) else LinkArrayCache(links)
    gains = cache.gain_matrix(params)
    diag = np.diag(gains).copy()
    if np.any(~np.isfinite(diag)) or np.any(diag <= 0):
        raise InfeasiblePowerError("some link has a degenerate (zero-length) geometry")
    same_sender = cache.same_sender_mask()
    off = np.where(same_sender, 0.0, gains)
    np.fill_diagonal(off, 0.0)
    if np.any(~np.isfinite(off)):
        raise InfeasiblePowerError("two distinct links share a sender/receiver position")
    target = params.beta * margin
    matrix = target * off / diag[:, None]
    constant = target * params.noise / diag
    return matrix, constant


def spectral_radius(matrix: np.ndarray) -> float:
    """Largest absolute eigenvalue of a square matrix (0 for empty input)."""
    if matrix.size == 0:
        return 0.0
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def is_power_controllable(
    links: Sequence[Link], params: SINRParameters, margin: float = 1.0
) -> bool:
    """Whether some power assignment makes the set feasible with the given margin.

    Structural conflicts (shared nodes) are not checked here - they concern
    schedulability of one physical slot, not Eqn. (1); use
    ``repro.sinr.is_schedulable_slot`` on the solved assignment for that.
    """
    if len(links) <= 1:
        return True
    try:
        matrix, _ = _normalized_interference_matrix(links, params, margin)
    except InfeasiblePowerError:
        return False
    return spectral_radius(matrix) < 1.0 - 1e-12


def solve_power(
    links: Sequence[Link], params: SINRParameters, margin: float = 1.0
) -> ExplicitPower:
    """Minimal feasible power assignment for a power-controllable link set.

    Args:
        links: the link set (each link's SINR must reach ``margin * beta``).
        params: physical-model parameters.
        margin: extra SINR headroom factor (1.0 = exactly the threshold).

    Raises:
        InfeasiblePowerError: if no power assignment achieves the target SINR.
    """
    link_list = list(links)
    if not link_list:
        return ExplicitPower({})
    if len(link_list) == 1:
        only = link_list[0]
        level = params.min_power_for(only.length) if params.noise > 0 else only.length**params.alpha
        return ExplicitPower({only.endpoint_ids: max(level, 1e-12)})

    matrix, constant = _normalized_interference_matrix(link_list, params, margin)
    if spectral_radius(matrix) >= 1.0 - 1e-12:
        raise InfeasiblePowerError(
            f"link set of size {len(link_list)} is not power-controllable at margin {margin}"
        )
    identity = np.eye(matrix.shape[0])
    if params.noise > 0:
        powers = np.linalg.solve(identity - matrix, constant)
    else:
        # Without noise the feasible powers form a cone; use the Perron vector
        # of the interference matrix scaled away from the boundary.
        eigenvalues, eigenvectors = np.linalg.eig(matrix + 1e-9 * identity)
        index = int(np.argmax(np.abs(eigenvalues)))
        vector = np.abs(np.real(eigenvectors[:, index]))
        powers = vector / max(vector.max(), 1e-300)
        powers = np.maximum(powers, 1e-9)
        # Scale so every link meets the SINR constraint exactly with slack.
        powers = _rescale_for_feasibility(powers, matrix, constant)
    powers = np.maximum(powers, 1e-300)
    return ExplicitPower({link.endpoint_ids: float(p) for link, p in zip(link_list, powers)})


def _rescale_for_feasibility(
    powers: np.ndarray, matrix: np.ndarray, constant: np.ndarray
) -> np.ndarray:
    """Scale a candidate power vector until ``P >= B P + c`` holds component-wise."""
    required = matrix @ powers + constant
    ratio = np.max(np.where(powers > 0, required / powers, np.inf))
    if not np.isfinite(ratio) or ratio <= 0:
        return powers
    return powers * ratio * 1.000001


@dataclass(frozen=True)
class PowerControlResult:
    """Outcome of the iterative Foschini-Miljanic dynamic.

    Attributes:
        power: the converged assignment.
        iterations: number of synchronous update rounds executed.
        converged: whether the stopping tolerance was met within the budget.
    """

    power: ExplicitPower
    iterations: int
    converged: bool


def foschini_miljanic(
    links: Sequence[Link],
    params: SINRParameters,
    *,
    margin: float = 1.0,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
    raise_on_failure: bool = True,
) -> PowerControlResult:
    """Distributed iterative power control (the [17]/[2] substitute).

    Every link repeatedly sets its power to the smallest value that would meet
    its SINR target given the interference it currently measures:
    ``P_i <- margin * beta * (N + I_i) / G_ii``.  The iteration converges to the
    minimal feasible assignment exactly when one exists.

    Raises:
        ConvergenceError: if ``raise_on_failure`` and the iteration diverges or
            fails to reach the tolerance within ``max_iterations``.
    """
    link_list = list(links)
    if not link_list:
        return PowerControlResult(ExplicitPower({}), 0, True)
    matrix, constant = _normalized_interference_matrix(link_list, params, margin)
    m = len(link_list)
    if params.noise > 0:
        powers = constant.copy()
    else:
        powers = np.full(m, 1.0)
    converged = False
    iterations = 0
    ceiling = 1e280
    for iterations in range(1, max_iterations + 1):
        updated = matrix @ powers + constant
        if params.noise == 0:
            updated = np.maximum(updated, 1e-12)
        change = np.max(np.abs(updated - powers) / np.maximum(np.abs(powers), 1e-30))
        powers = updated
        if np.any(powers > ceiling):
            break
        if change < tolerance:
            converged = True
            break
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"Foschini-Miljanic did not converge in {max_iterations} iterations "
            f"(the link set is likely not power-controllable)"
        )
    powers = np.maximum(powers, 1e-300)
    assignment = ExplicitPower(
        {link.endpoint_ids: float(p) for link, p in zip(link_list, powers)}
    )
    return PowerControlResult(power=assignment, iterations=iterations, converged=converged)
