"""``Distr-Cap``: distributed feasible-subset selection with arbitrary power
(Section 8.2).

The algorithm distributes Kesselheim's centralized capacity selection
(Eqn. 3).  Links are processed in phases by length class - exactly the classes
in which ``Init`` formed them - so that, as in the centralized algorithm,
every link is examined only against links no longer than itself.  Each phase
is a slot-pair:

* **slot 1**: the already-selected set ``T'`` transmits with *linear* power;
  candidate links of the current class transmit with probability ``p``, also
  with linear power.  A candidate's receiver records a success when the
  affectance it measures (from everything else transmitting) is at most
  ``tau / 4`` - a quantity the receiver can derive from the interference power
  it observes, its link length and the globally known power scheme.
* **slot 2**: the duals of ``T'`` and of the slot-1 survivors transmit, again
  with linear power; success requires measured affectance at most
  ``gamma * tau / 4``.

Links surviving both slots join ``T'``.  Lemmas 17-18 show the final ``T'``
satisfies Eqn. 3 and is therefore power-controllable; Theorem 20 shows it
captures a constant fraction of the optimum.  The practical implementation
additionally excludes candidates whose endpoints already appear in ``T'``
(each node knows its own involvement), which enforces the "one link per node
per slot" structure the final schedule needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..links import Link, LinkSet, length_class_index
from ..sinr import (
    MAX_CACHED_CHANNEL_NODES,
    LinearPower,
    LinkArrayCache,
    SINRParameters,
)
from ..state import DecodeWorkspace, NetworkState, TiledNetworkState
from .power_solver import is_power_controllable

__all__ = ["DistrCapResult", "DistrCapSelector"]


@dataclass(frozen=True)
class DistrCapResult:
    """Outcome of a ``Distr-Cap`` run.

    Attributes:
        selected: the selected link set ``T'``.
        slots_used: channel slots consumed (two per phase).
        phases: number of length-class phases executed.
        power_controllable: whether the selected set passed the exact
            power-control feasibility test (it should, by Lemmas 17-18).
    """

    selected: LinkSet
    slots_used: int
    phases: int
    power_controllable: bool


class DistrCapSelector:
    """Distributed capacity selection with arbitrary (post-computed) power.

    Args:
        params: physical-model parameters.
        constants: protocol constants; ``distr_cap_tau`` is the admission
            threshold, ``duality_gamma`` the dual-slot tightening,
            ``selection_probability`` the per-candidate transmission
            probability in slot 1.
    """

    __slots__ = ('_workspace', 'constants', 'params')

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
    ):
        self.params = params
        self.constants = constants
        self._workspace = DecodeWorkspace()

    def select(
        self,
        candidates: Sequence[Link] | LinkSet,
        rng: np.random.Generator,
        *,
        link_rounds: Mapping[tuple[int, int], int] | None = None,
    ) -> DistrCapResult:
        """Run the phased selection over the candidate set.

        Args:
            candidates: candidate links (typically ``T(M)``).
            rng: source of randomness.
            link_rounds: optional mapping from link endpoint ids to the
                ``Init`` round in which the link was formed; links formed in
                the same round share a length class and are processed in the
                same phase.  When absent, phases are derived from link lengths.
        """
        link_list = list(candidates)
        if not link_list:
            return DistrCapResult(LinkSet(), 0, 0, True)

        linear = LinearPower.for_noise(self.params)
        # One node-geometry store for the whole run: the node-to-node
        # distance matrix is materialized once, and every phase slot's
        # LinkArrayCache (over its oriented sub-universe) gathers its
        # sender->receiver block from it - bitwise the hypot values it would
        # otherwise recompute per slot.  Bounded like every other O(n^2)
        # upgrade site: past MAX_CACHED_CHANNEL_NODES endpoints the slots
        # fall back to computing their own small blocks.  Under
        # store="tiled" the state is O(n) with no matrices to materialize
        # and no ceiling: slots share its slot map and compute exact
        # rectangles from coordinates at any n.
        state = self._geometry_state(link_list)
        phases = self._partition_into_phases(link_list, link_rounds)
        tau = self.constants.distr_cap_tau
        gamma = self.constants.duality_gamma
        probability = self.constants.selection_probability

        selected: list[Link] = []
        used_nodes: set[int] = set()
        slots_used = 0
        for _, phase_links in sorted(phases.items()):
            slots_used += 2
            eligible = [
                link
                for link in phase_links
                if link.sender.id not in used_nodes and link.receiver.id not in used_nodes
            ]
            if not eligible:
                continue
            survivors = self._phase_slot(
                eligible, selected, linear, rng, probability, tau / 4.0, state, forward=True
            )
            if not survivors:
                continue
            winners = self._phase_slot(
                survivors, selected, linear, rng, 1.0, gamma * tau / 4.0, state, forward=False
            )
            for link in winners:
                if link.sender.id in used_nodes or link.receiver.id in used_nodes:
                    continue
                selected.append(link)
                used_nodes.add(link.sender.id)
                used_nodes.add(link.receiver.id)

        selected_set = LinkSet(selected)
        controllable = is_power_controllable(list(selected_set), self.params)
        return DistrCapResult(
            selected=selected_set,
            slots_used=slots_used,
            phases=len(phases),
            power_controllable=controllable,
        )

    # -- internals ----------------------------------------------------------

    def _geometry_state(self, link_list: Sequence[Link]) -> NetworkState | None:
        """The run's shared node-geometry store (also used by the netsim
        overlay, so both paths gather bitwise-identical distance blocks)."""
        if self.params.store == "tiled":
            return TiledNetworkState.from_links(link_list)
        state = NetworkState.from_links(link_list)
        if len(state) <= MAX_CACHED_CHANNEL_NODES:
            state.distance_matrix()
            return state
        return None

    def _partition_into_phases(
        self,
        links: Sequence[Link],
        link_rounds: Mapping[tuple[int, int], int] | None,
    ) -> dict[int, list[Link]]:
        phases: dict[int, list[Link]] = {}
        shortest = min(link.length for link in links)
        for link in links:
            if link_rounds is not None and link.endpoint_ids in link_rounds:
                key = int(link_rounds[link.endpoint_ids])
            else:
                key = length_class_index(link.length, min_length=min(shortest, 1.0))
            phases.setdefault(key, []).append(link)
        return phases

    def _phase_slot(
        self,
        candidates: Sequence[Link],
        selected: Sequence[Link],
        linear: LinearPower,
        rng: np.random.Generator,
        probability: float,
        threshold: float,
        state: NetworkState | None,
        *,
        forward: bool,
    ) -> list[Link]:
        """One slot of a phase; returns the candidates whose check passed.

        In the forward slot the candidates and the selected set transmit in
        their link direction; in the dual slot both transmit in the reverse
        direction.  A candidate passes when the affectance measured at the
        receiving endpoint (from every other transmitter in the slot) is at
        most ``threshold``.
        """
        attempting = [link for link in candidates if rng.random() < probability]
        if not attempting:
            return []

        def oriented(link: Link) -> Link:
            return link if forward else link.dual

        # All transmitters in this slot: the selected set plus the attempting
        # candidates, each transmitting on its (oriented) link with linear
        # power.  Linear power of a link equals that of its dual (same length).
        # Only the transmitters x attempting block of pairwise affectances is
        # ever read, so compute exactly that from the slot's LinkArrayCache
        # (same-sender pairs are zero there, matching the scalar rule that a
        # sender does not affect itself).
        universe = [oriented(link) for link in list(selected) + list(attempting)]
        transmitter_indices: list[int] = []
        seen_senders: set[int] = set()
        for index, o in enumerate(universe):
            if o.sender.id in seen_senders:
                continue
            seen_senders.add(o.sender.id)
            transmitter_indices.append(index)

        cache = LinkArrayCache(universe, state=state)
        offset = len(universe) - len(attempting)
        block = cache.affectance_block(
            transmitter_indices,
            np.arange(offset, len(universe)),
            linear,
            self.params,
            workspace=self._workspace,
        )

        survivors: list[Link] = []
        for position, link in enumerate(attempting):
            target = universe[offset + position]
            if target.receiver.id in seen_senders:
                # The receiving endpoint is itself transmitting in this slot;
                # it cannot measure anything (half-duplex).
                continue
            # Accumulate in transmitter order with the seed's early exit so
            # the floating-point comparison against the threshold is
            # reproduced exactly.
            total = 0.0
            for value in block[:, position]:
                total += value
                if total > threshold:
                    break
            if total <= threshold:
                survivors.append(link)
        return survivors
