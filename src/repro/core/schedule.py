"""Transmission schedules.

A *schedule* partitions a link set into slots; it is valid when every slot's
links are simultaneously feasible under the schedule's power assignment.  The
number of (non-empty) slots is the schedule length - the paper's measure of
the quality of a connectivity structure.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from ..exceptions import ScheduleError
from ..links import Link, LinkSet
from ..sinr import PowerAssignment, SINRParameters, feasibility_report

__all__ = ["Schedule"]


class Schedule:
    """An assignment of links to integer slots.

    Args:
        assignment: optional initial mapping from link to slot index.
    """

    def __init__(self, assignment: Mapping[Link, int] | None = None):
        self._slots: dict[Link, int] = {}
        if assignment:
            for link, slot in assignment.items():
                self.assign(link, slot)

    # -- construction -----------------------------------------------------

    def assign(self, link: Link, slot: int) -> None:
        """Assign ``link`` to ``slot`` (overwrites any previous assignment)."""
        if slot < 0:
            raise ScheduleError(f"slot indices must be non-negative, got {slot}")
        self._slots[link] = int(slot)

    def merge(self, other: "Schedule", offset: int = 0) -> "Schedule":
        """A new schedule containing both assignments, ``other`` shifted by ``offset``."""
        merged = Schedule(dict(self._slots))
        for link, slot in other.items():
            merged.assign(link, slot + offset)
        return merged

    def normalized(self) -> "Schedule":
        """Renumber the used slots consecutively from 0, preserving order."""
        used = sorted(set(self._slots.values()))
        remap = {slot: index for index, slot in enumerate(used)}
        return Schedule({link: remap[slot] for link, slot in self._slots.items()})

    def relabeled(self, mapping: Callable[[int], int]) -> "Schedule":
        """A new schedule with every slot index passed through ``mapping``."""
        return Schedule({link: mapping(slot) for link, slot in self._slots.items()})

    def reversed(self) -> "Schedule":
        """A new schedule with the slot order reversed (slot s -> max_slot - s).

        This is how a dissemination schedule is obtained from an aggregation
        schedule (Definition 1).
        """
        if not self._slots:
            return Schedule()
        top = max(self._slots.values())
        return Schedule({link: top - slot for link, slot in self._slots.items()})

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, link: Link) -> bool:
        return link in self._slots

    def __iter__(self) -> Iterator[Link]:
        return iter(self._slots)

    def items(self) -> Iterable[tuple[Link, int]]:
        """(link, slot) pairs."""
        return self._slots.items()

    def slot_of(self, link: Link) -> int:
        """Slot assigned to ``link``.

        Raises:
            ScheduleError: if the link is not scheduled.
        """
        try:
            return self._slots[link]
        except KeyError as exc:
            raise ScheduleError(f"link {link.endpoint_ids} is not scheduled") from exc

    def links(self) -> LinkSet:
        """All scheduled links."""
        return LinkSet(self._slots.keys())

    def used_slots(self) -> list[int]:
        """Sorted list of distinct slot indices in use."""
        return sorted(set(self._slots.values()))

    @property
    def length(self) -> int:
        """Number of distinct slots used (the schedule length)."""
        return len(set(self._slots.values()))

    @property
    def span(self) -> int:
        """One plus the largest slot index used (0 for an empty schedule)."""
        if not self._slots:
            return 0
        return max(self._slots.values()) + 1

    def slot_groups(self) -> dict[int, LinkSet]:
        """Mapping from slot index to the links assigned to it."""
        groups: dict[int, LinkSet] = {}
        for link, slot in self._slots.items():
            groups.setdefault(slot, LinkSet()).add(link)
        return groups

    def links_in_slot(self, slot: int) -> LinkSet:
        """Links assigned to a specific slot (possibly empty)."""
        return LinkSet(link for link, s in self._slots.items() if s == slot)

    # -- validation ---------------------------------------------------------

    def infeasible_slots(
        self,
        power: PowerAssignment,
        params: SINRParameters,
        *,
        check_structure: bool = True,
    ) -> list[int]:
        """Slot indices whose link groups violate feasibility under ``power``."""
        bad: list[int] = []
        for slot, group in sorted(self.slot_groups().items()):
            report = feasibility_report(list(group), power, params, check_structure=check_structure)
            if not report.feasible:
                bad.append(slot)
        return bad

    def is_feasible(
        self,
        power: PowerAssignment,
        params: SINRParameters,
        *,
        check_structure: bool = True,
    ) -> bool:
        """Whether every slot group is feasible under ``power``."""
        return not self.infeasible_slots(power, params, check_structure=check_structure)

    def validate_covers(self, links: Iterable[Link]) -> None:
        """Ensure every link of ``links`` is scheduled.

        Raises:
            ScheduleError: listing missing links.
        """
        missing = [link for link in links if link not in self._slots]
        if missing:
            raise ScheduleError(
                f"{len(missing)} links are missing from the schedule, e.g. {missing[0].endpoint_ids}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule({len(self._slots)} links in {self.length} slots)"
