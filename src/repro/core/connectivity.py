"""High-level facade over the paper's three results.

:class:`ConnectivityProtocol` bundles the three algorithms a user typically
wants, in increasing order of schedule quality (and construction effort):

* :meth:`build_initial_tree` - Theorem 2: a bi-tree in ``O(log Delta log n)``
  slots of construction, scheduled by its construction time stamps.
* :meth:`reschedule_with_mean_power` - Theorem 3: the same tree rescheduled in
  ``O(Upsilon log^3 n)`` slots under oblivious mean power.
* :meth:`build_efficient_tree` - Theorem 4: a freshly built bi-tree scheduled
  in ``O(log n)`` slots (arbitrary power) or ``O(Upsilon log n)`` slots (mean
  power).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..geometry import Node
from ..sinr import SINRParameters
from .init_tree import InitialTreeBuilder, InitialTreeResult
from .power_control import MeanPowerRescheduler, RescheduleResult
from .tree_via_capacity import PowerMode, TreeViaCapacity, TreeViaCapacityResult

__all__ = ["ConnectivityProtocol"]


class ConnectivityProtocol:
    """One-stop interface to the paper's distributed connectivity algorithms.

    Args:
        params: physical-model parameters shared by all algorithms.
        constants: protocol constants shared by all algorithms.
    """

    __slots__ = ('constants', 'params')

    def __init__(
        self,
        params: SINRParameters | None = None,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
    ):
        self.params = params if params is not None else SINRParameters()
        self.constants = constants

    def build_initial_tree(
        self, nodes: Sequence[Node], rng: np.random.Generator
    ) -> InitialTreeResult:
        """Run ``Init`` (Theorem 2) and return the initial bi-tree."""
        return InitialTreeBuilder(self.params, self.constants).build(nodes, rng)

    def reschedule_with_mean_power(
        self,
        initial: InitialTreeResult,
        rng: np.random.Generator,
        *,
        max_frames: int | None = None,
    ) -> RescheduleResult:
        """Reschedule the initial tree's links under mean power (Theorem 3)."""
        rescheduler = MeanPowerRescheduler(self.params, self.constants)
        return rescheduler.reschedule(
            initial.tree.aggregation_links(), rng, max_frames=max_frames
        )

    def build_efficient_tree(
        self,
        nodes: Sequence[Node],
        rng: np.random.Generator,
        *,
        power_mode: PowerMode = "arbitrary",
        max_iterations: int | None = None,
    ) -> TreeViaCapacityResult:
        """Run ``TreeViaCapacity`` (Theorem 4) with the chosen power regime."""
        framework = TreeViaCapacity(
            self.params,
            self.constants,
            power_mode=power_mode,
            max_iterations=max_iterations,
        )
        return framework.build(nodes, rng)
