"""Mean-power rescheduling of the initial tree (Section 7, Theorem 3).

The tree ``T`` built by ``Init`` is O(log n)-sparse (Theorem 11); by the
sparsity-to-amenability machinery of [11]/[14]/[10] it can be scheduled in
``O(Upsilon * log^2 n)`` slots under the oblivious *mean* power assignment,
and the distributed scheduling substrate loses at most another ``O(log n)``
factor.  The recipe in the paper is exactly two lines: every sender switches
to mean power for its tree links, then the links run the distributed
scheduling algorithm.  This module packages that recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..links import Link, LinkSet
from ..sinr import MeanPower, PowerAssignment, SINRParameters
from .distributed_scheduling import DistributedScheduler
from .schedule import Schedule

__all__ = ["RescheduleResult", "MeanPowerRescheduler"]


@dataclass(frozen=True)
class RescheduleResult:
    """Outcome of rescheduling a link set with mean power.

    Attributes:
        schedule: the new schedule of the same links.
        power: the mean-power assignment used.
        frames_elapsed: contention frames the distributed scheduler needed
            (its running time, distinct from the schedule length).
        slots_elapsed: channel slots consumed while computing the schedule.
    """

    schedule: Schedule
    power: PowerAssignment
    frames_elapsed: int
    slots_elapsed: int

    @property
    def schedule_length(self) -> int:
        """Number of slots of the produced schedule (the quantity in Thm. 3)."""
        return self.schedule.length


class MeanPowerRescheduler:
    """Reschedules a link set under the oblivious mean power assignment.

    Args:
        params: physical-model parameters.
        constants: protocol constants forwarded to the distributed scheduler.
    """

    __slots__ = ('constants', 'params')

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
    ):
        self.params = params
        self.constants = constants

    def mean_power_for(self, links: Sequence[Link] | LinkSet) -> MeanPower:
        """The noise-safe mean power assignment for the given link set."""
        link_list = list(links)
        longest = max((link.length for link in link_list), default=1.0)
        return MeanPower.for_max_length(self.params, max(longest, 1.0))

    def reschedule(
        self,
        links: Sequence[Link] | LinkSet,
        rng: np.random.Generator,
        *,
        power: PowerAssignment | None = None,
        max_frames: int | None = None,
    ) -> RescheduleResult:
        """Compute a new schedule of ``links`` under mean power (Theorem 3).

        Args:
            links: the links to reschedule (typically the aggregation links of
                the initial tree; the dissemination direction is symmetric).
            rng: source of randomness.
            power: override for the power assignment (defaults to noise-safe
                mean power for the instance).
            max_frames: contention-frame budget for the distributed scheduler.
        """
        link_list = list(links)
        assignment = power if power is not None else self.mean_power_for(link_list)
        if not link_list:
            return RescheduleResult(Schedule(), assignment, 0, 0)
        scheduler = DistributedScheduler(self.params, self.constants)
        outcome = scheduler.schedule(link_list, assignment, rng, max_frames=max_frames)
        return RescheduleResult(
            schedule=outcome.schedule.normalized(),
            power=assignment,
            frames_elapsed=outcome.frames_elapsed,
            slots_elapsed=outcome.slots_elapsed,
        )
