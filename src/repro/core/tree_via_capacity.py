"""``TreeViaCapacity`` (Algorithm 1): matching centralized schedule lengths.

The driver repeatedly runs ``Init`` on the still-active node set ``P_i``,
extracts the O(1)-sparse degree-bounded subset ``T(M)`` of the resulting tree
(Theorem 13), selects a feasible subset ``T'`` of it - via ``Distr-Cap`` for
arbitrary power (Section 8.2) or mean-power sampling (Section 8.1) - and
retires the senders of ``T'``.  Each iteration contributes exactly one slot to
the final schedule, so the schedule length equals the number of iterations:
``O(log n)`` with arbitrary power and ``O(Upsilon log n)`` with mean power
(Theorems 4, 12, 16, 21).

The expensive part is the *construction time* (repeated ``Init`` invocations);
it is tracked separately from the quality of the final schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..exceptions import InfeasiblePowerError, ProtocolError
from ..geometry import Node, node_distance_matrix
from ..links import Link, LinkSet
from ..sinr import ExplicitPower, MeanPower, PowerAssignment, SINRParameters, UniformPower, is_feasible
from .bitree import BiTree
from .distr_cap import DistrCapSelector
from .init_tree import InitialTreeBuilder
from .mean_power_selection import MeanPowerSelector
from .power_solver import solve_power
from .tree_subset import degree_bounded_subset

__all__ = ["TreeViaCapacity", "TreeViaCapacityResult", "IterationRecord", "PowerMode"]

PowerMode = Literal["arbitrary", "mean"]

# SINR headroom applied when solving per-slot power assignments: the minimal
# solution sits exactly on the feasibility boundary, which floating point and
# large dynamic ranges (high-Delta instances) can tip over.
_POWER_MARGIN = 1.05


@dataclass(frozen=True)
class IterationRecord:
    """Statistics of one ``TreeViaCapacity`` iteration.

    Attributes:
        index: iteration number (also the schedule slot it fills).
        population: ``|P_i|``, active nodes at the start of the iteration.
        tree_links: ``|T|``, links of the iteration's Init tree.
        candidate_links: ``|T(M)|``.
        selected_links: ``|T'|``.
        init_slots: slots spent by the Init invocation.
        selection_slots: slots spent by the selection step.
        progress_fraction: ``|T'| / |T|`` - the per-iteration ``delta`` of
            Theorem 12.
    """

    index: int
    population: int
    tree_links: int
    candidate_links: int
    selected_links: int
    init_slots: int
    selection_slots: int
    progress_fraction: float


@dataclass
class TreeViaCapacityResult:
    """Outcome of ``TreeViaCapacity``.

    Attributes:
        tree: the final bi-tree; its aggregation schedule has one slot per
            iteration.
        power: powers for the aggregation links (and for the dissemination
            duals, best effort), making every slot feasible.
        power_mode: "arbitrary" or "mean".
        iterations: per-iteration statistics.
        construction_slots: total channel slots spent building the structure
            (all Init invocations plus the selection slot-pairs).
        delta: distance ratio of the instance.
        aggregation_feasible: whether every aggregation slot verifies feasible
            under ``power``.
        dissemination_feasible: whether every dissemination slot (dual links,
            reverse order) verifies feasible under ``power``.
    """

    tree: BiTree
    power: ExplicitPower
    power_mode: PowerMode
    iterations: list[IterationRecord] = field(default_factory=list)
    construction_slots: int = 0
    delta: float = 1.0
    aggregation_feasible: bool = True
    dissemination_feasible: bool = True

    @property
    def schedule_length(self) -> int:
        """Slots of the final aggregation schedule (the headline quantity)."""
        return self.tree.aggregation_schedule.length


class TreeViaCapacity:
    """Builds and schedules a bi-tree matching centralized bounds (Theorem 4).

    Args:
        params: physical-model parameters.
        constants: protocol constants.
        power_mode: "arbitrary" computes per-slot powers with the power-control
            solver after ``Distr-Cap`` selection; "mean" uses the oblivious
            mean-power assignment with sampling selection.
        max_iterations: safety cap on iterations; defaults to
            ``40 * ceil(log2 n) + 40``.
    """

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        power_mode: PowerMode = "arbitrary",
        max_iterations: int | None = None,
    ):
        if power_mode not in ("arbitrary", "mean"):
            raise ValueError(f"unknown power mode {power_mode!r}")
        self.params = params
        self.constants = constants
        self.power_mode: PowerMode = power_mode
        self.max_iterations = max_iterations
        self._mean_power = MeanPower.for_max_length(params, 1.0)

    def build(self, nodes: Sequence[Node], rng: np.random.Generator) -> TreeViaCapacityResult:
        """Run the full framework on ``nodes``.

        Raises:
            ProtocolError: if the population does not shrink to one node
                within the iteration cap.
        """
        node_list = list(nodes)
        if not node_list:
            raise ProtocolError("cannot build a tree on zero nodes")
        all_nodes = {node.id: node for node in node_list}
        if len(node_list) == 1:
            tree = BiTree.from_parent_map(node_list, node_list[0].id, {})
            return TreeViaCapacityResult(
                tree=tree, power=ExplicitPower({}), power_mode=self.power_mode
            )

        distances = node_distance_matrix(node_list)
        delta = float(distances.max())
        cap = self.max_iterations
        if cap is None:
            cap = 40 * int(math.ceil(math.log2(max(len(node_list), 2)))) + 40

        # One instance-wide mean-power assignment, reused for selection and
        # for verification: mean-power feasibility is not scale-invariant with
        # noise, so the scale the links succeed with must be the scale that is
        # later verified.
        self._mean_power = MeanPower.for_max_length(self.params, max(delta, 1.0))
        builder = InitialTreeBuilder(self.params, self.constants)
        population = list(node_list)
        parent: dict[int, int] = {}
        slot_of_node: dict[int, int] = {}
        power_map: dict[tuple[int, int], float] = {}
        iterations: list[IterationRecord] = []
        construction_slots = 0

        iteration = 0
        while len(population) > 1:
            if iteration >= cap:
                raise ProtocolError(
                    f"TreeViaCapacity did not converge within {cap} iterations "
                    f"({len(population)} nodes still active)"
                )
            init_result = builder.build(population, rng)
            tree_links = init_result.tree.aggregation_links()
            subset = degree_bounded_subset(tree_links, self.constants.degree_cap_rho)
            candidates = subset.subset if len(subset.subset) > 0 else tree_links

            selected, selection_slots = self._select(candidates, init_result.link_rounds, rng)
            if len(selected) == 0:
                # Guarantee progress: fall back to the single shortest tree
                # link, which is trivially feasible on its own.
                shortest = min(tree_links, key=lambda link: (link.length, link.endpoint_ids))
                selected = LinkSet([shortest])
            selected = self._enforce_slot_structure(selected)

            selected, slot_power = self._power_for_slot(selected)
            for link in selected:
                parent[link.sender.id] = link.receiver.id
                slot_of_node[link.sender.id] = iteration
                power_map[link.endpoint_ids] = slot_power.power(link)

            retired = {link.sender.id for link in selected}
            population = [node for node in population if node.id not in retired]
            construction_slots += init_result.slots_used + selection_slots
            iterations.append(
                IterationRecord(
                    index=iteration,
                    population=len(retired) + len(population),
                    tree_links=len(tree_links),
                    candidate_links=len(candidates),
                    selected_links=len(selected),
                    init_slots=init_result.slots_used,
                    selection_slots=selection_slots,
                    progress_fraction=len(selected) / max(len(tree_links), 1),
                )
            )
            iteration += 1

        root_id = population[0].id
        tree = BiTree.from_parent_map(list(all_nodes.values()), root_id, parent, slot_of_node)
        power = self._finalize_power(tree, power_map, delta)
        aggregation_feasible, dissemination_feasible = self._verify(tree, power)
        return TreeViaCapacityResult(
            tree=tree,
            power=power,
            power_mode=self.power_mode,
            iterations=iterations,
            construction_slots=construction_slots,
            delta=delta,
            aggregation_feasible=aggregation_feasible,
            dissemination_feasible=dissemination_feasible,
        )

    # -- internals ----------------------------------------------------------

    def _select(
        self,
        candidates: LinkSet,
        link_rounds: dict[tuple[int, int], int],
        rng: np.random.Generator,
    ) -> tuple[LinkSet, int]:
        if self.power_mode == "arbitrary":
            outcome = DistrCapSelector(self.params, self.constants).select(
                candidates, rng, link_rounds=link_rounds
            )
            return outcome.selected, outcome.slots_used
        outcome = MeanPowerSelector(self.params).select(candidates, rng, power=self._mean_power)
        return outcome.selected, outcome.slots_used

    @staticmethod
    def _enforce_slot_structure(selected: LinkSet) -> LinkSet:
        """Keep at most one link per node (shorter links first)."""
        used: set[int] = set()
        kept: list[Link] = []
        for link in sorted(selected, key=lambda l: (l.length, l.endpoint_ids)):
            if link.sender.id in used or link.receiver.id in used:
                continue
            kept.append(link)
            used.update(link.endpoint_ids)
        return LinkSet(kept)

    def _power_for_slot(self, selected: LinkSet) -> tuple[LinkSet, PowerAssignment]:
        """Power assignment making the iteration's slot feasible.

        With arbitrary power the selected set can occasionally (under the
        practical constants) fail the exact power-control test; in that case
        the longest links are dropped until a solvable set remains, and the
        pruned set is returned so the caller only commits links it can power.
        """
        links = list(selected)
        if self.power_mode == "mean":
            return selected, self._mean_power
        working = list(links)
        while True:
            try:
                return LinkSet(working), solve_power(working, self.params, margin=_POWER_MARGIN)
            except InfeasiblePowerError:
                if len(working) <= 1:
                    # A single link is always feasible at its noise-safe power.
                    only = working[0]
                    level = (
                        self.params.min_power_for(only.length)
                        if self.params.noise > 0
                        else only.length**self.params.alpha
                    )
                    return LinkSet(working), ExplicitPower({only.endpoint_ids: level})
                # Practical-constants fallback: drop the longest link and retry.
                working.sort(key=lambda l: (l.length, l.endpoint_ids))
                working.pop()

    def _finalize_power(
        self, tree: BiTree, power_map: dict[tuple[int, int], float], delta: float
    ) -> ExplicitPower:
        """Attach best-effort powers for the dissemination (dual) direction."""
        full_map = dict(power_map)
        for slot, group in tree.dissemination_schedule.slot_groups().items():
            duals = [link for link in group if link.endpoint_ids not in full_map]
            if not duals:
                continue
            if self.power_mode == "mean":
                for link in duals:
                    full_map[link.endpoint_ids] = self._mean_power.power(link)
                continue
            try:
                solved = solve_power(duals, self.params, margin=_POWER_MARGIN)
                for link in duals:
                    full_map[link.endpoint_ids] = solved.power(link)
            except InfeasiblePowerError:
                for link in duals:
                    full_map[link.endpoint_ids] = self.params.min_power_for(link.length) if self.params.noise > 0 else link.length**self.params.alpha
        fallback = UniformPower.for_max_length(self.params, max(delta, 1.0))
        return ExplicitPower(full_map, fallback=fallback)

    def _verify(self, tree: BiTree, power: ExplicitPower) -> tuple[bool, bool]:
        aggregation_ok = tree.aggregation_schedule.is_feasible(power, self.params)
        dissemination_ok = tree.dissemination_schedule.is_feasible(power, self.params)
        return aggregation_ok, dissemination_ok
