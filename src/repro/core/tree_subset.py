"""The degree-bounded sparse subset ``T(M)`` (Theorem 13).

``M`` is the set of nodes whose degree in the tree ``T`` is at most a constant
``rho``; ``T(M)`` is the set of tree links with both endpoints in ``M``.  The
theorem shows ``T(M)`` is O(1)-sparse and contains a constant fraction of the
tree's links in expectation - the property that lets each ``TreeViaCapacity``
iteration make constant-factor progress.

Computing ``T(M)`` is local: every node knows its own degree (it stored its
links), tells its neighbours over the existing tree, and each link decides
whether it belongs to ``T(M)`` from its two endpoints' degrees.  Here the
computation is performed directly on the link set; the one-sweep message cost
is accounted for by the callers (it is O(schedule length of T)).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..links import LinkSet

__all__ = ["DegreeBoundedSubset", "degree_bounded_subset"]


@dataclass(frozen=True)
class DegreeBoundedSubset:
    """The subset ``T(M)`` together with bookkeeping for the analysis.

    Attributes:
        subset: the links of ``T(M)``.
        low_degree_nodes: ids of the nodes in ``M``.
        rho: the degree threshold used.
        fraction: ``|T(M)| / |T|`` (0 when the tree is empty).
    """

    subset: LinkSet
    low_degree_nodes: frozenset[int]
    rho: int
    fraction: float


def degree_bounded_subset(tree_links: LinkSet, rho: int) -> DegreeBoundedSubset:
    """Compute ``T(M)`` for a tree link set and a degree threshold ``rho``.

    Args:
        tree_links: the (aggregation) links of the tree ``T``.
        rho: the degree cap defining ``M`` (the paper's ``rho = 160 / p**2``;
            practical runs use a small constant).

    Raises:
        ValueError: if ``rho`` is not positive.
    """
    if rho < 1:
        raise ValueError("rho must be a positive integer")
    degrees = tree_links.degrees()
    low_degree = frozenset(node_id for node_id, degree in degrees.items() if degree <= rho)
    subset = tree_links.filtered(
        lambda link: link.sender.id in low_degree and link.receiver.id in low_degree
    )
    fraction = len(subset) / len(tree_links) if len(tree_links) else 0.0
    return DegreeBoundedSubset(
        subset=subset, low_degree_nodes=low_degree, rho=rho, fraction=fraction
    )
