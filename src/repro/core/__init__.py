"""The paper's algorithms: Init, rescheduling, capacity, TreeViaCapacity."""

from .bitree import BiTree
from .capacity import (
    CapacityResult,
    FirstFitResult,
    first_fit_schedule,
    first_fit_schedule_result,
    pair_weight,
    select_feasible_subset,
    select_power_controllable_subset,
    total_pair_weight,
)
from .connectivity import ConnectivityProtocol
from .distr_cap import DistrCapResult, DistrCapSelector
from .distributed_scheduling import DistributedScheduler, DistributedScheduleResult
from .init_tree import InitAgent, InitialTreeBuilder, InitialTreeResult, round_power
from .mean_power_selection import MeanPowerSelectionResult, MeanPowerSelector
from .power_control import MeanPowerRescheduler, RescheduleResult
from .power_solver import (
    PowerControlResult,
    foschini_miljanic,
    gain_matrix,
    is_power_controllable,
    solve_power,
    spectral_radius,
)
from .quantities import num_rounds_for_delta, upsilon
from .repair import RepairResult, TreeRepairer
from .schedule import Schedule
from .tree_subset import DegreeBoundedSubset, degree_bounded_subset
from .tree_via_capacity import (
    IterationRecord,
    PowerMode,
    TreeViaCapacity,
    TreeViaCapacityResult,
)

__all__ = [
    "BiTree",
    "Schedule",
    "ConnectivityProtocol",
    # initial tree
    "InitAgent",
    "InitialTreeBuilder",
    "InitialTreeResult",
    "round_power",
    # scheduling
    "DistributedScheduler",
    "DistributedScheduleResult",
    "MeanPowerRescheduler",
    "RescheduleResult",
    "first_fit_schedule",
    "first_fit_schedule_result",
    "FirstFitResult",
    # capacity / selection
    "CapacityResult",
    "select_feasible_subset",
    "select_power_controllable_subset",
    "pair_weight",
    "total_pair_weight",
    "DistrCapSelector",
    "DistrCapResult",
    "MeanPowerSelector",
    "MeanPowerSelectionResult",
    "DegreeBoundedSubset",
    "degree_bounded_subset",
    # power control
    "solve_power",
    "foschini_miljanic",
    "is_power_controllable",
    "gain_matrix",
    "spectral_radius",
    "PowerControlResult",
    # tree via capacity
    "TreeViaCapacity",
    "TreeViaCapacityResult",
    "IterationRecord",
    "PowerMode",
    # repair (dynamic extension)
    "TreeRepairer",
    "RepairResult",
    # quantities
    "upsilon",
    "num_rounds_for_delta",
]
