"""Derived quantities used across the paper's bounds.

``Upsilon = O(log log Delta + log n)`` is the known worst-case price of
oblivious (mean) power relative to arbitrary power control; it appears in
Theorems 3, 4 and 16.  ``log Delta`` bounds the number of length classes and
thus the number of rounds of ``Init``.
"""

from __future__ import annotations

import math

__all__ = ["upsilon", "num_rounds_for_delta", "log2_safe"]


def log2_safe(value: float, minimum: float = 1.0) -> float:
    """``log2`` clamped from below so tiny instances do not yield zero/negative."""
    return math.log2(max(value, 2.0)) if value > 0 else math.log2(max(minimum, 2.0))


def upsilon(n: int, delta: float) -> float:
    """The oblivious-power gap ``Upsilon = log log Delta + log n`` (base 2).

    Args:
        n: number of nodes.
        delta: ratio of longest to shortest pairwise distance.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if delta < 1:
        raise ValueError("delta must be at least 1")
    loglog_delta = math.log2(max(2.0, math.log2(max(delta, 2.0))))
    return loglog_delta + math.log2(max(n, 2))


def num_rounds_for_delta(delta: float) -> int:
    """Number of ``Init`` rounds needed to cover all link lengths up to ``delta``.

    Round ``r`` (1-based) handles links with length in ``[2**(r-1), 2**r)``;
    ``floor(log2(delta)) + 1`` rounds cover every possible link length.
    """
    if delta < 1:
        raise ValueError("delta must be at least 1")
    return int(math.floor(math.log2(delta))) + 1 if delta > 1 else 1
