"""Distributed contention-based scheduling (the Kesselheim-Vocking substrate).

Theorem 3 reschedules the initial tree with mean power using the distributed
scheduling algorithm of [15] (shown O(log n)-approximate in [9]).  The paper
treats that algorithm as a black box: give every link an oblivious power and
let the links contend on the channel until each has found a slot.

This module implements that black box as a slotted contention process, run on
the same SINR channel as everything else:

* time is divided into *frames* of two slots (data + acknowledgment);
* every unscheduled link transmits in a frame with its current probability,
  using its assigned power; the receiver answers successful data with an
  acknowledgment at the same power;
* a link whose data **and** acknowledgment both succeed adopts the current
  frame index as its slot and stops contending; the others adjust their
  transmission probability multiplicatively (down on a failed attempt, up
  slowly while idle), the standard decay used by distributed contention
  resolution in the SINR model.

The resulting slot groups are feasible by construction: the links that
succeeded together in a frame succeeded in the presence of *more* interference
than the final schedule will ever have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..exceptions import ConvergenceError
from ..links import Link, LinkSet
from ..sinr import (
    MAX_CACHED_CHANNEL_NODES,
    CachedChannel,
    Channel,
    PowerAssignment,
    SINRParameters,
    Transmission,
)
from ..sinr.channel import ensure_positive_powers
from ..state import NetworkState, TiledNetworkState
from .schedule import Schedule

__all__ = ["DistributedScheduler", "DistributedScheduleResult"]


@dataclass(frozen=True)
class DistributedScheduleResult:
    """Outcome of a distributed scheduling run.

    Attributes:
        schedule: the produced schedule (slot = frame in which a link succeeded).
        frames_elapsed: number of contention frames until the last link was
            scheduled - the algorithm's running time.
        slots_elapsed: channel slots consumed (two per frame).
        power: the power assignment the links used.
    """

    schedule: Schedule
    frames_elapsed: int
    slots_elapsed: int
    power: PowerAssignment


class _LinkContender:
    """Per-link contention state (conceptually owned by the link's sender)."""

    __slots__ = ('index', 'link', 'power', 'probability', 'rng', 'scheduled_frame')

    def __init__(self, link: Link, probability: float, rng: np.random.Generator, index: int):
        self.link = link
        self.probability = probability
        self.rng = rng
        self.scheduled_frame: int | None = None
        # Position in the scheduler's contender arrays (sender/receiver cache
        # indices, powers), fixed for the whole run.
        self.index = index
        # Transmit power, fixed for the whole run; filled in by the scheduler
        # so the per-frame hot loop does not re-evaluate the assignment.
        self.power: float = 1.0

    @property
    def done(self) -> bool:
        return self.scheduled_frame is not None


class DistributedScheduler:
    """Schedules a link set by contention on the shared SINR channel.

    Args:
        params: physical-model parameters.
        constants: protocol constants (base transmission probability).
        decay: multiplicative decrease applied to a link's probability after a
            failed attempt.
        recovery: multiplicative increase applied while a link stays silent,
            capped at the base probability.
        min_probability: probability floor preventing starvation.
    """

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        decay: float = 0.9,
        recovery: float = 1.02,
        min_probability: float = 0.01,
    ):
        if not (0.0 < decay <= 1.0):
            raise ValueError("decay must be in (0, 1]")
        if recovery < 1.0:
            raise ValueError("recovery must be at least 1")
        if not (0.0 < min_probability <= 1.0):
            raise ValueError("min_probability must be in (0, 1]")
        self.params = params
        self.constants = constants
        self.decay = decay
        self.recovery = recovery
        self.min_probability = min_probability

    def schedule(
        self,
        links: Sequence[Link] | LinkSet,
        power: PowerAssignment,
        rng: np.random.Generator,
        *,
        max_frames: int | None = None,
    ) -> DistributedScheduleResult:
        """Run the contention process until every link has adopted a slot.

        Args:
            links: the links to schedule.
            power: oblivious (or explicit) power assignment used by the links.
            rng: source of randomness.
            max_frames: frame budget; defaults to ``200 * max(8, len(links))``.

        Raises:
            ConvergenceError: if some link remains unscheduled after the budget.
        """
        link_list = list(links)
        if not link_list:
            return DistributedScheduleResult(Schedule(), 0, 0, power)
        if max_frames is None:
            max_frames = 200 * max(8, len(link_list))

        base = self.constants.scheduling_base_probability
        contenders = [
            _LinkContender(link, base, np.random.default_rng(int(seed)), index)
            for index, (link, seed) in enumerate(
                zip(link_list, rng.integers(0, 2**63 - 1, size=len(link_list), dtype=np.int64))
            )
        ]
        for contender in contenders:
            contender.power = power.power(contender.link)
        # The frame simulation runs on a fixed node universe (the link
        # endpoints), so one NetworkState owns the node-to-node geometry,
        # computed once; every frame's resolution gathers blocks from it
        # through the channel's view (bounded: the store holds an O(n^2)
        # matrix).  With a cached channel each frame is resolved on index
        # arrays (no Transmission/Reception marshalling).  The tiled store
        # removes the ceiling: O(n) memory, exact rectangles, so the index
        # fast path stays engaged at any endpoint count.
        endpoint_state = (
            TiledNetworkState.from_links(link_list)
            if self.params.store == "tiled"
            else NetworkState.from_links(link_list)
        )
        channel: Channel = (
            CachedChannel(self.params, state=endpoint_state)
            if self.params.store == "tiled"
            or len(endpoint_state) <= MAX_CACHED_CHANNEL_NODES
            else Channel(self.params)
        )
        sender_idx: np.ndarray | None = None
        receiver_idx: np.ndarray | None = None
        power_arr: np.ndarray | None = None
        if type(channel) is CachedChannel:
            cache = channel.cache
            sender_idx = np.array(
                [cache.index_of_id(c.link.sender.id) for c in contenders], dtype=np.intp
            )
            receiver_idx = np.array(
                [cache.index_of_id(c.link.receiver.id) for c in contenders], dtype=np.intp
            )
            power_arr = np.array([c.power for c in contenders], dtype=float)
            ensure_positive_powers(power_arr)
        schedule = Schedule()
        frames = 0
        remaining = len(contenders)

        while remaining > 0 and frames < max_frames:
            frames += 1
            attempts = self._choose_attempts(contenders)
            if not attempts:
                continue
            # Frames are slot pairs: data at 2*(frame-1), ack right after
            # (slot-dependent gain models draw fresh fades per physical slot).
            first_slot = 2 * (frames - 1)
            if sender_idx is not None:
                successful = self._run_frame_indices(
                    attempts, channel, sender_idx, receiver_idx, power_arr, first_slot
                )
            else:
                successful = self._run_frame(attempts, channel, first_slot)
            for contender in attempts:
                if contender in successful:
                    contender.scheduled_frame = frames - 1
                    schedule.assign(contender.link, frames - 1)
                    remaining -= 1
                else:
                    contender.probability = max(
                        self.min_probability, contender.probability * self.decay
                    )
            for contender in contenders:
                if not contender.done and contender not in attempts:
                    contender.probability = min(base, contender.probability * self.recovery)

        if remaining > 0:
            raise ConvergenceError(
                f"{remaining} of {len(link_list)} links unscheduled after {max_frames} frames"
            )
        return DistributedScheduleResult(
            schedule=schedule,
            frames_elapsed=frames,
            slots_elapsed=2 * frames,
            power=power,
        )

    # -- internals ----------------------------------------------------------

    def _choose_attempts(self, contenders: Sequence[_LinkContender]) -> list[_LinkContender]:
        """Pick this frame's transmitting links, one per sender node at most."""
        by_sender: dict[int, _LinkContender] = {}
        for contender in contenders:
            if contender.done:
                continue
            if contender.rng.random() >= contender.probability:
                continue
            sender_id = contender.link.sender.id
            if sender_id in by_sender:
                # A radio sends one message per slot; keep one attempt per sender.
                if contender.rng.random() < 0.5:
                    by_sender[sender_id] = contender
            else:
                by_sender[sender_id] = contender
        return list(by_sender.values())

    def _run_frame_indices(
        self,
        attempts: Sequence[_LinkContender],
        channel: CachedChannel,
        sender_idx: np.ndarray,
        receiver_idx: np.ndarray,
        power_arr: np.ndarray,
        first_slot: int = 0,
    ) -> set[_LinkContender]:
        """Index-array frame resolution (same outcome as :meth:`_run_frame`).

        Both slots are resolved through
        :meth:`~repro.sinr.channel.CachedChannel.resolve_indices`; a link
        succeeds when its receiver decoded *its own* sender (``best`` equals
        the link's row) in the data slot and, symmetrically, its sender
        decoded the receiver's acknowledgment.  Half-duplex is applied
        exactly as ``Channel.resolve`` does: a listener that is also
        transmitting in the slot hears nothing.
        """
        rows = np.array([c.index for c in attempts], dtype=np.intp)
        tx = sender_idx[rows]
        rx = receiver_idx[rows]
        pw = power_arr[rows]

        # Data slot: all attempt senders transmit; receivers that are
        # themselves transmitting are busy and cannot listen.
        listening = np.nonzero(~np.isin(rx, tx))[0]
        best, _, ok = channel.resolve_indices(tx, rx[listening], pw, slot=first_slot)
        data_ok = listening[ok & (best == listening)]
        if data_ok.size == 0:
            return set()

        # Acknowledgment slot: the receivers of successful data answer on the
        # dual link with the same power; the original senders listen (unless
        # they are busy acknowledging another link themselves).  Successful
        # receivers are distinct (each decoded exactly one sender), so the
        # ack transmitters are automatically unique.
        ack_tx = rx[data_ok]
        ack_rx = tx[data_ok]
        ack_listening = np.nonzero(~np.isin(ack_rx, ack_tx))[0]
        ack_best, _, ack_ok = channel.resolve_indices(
            ack_tx, ack_rx[ack_listening], pw[data_ok], slot=first_slot + 1
        )
        final = data_ok[ack_listening[ack_ok & (ack_best == ack_listening)]]
        return {attempts[int(i)] for i in final}

    def _run_frame(
        self,
        attempts: Sequence[_LinkContender],
        channel: Channel,
        first_slot: int = 0,
    ) -> set[_LinkContender]:
        """Run the data + acknowledgment slots; return the fully successful links."""
        # Data slot: senders transmit, everybody else listens.
        data_transmissions = [
            Transmission(sender=c.link.sender, power=c.power, message=c.link)
            for c in attempts
        ]
        receivers = [c.link.receiver for c in attempts]
        data_receptions = channel.resolve(data_transmissions, receivers, slot=first_slot)
        data_ok = [
            c
            for c in attempts
            if data_receptions.get(c.link.receiver.id) is not None
            and data_receptions[c.link.receiver.id].sender.id == c.link.sender.id
        ]
        if not data_ok:
            return set()
        # Acknowledgment slot: the receivers of successful data answer on the
        # dual link with the same power; the original senders listen.
        ack_transmissions = [
            Transmission(sender=c.link.receiver, power=c.power, message=c.link)
            for c in data_ok
        ]
        ack_listeners = [c.link.sender for c in data_ok]
        ack_receptions = channel.resolve(ack_transmissions, ack_listeners, slot=first_slot + 1)
        return {
            c
            for c in data_ok
            if ack_receptions.get(c.link.sender.id) is not None
            and ack_receptions[c.link.sender.id].sender.id == c.link.receiver.id
        }
