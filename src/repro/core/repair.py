"""Tree repair under churn (the paper's "dynamic situations" extension).

The paper's conclusion lists node failures as the natural next step.  This
module implements the straightforward repair protocol the machinery already
supports: when a set of nodes dies, every surviving subtree that lost its
path to the root re-attaches by running ``Init`` again - but only among the
*orphaned subtree roots* (plus the surviving root), so the repair cost scales
with the damage, ``O(log Delta * log k)`` slots for ``k`` affected subtrees,
not with the network size.  :meth:`TreeRepairer.integrate` generalizes the
same splice to node *arrivals*: newly deployed nodes join the ``Init`` re-run
as additional orphans and attach to the tree in the same patch, which is what
the churn scenarios of ``repro.dynamics`` run every epoch.

The repaired structure is again a strongly connected spanning tree of the
survivors and every newly added slot group is feasible under the recorded
powers.  The leaf-to-root *ordering* of the original schedule is generally
not preserved across the splice point; callers that need an aggregation-
ordered schedule afterwards should reschedule (``MeanPowerRescheduler``) or
rebuild (``TreeViaCapacity``) - both are cheap relative to reconstruction
from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..exceptions import ProtocolError
from ..geometry import Node
from ..obs.runtime import OBS
from ..obs.spans import span
from ..sinr import ExplicitPower, SINRParameters
from ..state import NetworkState
from .bitree import BiTree
from .init_tree import InitialTreeBuilder
from .schedule import Schedule

__all__ = ["InitBuilderLike", "RepairResult", "TreeRepairer"]


class InitBuilderLike(Protocol):
    """Anything that can run an ``Init`` re-run among the patch participants.

    The result only needs the three attributes :meth:`TreeRepairer.integrate`
    splices from: ``tree``, ``power`` and ``slots_used``.
    """

    def build(self, nodes: Sequence[Node], rng: np.random.Generator) -> Any: ...


@dataclass(frozen=True)
class RepairResult:
    """Outcome of repairing a bi-tree after node failures and/or arrivals.

    Attributes:
        tree: the repaired spanning bi-tree over the surviving nodes.
        power: per-link powers covering both old and newly formed links.
        slots_used: channel slots spent by the repair protocol.
        failed: ids of the nodes that were removed.
        reattached: ids of the orphaned subtree roots that re-attached.
        arrived: ids of newly joined nodes attached by the same patch.
        root_changed: whether the repair elected a new root.
    """

    tree: BiTree
    power: ExplicitPower
    slots_used: int
    failed: frozenset[int]
    reattached: frozenset[int]
    root_changed: bool
    arrived: frozenset[int] = frozenset()


class TreeRepairer:
    """Repairs a bi-tree after a set of nodes fails.

    Args:
        params: physical-model parameters.
        constants: protocol constants forwarded to the ``Init`` re-run.
        patch_builder: the builder running the ``Init`` re-run among the
            orphans.  Defaults to the lockstep
            :class:`~repro.core.init_tree.InitialTreeBuilder`; the netsim
            runtime passes its own fault-aware builder here so repairs
            triggered by emergent crashes run over the same lossy transport
            as the protocol that suffered them.  Any object with a
            ``build(nodes, rng)`` method returning a result with ``tree``,
            ``power`` and ``slots_used`` works.
    """

    __slots__ = ('constants', 'params', 'patch_builder')

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        patch_builder: InitBuilderLike | None = None,
    ):
        self.params = params
        self.constants = constants
        self.patch_builder = patch_builder

    def repair(
        self,
        tree: BiTree,
        power: ExplicitPower,
        failed_ids: Iterable[int],
        rng: np.random.Generator,
    ) -> RepairResult:
        """Remove the failed nodes and re-attach every orphaned subtree.

        Args:
            tree: the existing bi-tree.
            power: the powers recorded for the existing tree links (both
                directions); the repaired tree reuses them for surviving links.
            failed_ids: ids of the nodes that failed.
            rng: source of randomness for the ``Init`` re-run.

        Raises:
            ProtocolError: if every node failed, or a failed id is unknown.
        """
        return self.integrate(tree, power, failed_ids=failed_ids, rng=rng)

    def integrate(
        self,
        tree: BiTree,
        power: ExplicitPower,
        *,
        failed_ids: Iterable[int] = (),
        arrivals: Iterable[Node] = (),
        rng: np.random.Generator,
        state: NetworkState | None = None,
        preferred_root_id: int | None = None,
    ) -> RepairResult:
        """Apply one churn event: remove failures, attach arrivals, re-splice.

        Failures orphan every surviving subtree that lost its path to the
        root; arrivals are brand-new nodes with no tree links at all.  Both
        kinds of loose ends join a single ``Init`` re-run (together with the
        surviving root, if any) whose patch tree is spliced into the
        remaining structure - so one channel-slot budget covers the whole
        event and still scales with the damage, not the network size.

        Args:
            tree: the existing bi-tree.
            power: recorded per-link powers; surviving links reuse them.
            failed_ids: ids of nodes that failed (may be empty).
            arrivals: newly deployed nodes to attach (may be empty).  Their
                ids must be distinct from every current tree node's id.
            rng: source of randomness for the ``Init`` re-run.
            state: the :class:`~repro.state.NetworkState` backing the
                caller's channel caches, if any.  The same splice is then
                applied to it - failures release their slots, arrivals patch
                only their own rows - so the caller's derived matrices stay
                current at O(damage) cost instead of being rebuilt.
            preferred_root_id: when given (the netsim leader election passes
                the elected node here), the repaired tree is re-rooted at
                this node by reversing the parent pointers along its path to
                the spliced root.  The reversed links get fresh slot stamps
                past the schedule (leaf-to-root *ordering* across the splice
                is not preserved anyway - see the module docstring), and the
                recorded powers cover both directions, so no extra channel
                slots are spent.

        Raises:
            ProtocolError: if nothing is left to span, a failed id is
                unknown, an arrival id collides with an existing node, or
                ``preferred_root_id`` is not among the spanned nodes.
        """
        failed = frozenset(int(node_id) for node_id in failed_ids)
        unknown = failed - set(tree.nodes)
        if unknown:
            raise ProtocolError(f"unknown node ids in failure set: {sorted(unknown)[:5]}")
        arriving = {node.id: node for node in arrivals}
        clashes = set(arriving) & set(tree.nodes)
        if clashes:
            raise ProtocolError(f"arrival ids already present: {sorted(clashes)[:5]}")
        if state is not None:
            # Validate the state splice up front so it can never fail after
            # the repair succeeded and leave the store half-spliced (the
            # state may be shared wider than the tree).
            absent = [node_id for node_id in sorted(failed) if node_id not in state]
            if absent:
                raise ProtocolError(f"failed ids not in the network state: {absent[:5]}")
            occupied = [node_id for node_id in sorted(arriving) if node_id in state]
            if occupied:
                raise ProtocolError(
                    f"arrival ids already live in the network state: {occupied[:5]}"
                )
        survivors = {node_id: node for node_id, node in tree.nodes.items() if node_id not in failed}
        if not survivors and not arriving:
            raise ProtocolError("all nodes failed; nothing to repair")

        # Surviving parent pointers, dropping every link that touches a failure.
        parent = {
            child: parent_id
            for child, parent_id in tree.parent.items()
            if child not in failed and parent_id not in failed
        }
        # One O(E) pass over the schedule; this runs per churn epoch in the
        # dynamics driver.
        stamp_by_child = tree.slot_stamps()
        slots = {child: stamp_by_child[child] for child in parent}

        # Orphaned subtree roots: survivors with no surviving parent pointer
        # that are not the (surviving) old root.  Arrivals are orphans by
        # construction - they have no links yet.
        old_root_alive = tree.root_id in survivors
        orphans = [
            node_id
            for node_id in survivors
            if node_id not in parent and not (old_root_alive and node_id == tree.root_id)
        ]

        spanned = list(survivors.values()) + list(arriving.values())
        # Flatten the power lookup: merge any chained ExplicitPower layers
        # into one map (dropping entries that touch a failed node) over the
        # base oblivious fallback, so per-epoch churn repairs never grow an
        # unbounded fallback chain.
        power_map, base_fallback = power.flattened()
        if failed:
            power_map = {
                key: value
                for key, value in power_map.items()
                if key[0] not in failed and key[1] not in failed
            }
        if not orphans and not arriving:
            global_root = tree.root_id
            if preferred_root_id is not None:
                global_root = self._reroot(parent, slots, spanned, global_root, preferred_root_id)
            repaired = BiTree.from_parent_map(spanned, global_root, parent, slots)
            self._splice_state(state, failed, arriving)
            return RepairResult(
                tree=repaired,
                power=ExplicitPower(power_map, fallback=base_fallback),
                slots_used=0,
                failed=failed,
                reattached=frozenset(),
                root_changed=global_root != tree.root_id,
            )

        participants = [survivors[node_id] for node_id in orphans]
        participants.extend(arriving.values())
        if old_root_alive:
            participants.append(survivors[tree.root_id])

        builder = (
            self.patch_builder
            if self.patch_builder is not None
            else InitialTreeBuilder(self.params, self.constants)
        )
        with span(
            "repair.patch",
            participants=len(participants),
            failed=len(failed),
            arrivals=len(arriving),
        ):
            patch = builder.build(participants, rng)
        if OBS.enabled:
            registry = OBS.registry
            registry.inc("repair.patches")
            if orphans:
                registry.inc("repair.reattached", len(orphans))
            if arriving:
                registry.inc("repair.arrivals", len(arriving))

        # Splice the patch: its links re-attach orphan subtree roots (and
        # hook up arrivals); stamps are shifted past the existing schedule so
        # they occupy fresh slots.
        offset = tree.aggregation_schedule.span + 1
        for link, slot in patch.tree.aggregation_schedule.items():
            parent[link.sender.id] = link.receiver.id
            slots[link.sender.id] = slot + offset
            power_map[link.endpoint_ids] = patch.power.power(link)
            power_map[link.dual.endpoint_ids] = patch.power.power(link.dual)

        # The patch's root is the node that stayed active in the re-run: if it
        # is the surviving old root the global root is unchanged, otherwise
        # the old root (or the orphans) now hang off the patch's root.
        if old_root_alive and patch.tree.root_id == tree.root_id:
            global_root = tree.root_id
        else:
            global_root = patch.tree.root_id
        if preferred_root_id is not None:
            global_root = self._reroot(parent, slots, spanned, global_root, preferred_root_id)
        repaired = BiTree.from_parent_map(spanned, global_root, parent, slots)
        self._splice_state(state, failed, arriving)
        return RepairResult(
            tree=repaired,
            power=ExplicitPower(power_map, fallback=base_fallback),
            slots_used=patch.slots_used,
            failed=failed,
            reattached=frozenset(orphans),
            root_changed=global_root != tree.root_id,
            arrived=frozenset(arriving),
        )

    @staticmethod
    def _reroot(
        parent: dict[int, int],
        slots: dict[int, int],
        spanned: Sequence[Node],
        current_root: int,
        new_root: int,
    ) -> int:
        """Re-root the parent map at ``new_root`` by reversing its root path.

        Every edge on the ``new_root -> current_root`` pointer chain flips
        direction; the flipped links take fresh slot stamps past the current
        schedule.  Pure pointer surgery - the links (and their recorded
        powers, which cover both directions) are unchanged, so the repaired
        structure remains a spanning bi-tree.
        """
        spanned_ids = {node.id for node in spanned}
        if new_root not in spanned_ids:
            raise ProtocolError(
                f"preferred root {new_root} is not among the spanned nodes"
            )
        if new_root == current_root:
            return current_root
        path = [new_root]
        # The pointer chain visits each node at most once, so the walk is
        # bounded by the map size.
        for _ in range(len(parent) + 1):
            if path[-1] == current_root:
                break
            follow = parent.get(path[-1])
            if follow is None:
                raise ProtocolError(
                    f"preferred root {new_root} is not connected to root {current_root}"
                )
            path.append(follow)
        if path[-1] != current_root:
            raise ProtocolError(
                f"parent chain from {new_root} never reached root {current_root}"
            )
        stamp = max(slots.values(), default=0)
        for child in path[:-1]:
            del parent[child]
            slots.pop(child, None)
        for child, old_parent in zip(path, path[1:]):
            parent[old_parent] = child
        # Fresh stamps run *toward* the new root: the old root (now deepest
        # on the flipped chain) fires first, each flipped parent after its
        # flipped child - the ordering convergecast needs.
        for node in reversed(path[1:]):
            stamp += 1
            slots[node] = stamp
        if OBS.enabled:
            OBS.registry.inc("repair.reroots")
        return new_root

    @staticmethod
    def _splice_state(
        state: NetworkState | None,
        failed: frozenset[int],
        arriving: dict[int, Node],
    ) -> None:
        """Mirror a successful repair into the caller's geometry store.

        Runs only after the repair itself succeeded, and the membership
        preconditions were validated before anything mutated, so neither a
        failed ``Init`` re-run nor a bad id can leave the state
        half-spliced.  Failures are O(1) slot releases; arrivals patch only
        their own matrix rows (O(k * capacity)) on the dense store, and are
        pure O(k) bookkeeping on a :class:`~repro.state.TiledNetworkState`
        (its tile grid and row caches rebuild lazily at the bumped version,
        so churn patching costs nothing quadratic there).
        """
        if state is None:
            return
        if failed:
            state.remove_nodes(sorted(failed))
        if arriving:
            state.add_nodes(arriving.values())
