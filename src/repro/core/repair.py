"""Tree repair after node failures (the paper's "dynamic situations" extension).

The paper's conclusion lists node failures as the natural next step.  This
module implements the straightforward repair protocol the machinery already
supports: when a set of nodes dies, every surviving subtree that lost its
path to the root re-attaches by running ``Init`` again - but only among the
*orphaned subtree roots* (plus the surviving root), so the repair cost scales
with the damage, ``O(log Delta * log k)`` slots for ``k`` affected subtrees,
not with the network size.

The repaired structure is again a strongly connected spanning tree of the
survivors and every newly added slot group is feasible under the recorded
powers.  The leaf-to-root *ordering* of the original schedule is generally
not preserved across the splice point; callers that need an aggregation-
ordered schedule afterwards should reschedule (``MeanPowerRescheduler``) or
rebuild (``TreeViaCapacity``) - both are cheap relative to reconstruction
from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..constants import DEFAULT_CONSTANTS, AlgorithmConstants
from ..exceptions import ProtocolError
from ..sinr import ExplicitPower, SINRParameters
from .bitree import BiTree
from .init_tree import InitialTreeBuilder
from .schedule import Schedule

__all__ = ["RepairResult", "TreeRepairer"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of repairing a bi-tree after node failures.

    Attributes:
        tree: the repaired spanning bi-tree over the surviving nodes.
        power: per-link powers covering both old and newly formed links.
        slots_used: channel slots spent by the repair protocol.
        failed: ids of the nodes that were removed.
        reattached: ids of the orphaned subtree roots that re-attached.
        root_changed: whether the repair elected a new root.
    """

    tree: BiTree
    power: ExplicitPower
    slots_used: int
    failed: frozenset[int]
    reattached: frozenset[int]
    root_changed: bool


class TreeRepairer:
    """Repairs a bi-tree after a set of nodes fails.

    Args:
        params: physical-model parameters.
        constants: protocol constants forwarded to the ``Init`` re-run.
    """

    def __init__(
        self,
        params: SINRParameters,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
    ):
        self.params = params
        self.constants = constants

    def repair(
        self,
        tree: BiTree,
        power: ExplicitPower,
        failed_ids: Iterable[int],
        rng: np.random.Generator,
    ) -> RepairResult:
        """Remove the failed nodes and re-attach every orphaned subtree.

        Args:
            tree: the existing bi-tree.
            power: the powers recorded for the existing tree links (both
                directions); the repaired tree reuses them for surviving links.
            failed_ids: ids of the nodes that failed.
            rng: source of randomness for the ``Init`` re-run.

        Raises:
            ProtocolError: if every node failed, or a failed id is unknown.
        """
        failed = frozenset(int(node_id) for node_id in failed_ids)
        unknown = failed - set(tree.nodes)
        if unknown:
            raise ProtocolError(f"unknown node ids in failure set: {sorted(unknown)[:5]}")
        survivors = {node_id: node for node_id, node in tree.nodes.items() if node_id not in failed}
        if not survivors:
            raise ProtocolError("all nodes failed; nothing to repair")

        # Surviving parent pointers, dropping every link that touches a failure.
        parent = {
            child: parent_id
            for child, parent_id in tree.parent.items()
            if child not in failed and parent_id not in failed
        }
        slots = {
            child: tree.aggregation_schedule.slot_of(
                next(l for l in tree.aggregation_links() if l.endpoint_ids == (child, parent_id))
            )
            for child, parent_id in parent.items()
        }

        # Orphaned subtree roots: survivors with no surviving parent pointer
        # that are not the (surviving) old root.
        old_root_alive = tree.root_id not in failed
        orphans = [
            node_id
            for node_id in survivors
            if node_id not in parent and not (old_root_alive and node_id == tree.root_id)
        ]

        power_map = dict(power.as_dict())
        if not orphans:
            repaired = BiTree.from_parent_map(list(survivors.values()), tree.root_id, parent, slots)
            return RepairResult(
                tree=repaired,
                power=ExplicitPower(power_map, fallback=power),
                slots_used=0,
                failed=failed,
                reattached=frozenset(),
                root_changed=False,
            )

        participants = [survivors[node_id] for node_id in orphans]
        if old_root_alive:
            participants.append(survivors[tree.root_id])

        builder = InitialTreeBuilder(self.params, self.constants)
        patch = builder.build(participants, rng)

        # Splice the patch: its links re-attach orphan subtree roots; stamps
        # are shifted past the existing schedule so they occupy fresh slots.
        offset = tree.aggregation_schedule.span + 1
        for link, slot in patch.tree.aggregation_schedule.items():
            parent[link.sender.id] = link.receiver.id
            slots[link.sender.id] = slot + offset
            power_map[link.endpoint_ids] = patch.power.power(link)
            power_map[link.dual.endpoint_ids] = patch.power.power(link.dual)

        # The patch's root is the node that stayed active in the re-run: if it
        # is the surviving old root the global root is unchanged, otherwise
        # the old root (or the orphans) now hang off the patch's root.
        if old_root_alive and patch.tree.root_id == tree.root_id:
            global_root = tree.root_id
        else:
            global_root = patch.tree.root_id
        repaired = BiTree.from_parent_map(list(survivors.values()), global_root, parent, slots)
        return RepairResult(
            tree=repaired,
            power=ExplicitPower(power_map, fallback=power),
            slots_used=patch.slots_used,
            failed=failed,
            reattached=frozenset(orphans),
            root_changed=global_root != tree.root_id,
        )
