"""Latency of convergecast, broadcast and pairwise communication on a bi-tree.

The bi-tree property (Definition 1) promises that once the structure and its
schedule exist, an aggregation (convergecast), a broadcast, and any node-to-
node message all complete within (twice) the schedule length.  These
simulations *replay* a bi-tree's schedule on the real SINR channel and check
that promise: every slot's transmissions are resolved physically, values are
combined at parents (or forwarded to children), and the outcome is compared
with the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..core.bitree import BiTree
from ..sinr import Channel, PowerAssignment, SINRParameters, Transmission

__all__ = [
    "ConvergecastOutcome",
    "BroadcastOutcome",
    "PairwiseOutcome",
    "simulate_convergecast",
    "simulate_broadcast",
    "pairwise_latency",
]


@dataclass(frozen=True)
class ConvergecastOutcome:
    """Result of replaying an aggregation schedule.

    Attributes:
        slots: number of channel slots replayed (the convergecast latency).
        root_value: the aggregate the root ended up with.
        expected_value: the true aggregate over all nodes.
        correct: whether the two coincide.
        failed_links: number of tree links whose transmission failed.
    """

    slots: int
    root_value: float
    expected_value: float
    correct: bool
    failed_links: int


@dataclass(frozen=True)
class BroadcastOutcome:
    """Result of replaying a dissemination schedule.

    Attributes:
        slots: number of channel slots replayed (the broadcast latency).
        reached: number of nodes that received the root's message.
        total: number of nodes that should have received it.
        complete: whether every node was reached.
    """

    slots: int
    reached: int
    total: int
    complete: bool


@dataclass(frozen=True)
class PairwiseOutcome:
    """Latency of a source-to-destination message routed through the root."""

    slots: int
    delivered: bool


def simulate_convergecast(
    tree: BiTree,
    power: PowerAssignment,
    params: SINRParameters,
    *,
    values: Mapping[int, float] | None = None,
    combine: Callable[[float, float], float] = lambda a, b: a + b,
) -> ConvergecastOutcome:
    """Replay the aggregation schedule and aggregate values up to the root.

    Args:
        tree: the bi-tree whose aggregation schedule is replayed.
        power: power assignment used by the tree links.
        params: physical-model parameters.
        values: initial value per node id (defaults to 1.0 each, so the
            correct aggregate under addition is the number of nodes).
        combine: associative, commutative combination function.
    """
    initial = {node_id: 1.0 for node_id in tree.nodes}
    if values is not None:
        initial.update({int(k): float(v) for k, v in values.items()})
    accumulator = dict(initial)
    channel = Channel(params)
    schedule = tree.aggregation_schedule
    failed = 0
    slots = 0
    for slot in schedule.used_slots():
        slots += 1
        group = schedule.links_in_slot(slot)
        transmissions = [
            Transmission(
                sender=link.sender,
                power=power.power(link),
                message=(link.sender.id, accumulator[link.sender.id]),
            )
            for link in group
        ]
        listeners = [link.receiver for link in group]
        receptions = channel.resolve(transmissions, listeners, slot=slots - 1)
        for link in group:
            reception = receptions.get(link.receiver.id)
            if reception is None or reception.sender.id != link.sender.id:
                failed += 1
                continue
            _, value = reception.message
            accumulator[link.receiver.id] = combine(accumulator[link.receiver.id], value)

    all_values = [initial[node_id] for node_id in tree.nodes]
    expected = all_values[0]
    for value in all_values[1:]:
        expected = combine(expected, value)
    root_value = accumulator[tree.root_id]
    return ConvergecastOutcome(
        slots=slots,
        root_value=root_value,
        expected_value=expected,
        correct=abs(root_value - expected) < 1e-9 and failed == 0,
        failed_links=failed,
    )


def simulate_broadcast(
    tree: BiTree,
    power: PowerAssignment,
    params: SINRParameters,
    *,
    payload: object = "broadcast",
) -> BroadcastOutcome:
    """Replay the dissemination schedule and flood a message from the root."""
    channel = Channel(params)
    schedule = tree.dissemination_schedule
    informed: set[int] = {tree.root_id}
    slots = 0
    for slot in schedule.used_slots():
        slots += 1
        group = schedule.links_in_slot(slot)
        # One transmission per informed sender; its scheduled children listen.
        senders = {}
        for link in group:
            if link.sender.id in informed:
                senders.setdefault(link.sender.id, link)
        transmissions = [
            Transmission(sender=link.sender, power=power.power(link), message=payload)
            for link in senders.values()
        ]
        listeners = [link.receiver for link in group]
        receptions = channel.resolve(transmissions, listeners, slot=slots - 1)
        for link in group:
            reception = receptions.get(link.receiver.id)
            if reception is not None and reception.sender.id == link.sender.id and link.sender.id in informed:
                informed.add(link.receiver.id)
    return BroadcastOutcome(
        slots=slots,
        reached=len(informed),
        total=len(tree.nodes),
        complete=len(informed) == len(tree.nodes),
    )


def pairwise_latency(
    tree: BiTree,
    power: PowerAssignment,
    params: SINRParameters,
    source_id: int,
    destination_id: int,
) -> PairwiseOutcome:
    """Latency of sending one message from ``source_id`` to ``destination_id``.

    The bi-tree routes any pairwise message by aggregating it to the root and
    broadcasting it back down, so the latency is the sum of the two replay
    lengths; delivery is checked by replaying both phases physically.
    """
    if source_id not in tree.nodes or destination_id not in tree.nodes:
        raise KeyError("source and destination must be tree nodes")
    up = simulate_convergecast(
        tree,
        power,
        params,
        values={node_id: (1.0 if node_id == source_id else 0.0) for node_id in tree.nodes},
        combine=max,
    )
    down = simulate_broadcast(tree, power, params, payload=("relay", source_id))
    delivered = up.correct and down.complete
    return PairwiseOutcome(slots=up.slots + down.slots, delivered=delivered)
