"""Analysis: metrics, latency replay, fault accounting, validation, reporting."""

from .faults import FaultReport, fault_report, overhead_table, round_overhead
from .latency import (
    BroadcastOutcome,
    ConvergecastOutcome,
    PairwiseOutcome,
    pairwise_latency,
    simulate_broadcast,
    simulate_convergecast,
)
from .metrics import (
    AffectanceStatistics,
    DegreeStatistics,
    ScheduleStatistics,
    affectance_statistics,
    degree_statistics,
    loglog_fit,
    schedule_statistics,
    tree_sparsity,
)
from .reporting import (
    counters_table,
    dynamics_health_table,
    format_markdown_table,
    format_table,
    format_value,
    kernel_time_table,
)
from .validation import ValidationReport, validate_bitree, validate_connectivity_solution

__all__ = [
    "ConvergecastOutcome",
    "BroadcastOutcome",
    "PairwiseOutcome",
    "simulate_convergecast",
    "simulate_broadcast",
    "pairwise_latency",
    "DegreeStatistics",
    "degree_statistics",
    "ScheduleStatistics",
    "schedule_statistics",
    "AffectanceStatistics",
    "affectance_statistics",
    "tree_sparsity",
    "loglog_fit",
    "format_table",
    "format_markdown_table",
    "format_value",
    "dynamics_health_table",
    "kernel_time_table",
    "counters_table",
    "ValidationReport",
    "validate_bitree",
    "validate_connectivity_solution",
    "FaultReport",
    "fault_report",
    "overhead_table",
    "round_overhead",
]
