"""Plain-text table rendering for experiment results.

The experiment harness produces rows of dictionaries; this module turns them
into aligned text / Markdown tables so benchmark output and EXPERIMENTS.md can
share the same rendering.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_value",
    "dynamics_health_table",
    "kernel_time_table",
    "counters_table",
    "gauges_table",
]


def format_value(value: Any) -> str:
    """Human-friendly rendering of a single cell value."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _normalize_rows(
    rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None
) -> tuple[list[str], list[list[str]]]:
    if columns is None:
        seen: list[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    return list(columns), rendered


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    header, body = _normalize_rows(rows, columns)
    widths = [len(column) for column in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(column.ljust(widths[index]) for index, column in enumerate(header)))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for row in body:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def dynamics_health_table(records: Iterable[Any], title: str | None = None) -> str:
    """Aligned table over the epoch records of a dynamic run.

    Takes the ``EpochRecord`` sequence of a
    :class:`repro.dynamics.DynamicRunResult` (duck-typed, so the analysis
    layer stays import-independent of the dynamics subsystem) and renders the
    per-epoch health: population, movement, churn, repair cost, schedule
    feasibility, physical delivery rate, and connectivity.
    """
    rows = [
        {
            "epoch": record.epoch,
            "nodes": record.n_nodes,
            "moved": record.moved,
            "failed": len(record.failed),
            "arrived": len(record.arrived),
            "repair_slots": record.repair_slots,
            "feasible": f"{record.feasible_fraction:.0%}",
            "delivered": f"{record.link_success_rate:.0%}",
            "connected": record.strongly_connected,
        }
        for record in records
    ]
    return format_table(rows, title=title)


def kernel_time_table(registry: Any, title: str | None = None) -> str:
    """Per-kernel wall-time table from an obs metrics registry.

    Takes anything with the ``counters()`` iterator of
    :class:`repro.obs.MetricsRegistry` (duck-typed, so the analysis layer
    stays import-independent of the telemetry subsystem) and joins the
    ``kernel.calls`` / ``kernel.time_ns`` counter families into one table,
    sorted by total time.  Timings are inclusive: a kernel that calls
    another kernel contributes to both rows.
    """
    calls: dict[str, float] = {}
    times: dict[str, float] = {}
    for name, labels, value in registry.counters():
        kernel = labels.get("kernel")
        if kernel is None:
            continue
        if name == "kernel.calls":
            calls[kernel] = value
        elif name == "kernel.time_ns":
            times[kernel] = value
    rows = []
    for kernel in sorted(set(calls) | set(times), key=lambda k: -times.get(k, 0.0)):
        total_ns = times.get(kernel, 0.0)
        n_calls = calls.get(kernel, 0.0)
        rows.append(
            {
                "kernel": kernel,
                "calls": int(n_calls),
                "total_ms": total_ns / 1e6,
                "per_call_us": (total_ns / n_calls / 1e3) if n_calls else 0.0,
            }
        )
    return format_table(rows, title=title)


def counters_table(
    registry: Any,
    title: str | None = None,
    exclude_prefixes: Sequence[str] = ("kernel.",),
) -> str:
    """Aligned table of every counter in an obs metrics registry.

    Kernel-timer counters are excluded by default because
    :func:`kernel_time_table` renders them joined; pass
    ``exclude_prefixes=()`` to include everything.
    """
    rows = [
        {
            "counter": name,
            "labels": ", ".join(f"{key}={value}" for key, value in labels.items()) or "-",
            "value": int(value) if float(value).is_integer() else value,
        }
        for name, labels, value in registry.counters()
        if not name.startswith(tuple(exclude_prefixes))
    ]
    return format_table(rows, title=title)


def gauges_table(
    registry: Any,
    title: str | None = None,
) -> str:
    """Aligned table of every gauge (last-written value) in a registry.

    Gauges record point-in-time quantities - resident bytes of the tiled
    geometry store, near pairs currently held - where the last value, not a
    running total, is the number of interest.
    """
    rows = [
        {
            "gauge": name,
            "labels": ", ".join(f"{key}={value}" for key, value in labels.items()) or "-",
            "value": int(value) if float(value).is_integer() else value,
        }
        for name, labels, value in registry.gauges()
    ]
    return format_table(rows, title=title)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    header, body = _normalize_rows(rows, columns)
    lines = ["| " + " | ".join(header) + " |", "|" + "|".join("---" for _ in header) + "|"]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
