"""Plain-text table rendering for experiment results.

The experiment harness produces rows of dictionaries; this module turns them
into aligned text / Markdown tables so benchmark output and EXPERIMENTS.md can
share the same rendering.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_value",
    "dynamics_health_table",
]


def format_value(value: Any) -> str:
    """Human-friendly rendering of a single cell value."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _normalize_rows(
    rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None
) -> tuple[list[str], list[list[str]]]:
    if columns is None:
        seen: list[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    return list(columns), rendered


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    header, body = _normalize_rows(rows, columns)
    widths = [len(column) for column in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(column.ljust(widths[index]) for index, column in enumerate(header)))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for row in body:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def dynamics_health_table(records: Iterable[Any], title: str | None = None) -> str:
    """Aligned table over the epoch records of a dynamic run.

    Takes the ``EpochRecord`` sequence of a
    :class:`repro.dynamics.DynamicRunResult` (duck-typed, so the analysis
    layer stays import-independent of the dynamics subsystem) and renders the
    per-epoch health: population, movement, churn, repair cost, schedule
    feasibility, physical delivery rate, and connectivity.
    """
    rows = [
        {
            "epoch": record.epoch,
            "nodes": record.n_nodes,
            "moved": record.moved,
            "failed": len(record.failed),
            "arrived": len(record.arrived),
            "repair_slots": record.repair_slots,
            "feasible": f"{record.feasible_fraction:.0%}",
            "delivered": f"{record.link_success_rate:.0%}",
            "connected": record.strongly_connected,
        }
        for record in records
    ]
    return format_table(rows, title=title)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    header, body = _normalize_rows(rows, columns)
    lines = ["| " + " | ".join(header) + " |", "|" + "|".join("---" for _ in header) + "|"]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
