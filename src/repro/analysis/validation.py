"""End-to-end validators for connectivity structures and their schedules.

These are the checks the experiments (and the integration tests) run on every
produced structure:

* the structure spans all nodes and is strongly connected;
* the schedule covers every tree link and every slot group is feasible under
  the recorded power assignment;
* the aggregation schedule respects the leaf-to-root ordering;
* a physically replayed convergecast and broadcast both complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.bitree import BiTree
from ..exceptions import ScheduleError
from ..geometry import Node
from ..sinr import PowerAssignment, SINRParameters
from .latency import simulate_broadcast, simulate_convergecast

__all__ = ["ValidationReport", "validate_bitree", "validate_connectivity_solution"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a full bi-tree validation.

    Attributes:
        spanning: parent map is a spanning in-tree over the given nodes.
        strongly_connected: the bidirectional link set strongly connects them.
        schedule_feasible: every aggregation slot is feasible under the power.
        dissemination_feasible: every dissemination slot is feasible.
        aggregation_order: the schedule respects the aggregation order.
        convergecast_ok: a replayed convergecast delivered the true aggregate.
        broadcast_ok: a replayed broadcast reached every node.
        issues: human-readable list of everything that failed.
    """

    spanning: bool
    strongly_connected: bool
    schedule_feasible: bool
    dissemination_feasible: bool
    aggregation_order: bool
    convergecast_ok: bool
    broadcast_ok: bool
    issues: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return not self.issues


def validate_bitree(
    tree: BiTree,
    nodes: Sequence[Node],
    power: PowerAssignment,
    params: SINRParameters,
    *,
    check_latency: bool = True,
) -> ValidationReport:
    """Run the full validation battery on a bi-tree.

    Args:
        tree: the structure to validate.
        nodes: the nodes it is supposed to span.
        power: the power assignment its schedule claims feasibility under.
        params: physical-model parameters.
        check_latency: also replay convergecast and broadcast on the channel.
    """
    issues: list[str] = []

    expected_ids = {node.id for node in nodes}
    spanning = True
    try:
        tree.validate()
        if set(tree.nodes) != expected_ids:
            spanning = False
            issues.append("tree does not span the expected node set")
    except ScheduleError as error:
        spanning = False
        issues.append(f"structure: {error}")

    strongly_connected = tree.is_strongly_connected()
    if not strongly_connected:
        issues.append("bidirectional link set is not strongly connected")

    schedule_feasible = tree.aggregation_schedule.is_feasible(power, params)
    if not schedule_feasible:
        bad = tree.aggregation_schedule.infeasible_slots(power, params)
        issues.append(f"aggregation schedule has {len(bad)} infeasible slots")
    dissemination_feasible = tree.dissemination_schedule.is_feasible(power, params)
    if not dissemination_feasible:
        bad = tree.dissemination_schedule.infeasible_slots(power, params)
        issues.append(f"dissemination schedule has {len(bad)} infeasible slots")

    aggregation_order = True
    try:
        tree.validate_aggregation_order()
    except ScheduleError as error:
        aggregation_order = False
        issues.append(f"ordering: {error}")

    convergecast_ok = True
    broadcast_ok = True
    if check_latency:
        up = simulate_convergecast(tree, power, params)
        convergecast_ok = up.correct
        if not convergecast_ok:
            issues.append(
                f"convergecast failed ({up.failed_links} link failures, "
                f"root got {up.root_value} expected {up.expected_value})"
            )
        down = simulate_broadcast(tree, power, params)
        broadcast_ok = down.complete
        if not broadcast_ok:
            issues.append(f"broadcast reached {down.reached}/{down.total} nodes")

    return ValidationReport(
        spanning=spanning,
        strongly_connected=strongly_connected,
        schedule_feasible=schedule_feasible,
        dissemination_feasible=dissemination_feasible,
        aggregation_order=aggregation_order,
        convergecast_ok=convergecast_ok,
        broadcast_ok=broadcast_ok,
        issues=tuple(issues),
    )


def validate_connectivity_solution(
    tree: BiTree,
    nodes: Sequence[Node],
    power: PowerAssignment,
    params: SINRParameters,
) -> None:
    """Validate a bi-tree and raise on any failure.

    Raises:
        ScheduleError: describing every failed check.
    """
    report = validate_bitree(tree, nodes, power, params)
    if not report.ok:
        raise ScheduleError("; ".join(report.issues))
