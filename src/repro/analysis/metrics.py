"""Metrics over trees, link sets and schedules used by the experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.bitree import BiTree
from ..core.schedule import Schedule
from ..links import Link, LinkSet, sparsity
from ..sinr import PowerAssignment, SINRParameters, affectance_matrix

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "ScheduleStatistics",
    "schedule_statistics",
    "tree_sparsity",
    "affectance_statistics",
    "AffectanceStatistics",
    "loglog_fit",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Degree distribution summary of a tree or link set.

    Attributes:
        max_degree: largest node degree.
        mean_degree: average node degree.
        degree_histogram: mapping from degree value to node count.
    """

    max_degree: int
    mean_degree: float
    degree_histogram: dict[int, int]


def degree_statistics(links: LinkSet | BiTree) -> DegreeStatistics:
    """Degree statistics of a link set or of a bi-tree's undirected edges."""
    if isinstance(links, BiTree):
        degrees = links.degrees()
    else:
        degrees = links.degrees()
    if not degrees:
        return DegreeStatistics(0, 0.0, {})
    values = list(degrees.values())
    histogram: dict[int, int] = {}
    for value in values:
        histogram[value] = histogram.get(value, 0) + 1
    return DegreeStatistics(
        max_degree=max(values),
        mean_degree=float(np.mean(values)),
        degree_histogram=dict(sorted(histogram.items())),
    )


@dataclass(frozen=True)
class ScheduleStatistics:
    """Summary of a schedule's shape.

    Attributes:
        length: number of distinct slots used.
        links: number of scheduled links.
        max_slot_size: largest number of links sharing a slot.
        mean_slot_size: average links per used slot.
    """

    length: int
    links: int
    max_slot_size: int
    mean_slot_size: float


def schedule_statistics(schedule: Schedule) -> ScheduleStatistics:
    """Shape statistics of a schedule."""
    groups = schedule.slot_groups()
    if not groups:
        return ScheduleStatistics(0, 0, 0, 0.0)
    sizes = [len(group) for group in groups.values()]
    return ScheduleStatistics(
        length=len(groups),
        links=len(schedule),
        max_slot_size=max(sizes),
        mean_slot_size=float(np.mean(sizes)),
    )


def tree_sparsity(tree: BiTree, length_factor: float = 8.0) -> int:
    """Measured psi-sparsity of a bi-tree's aggregation links (Theorem 11)."""
    return sparsity(tree.aggregation_links(), length_factor).psi


@dataclass(frozen=True)
class AffectanceStatistics:
    """Affectance summary of a link set under a power assignment.

    Attributes:
        mean_incoming: average total affectance suffered per link
            (the quantity Lemma 14 bounds by O(Upsilon) on ``T(M)``).
        max_incoming: worst-case total affectance on a link.
        total: sum of all pairwise affectances.
    """

    mean_incoming: float
    max_incoming: float
    total: float


def affectance_statistics(
    links: Sequence[Link] | LinkSet, power: PowerAssignment, params: SINRParameters
) -> AffectanceStatistics:
    """Affectance statistics of a link set under ``power``."""
    link_list = list(links)
    if len(link_list) < 2:
        return AffectanceStatistics(0.0, 0.0, 0.0)
    matrix = affectance_matrix(link_list, power, params)
    incoming = matrix.sum(axis=0)
    return AffectanceStatistics(
        mean_incoming=float(incoming.mean()),
        max_incoming=float(incoming.max()),
        total=float(matrix.sum()),
    )


def loglog_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y ~ c * x**k`` returning ``(k, c)``.

    Used by the experiment harness to check growth shapes (e.g. schedule
    length vs ``log n``).  Requires positive data.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("loglog_fit requires positive values")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, deg=1)
    return float(slope), float(math.exp(intercept))
