"""Fault accounting: turn netsim runs into overhead tables.

The message runtime reports what the transport did (drops, delays, crashes)
and what the protocol paid for it (extra slots, retransmissions, completion
patches).  This module condenses those raw counters into the two artifacts
the loss-resilience experiment and the chaos CI job publish: a per-run
:class:`FaultReport` and cross-run overhead tables keyed by loss rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..netsim import FailoverResult, NetInitResult
from .reporting import format_table

__all__ = ["FaultReport", "fault_report", "overhead_table", "round_overhead"]


@dataclass(frozen=True)
class FaultReport:
    """What one netsim run suffered and what surviving it cost.

    Attributes:
        n_nodes: nodes the run started with.
        n_alive: nodes spanned by the final tree.
        slots: total slots, completion patch included.
        oracle_slots: the lockstep oracle's slot cost for the same instance
            (0 when no oracle run is available).
        round_overhead: ``slots / oracle_slots`` (1.0 = faultless parity).
        transmissions: transmissions attempted across all nodes.
        dropped: messages the transport dropped.
        delayed: messages the transport delayed.
        crashes: crash transitions observed.
        completion_slots: slots spent by the tree-completion patch.
        reattached: orphaned subtree roots the patch re-attached.
        retries: reliable-outbox retransmissions across all nodes.
        timeouts: reliable-outbox deliveries that exhausted their budget.
        elections: leader elections the run had to hold (root failures).
        election_rounds: candidate campaigns across all elections.
        election_slots: channel slots spent electing.
        reroots: tree re-rooting splices performed after elections.
        degraded: whether any protocol stage finished with a partial
            result (missing subtrees, dropped winners, ...).
    """

    n_nodes: int
    n_alive: int
    slots: int
    oracle_slots: int
    round_overhead: float
    transmissions: int
    dropped: int
    delayed: int
    crashes: int
    completion_slots: int
    reattached: int
    retries: int = 0
    timeouts: int = 0
    elections: int = 0
    election_rounds: int = 0
    election_slots: int = 0
    reroots: int = 0
    degraded: bool = False

    def as_row(self) -> dict[str, Any]:
        """Flat dictionary form for the reporting tables."""
        return {
            "n": self.n_nodes,
            "alive": self.n_alive,
            "slots": self.slots,
            "overhead": round(self.round_overhead, 3),
            "tx": self.transmissions,
            "dropped": self.dropped,
            "delayed": self.delayed,
            "crashes": self.crashes,
            "patch_slots": self.completion_slots,
            "reattached": self.reattached,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "elections": self.elections,
            "election_slots": self.election_slots,
            "reroots": self.reroots,
            "degraded": self.degraded,
        }


def round_overhead(slots: int, oracle_slots: int) -> float:
    """Slot cost relative to the lockstep oracle (1.0 = parity)."""
    return slots / max(oracle_slots, 1)


def fault_report(
    result: NetInitResult,
    *,
    n_nodes: int | None = None,
    oracle_slots: int = 0,
    failover: FailoverResult | None = None,
    degraded: bool = False,
) -> FaultReport:
    """Condense a :class:`~repro.netsim.NetInitResult` into a report.

    Args:
        result: the netsim ``Init`` outcome.
        n_nodes: deployment size before crashes (defaults to tree + crashed).
        oracle_slots: the lockstep oracle's cost, when one was run.
        failover: root-failover outcome, when the run's root crashed and a
            leader election + re-root recovered the tree.
        degraded: whether a later stage (aggregation, selection) on this
            run reported a partial result.
    """
    alive = result.tree.size
    total = n_nodes if n_nodes is not None else alive + len(result.crashed)
    summary = result.fault_summary
    slots = result.slots_used
    elections = election_rounds = election_slots = reroots = 0
    if failover is not None:
        elections = 1
        election_rounds = failover.election.rounds_used
        election_slots = failover.election.slots_used
        reroots = 1 if failover.repair.root_changed else 0
        slots += failover.slots_used
        alive = failover.tree.size
    return FaultReport(
        n_nodes=total,
        n_alive=alive,
        slots=slots,
        oracle_slots=oracle_slots,
        round_overhead=round_overhead(slots, oracle_slots),
        transmissions=sum(result.send_budget.values()),
        dropped=int(summary.get("dropped", 0)),
        delayed=int(summary.get("delayed", 0)),
        crashes=int(summary.get("crashes", 0)),
        completion_slots=result.completion_slots,
        reattached=len(result.reattached),
        retries=int(summary.get("retries", 0)),
        timeouts=int(summary.get("timeouts", 0)),
        elections=elections,
        election_rounds=election_rounds,
        election_slots=election_slots,
        reroots=reroots,
        degraded=degraded,
    )


def overhead_table(
    cells: Mapping[float, Sequence[FaultReport]],
    *,
    title: str = "Round overhead by loss rate",
) -> str:
    """Aligned table of mean overheads, one row per loss rate.

    Args:
        cells: loss rate -> reports gathered at that rate.
        title: table heading.
    """
    rows: list[dict[str, Any]] = []
    for loss in sorted(cells):
        reports = list(cells[loss])
        if not reports:
            continue
        count = len(reports)
        rows.append(
            {
                "loss": loss,
                "runs": count,
                "mean_overhead": round(
                    sum(r.round_overhead for r in reports) / count, 3
                ),
                "mean_tx": round(sum(r.transmissions for r in reports) / count, 1),
                "mean_dropped": round(sum(r.dropped for r in reports) / count, 1),
                "mean_delayed": round(sum(r.delayed for r in reports) / count, 1),
                "mean_retries": round(sum(r.retries for r in reports) / count, 1),
                "mean_timeouts": round(sum(r.timeouts for r in reports) / count, 1),
                "mean_patch_slots": round(
                    sum(r.completion_slots for r in reports) / count, 1
                ),
                "elections": sum(r.elections for r in reports),
                "mean_election_slots": round(
                    sum(r.election_slots for r in reports) / count, 1
                ),
                "reroots": sum(r.reroots for r in reports),
                "degraded": sum(1 for r in reports if r.degraded),
            }
        )
    return format_table(rows, title=title)
