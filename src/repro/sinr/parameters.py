"""SINR model parameters.

The physical (SINR) model of interference, Eqn. (1) of the paper: a
transmission from ``u`` to ``v`` succeeds when

    (P_u / d(u,v)**alpha) / (N + sum_w P_w / d(w,v)**alpha) >= beta

where ``alpha > 2`` is the path-loss exponent, ``beta`` the required SINR
threshold, and ``N`` the ambient noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError

__all__ = ["SINRParameters", "DEFAULT_PARAMETERS"]


@dataclass(frozen=True)
class SINRParameters:
    """Immutable bundle of physical-model parameters.

    Attributes:
        alpha: path-loss exponent; must exceed 2 (the plane's critical value).
        beta: minimum signal-to-interference-and-noise ratio for success.
        noise: ambient noise power ``N``.
        epsilon: the cap constant in the thresholded affectance
            ``min(1 + epsilon, ...)`` (Section 5).
        max_power: optional hard cap on transmit power.  The paper imposes no
            cap; a finite value is useful for sensitivity studies only.
    """

    alpha: float = 3.0
    beta: float = 1.5
    noise: float = 1.0
    epsilon: float = 0.1
    max_power: float | None = None

    def __post_init__(self) -> None:
        if self.alpha <= 2.0:
            raise ConfigurationError(f"alpha must exceed 2, got {self.alpha}")
        if self.beta <= 0.0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")
        if self.noise < 0.0:
            raise ConfigurationError(f"noise must be non-negative, got {self.noise}")
        if self.epsilon <= 0.0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_power is not None and self.max_power <= 0.0:
            raise ConfigurationError(f"max_power must be positive, got {self.max_power}")

    def min_power_for(self, length: float, slack: float = 2.0) -> float:
        """Smallest power keeping the link cost ``c(u, v)`` at most ``slack * beta``.

        The paper requires ``c(u, v) <= 2 * beta``, which a sender guarantees
        by transmitting with power at least ``2 * beta * N * d**alpha``
        (Section 6 uses exactly this with ``d = 2**r``).

        Args:
            length: link length ``d(u, v)``.
            slack: multiple of ``beta`` allowed for the link cost; the paper's
                choice is 2.

        Raises:
            ConfigurationError: if ``slack <= 1`` (the cost can never fall to
                ``beta`` at finite power when noise is positive).
        """
        if slack <= 1.0:
            raise ConfigurationError("slack must exceed 1")
        if length <= 0:
            raise ValueError("length must be positive")
        if self.noise == 0.0:
            return 0.0
        return slack / (slack - 1.0) * self.beta * self.noise * length**self.alpha

    def with_overrides(self, **kwargs: float) -> "SINRParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_PARAMETERS = SINRParameters()
