"""SINR model parameters.

The physical (SINR) model of interference, Eqn. (1) of the paper: a
transmission from ``u`` to ``v`` succeeds when

    (P_u / d(u,v)**alpha) / (N + sum_w P_w / d(w,v)**alpha) >= beta

where ``alpha > 2`` is the path-loss exponent, ``beta`` the required SINR
threshold, and ``N`` the ambient noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamics uses sinr)
    from ..dynamics.gain import GainModel

__all__ = ["SINRParameters", "DEFAULT_PARAMETERS"]


@dataclass(frozen=True)
class SINRParameters:
    """Immutable bundle of physical-model parameters.

    Attributes:
        alpha: path-loss exponent; must exceed 2 (the plane's critical value).
        beta: minimum signal-to-interference-and-noise ratio for success.
        noise: ambient noise power ``N``.
        epsilon: the cap constant in the thresholded affectance
            ``min(1 + epsilon, ...)`` (Section 5).
        max_power: optional hard cap on transmit power.  The paper imposes no
            cap; a finite value is useful for sensitivity studies only.
        gain_model: optional channel-gain model (``repro.dynamics.gain``)
            multiplying the deterministic path loss with per-pair fade
            factors.  ``None`` (the default) is the paper's pure
            ``P / d**alpha`` model; every kernel then takes its original code
            path, bit-for-bit.  The model must be a pure function of
            ``(configuration, node ids, slot)`` so cached matrices keyed by
            this parameter bundle stay valid.
        store: geometry-store selector, ``"dense"`` (default) or
            ``"tiled"``.  Dense materializes the exact O(n^2) matrices and
            stays the parity oracle at small n; tiled
            (:class:`repro.state.TiledNetworkState`) is O(n), exact inside
            the near radius with tile-aggregated far fields, and is what
            unlocks n >= 50k runs.  The model arithmetic is identical under
            both; only row-*total* far fields carry a declared, bounded
            approximation (see ``TiledAffectanceTotals.far_error_bound``).
    """

    alpha: float = 3.0
    beta: float = 1.5
    noise: float = 1.0
    epsilon: float = 0.1
    max_power: float | None = None
    gain_model: "GainModel | None" = None
    store: str = "dense"

    def __post_init__(self) -> None:
        if self.alpha <= 2.0:
            raise ConfigurationError(f"alpha must exceed 2, got {self.alpha}")
        if self.beta <= 0.0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")
        if self.noise < 0.0:
            raise ConfigurationError(f"noise must be non-negative, got {self.noise}")
        if self.epsilon <= 0.0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_power is not None and self.max_power <= 0.0:
            raise ConfigurationError(f"max_power must be positive, got {self.max_power}")
        if self.store not in ("dense", "tiled"):
            raise ConfigurationError(f"store must be 'dense' or 'tiled', got {self.store!r}")

    def min_power_for(self, length: float, slack: float = 2.0) -> float:
        """Smallest power keeping the link cost ``c(u, v)`` at most ``slack * beta``.

        The paper requires ``c(u, v) <= 2 * beta``, which a sender guarantees
        by transmitting with power at least ``2 * beta * N * d**alpha``
        (Section 6 uses exactly this with ``d = 2**r``).

        Args:
            length: link length ``d(u, v)``.
            slack: multiple of ``beta`` allowed for the link cost; the paper's
                choice is 2.

        Raises:
            ConfigurationError: if ``slack <= 1`` (the cost can never fall to
                ``beta`` at finite power when noise is positive).
        """
        if slack <= 1.0:
            raise ConfigurationError("slack must exceed 1")
        if length <= 0:
            raise ValueError("length must be positive")
        if self.noise == 0.0:
            return 0.0
        return slack / (slack - 1.0) * self.beta * self.noise * length**self.alpha

    @property
    def effective_gain_model(self) -> "GainModel | None":
        """The gain model when it can actually perturb results, else ``None``.

        Kernels branch on this: a ``None`` (absent *or* deterministic) model
        means the original hardcoded-path-loss code path runs unmodified, so
        ``DeterministicPathLoss`` is bit-for-bit equivalent to no model.
        """
        model = self.gain_model
        if model is None or model.deterministic:
            return None
        return model

    def with_overrides(self, **kwargs: object) -> "SINRParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_PARAMETERS = SINRParameters()
