"""SINR physical-model substrate: parameters, power, affectance, channel."""

from .affectance import (
    affectance,
    affectance_between_links,
    affectance_matrix,
    average_affectance,
    incoming_affectance,
    link_cost,
    outgoing_affectance,
    total_affectance,
)
from .arrays import AffectanceAccumulator, LinkArrayCache, NodeArrayCache
from .channel import (
    MAX_CACHED_CHANNEL_NODES,
    CachedChannel,
    Channel,
    Reception,
    Transmission,
)
from .feasibility import (
    FEASIBILITY_TOLERANCE,
    FeasibilityReport,
    duplicate_senders,
    feasibility_report,
    is_feasible,
    is_schedulable_slot,
    sinr_values,
    violates_half_duplex,
)
from .parameters import DEFAULT_PARAMETERS, SINRParameters
from .power import (
    OBLIVIOUS_SCHEMES,
    ExplicitPower,
    LinearPower,
    MeanPower,
    PowerAssignment,
    UniformPower,
    oblivious_power_by_name,
)

__all__ = [
    "SINRParameters",
    "DEFAULT_PARAMETERS",
    "PowerAssignment",
    "UniformPower",
    "MeanPower",
    "LinearPower",
    "ExplicitPower",
    "OBLIVIOUS_SCHEMES",
    "oblivious_power_by_name",
    "link_cost",
    "affectance",
    "affectance_between_links",
    "affectance_matrix",
    "incoming_affectance",
    "outgoing_affectance",
    "total_affectance",
    "average_affectance",
    "FeasibilityReport",
    "feasibility_report",
    "is_feasible",
    "is_schedulable_slot",
    "sinr_values",
    "violates_half_duplex",
    "duplicate_senders",
    "FEASIBILITY_TOLERANCE",
    "Channel",
    "CachedChannel",
    "MAX_CACHED_CHANNEL_NODES",
    "Transmission",
    "Reception",
    "LinkArrayCache",
    "NodeArrayCache",
    "AffectanceAccumulator",
]
