"""Affectance: normalized, thresholded interference (Section 5 of the paper).

The affectance of a sender ``w`` (transmitting with power ``P_w``) on a link
``l = (u, v)`` whose own sender uses power ``P_u`` is

    a_w(l) = min( 1 + epsilon,
                  c(u, v) * (P_w / P_u) * (d(u, v) / d(w, v))**alpha )

with the link cost ``c(u, v) = beta / (1 - beta * N * d(u,v)**alpha / P_u)``.
A link set ``L`` is feasible exactly when the total affectance on each of its
links from the other senders is at most 1 (the thresholded rewriting of
Eqn. (1) adopted in the paper).

This module provides scalar forms (used by tests and by the distributed
agents, which can only measure what they receive) and vectorized matrix forms
(used by schedulers, validators and benchmarks).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..geometry import Node
from ..links import Link
from .arrays import LinkArrayCache
from .parameters import SINRParameters
from .power import PowerAssignment

__all__ = [
    "link_cost",
    "affectance",
    "affectance_between_links",
    "affectance_matrix",
    "incoming_affectance",
    "outgoing_affectance",
    "total_affectance",
    "average_affectance",
]


def _scalar_fade(params: SINRParameters, tx_id: int, rx_id: int) -> float:
    """Slot-free gain-model fade for one ordered node pair (1.0 = unit gain)."""
    model = params.effective_gain_model
    if model is None:
        return 1.0
    fade = model.fade_pairs(
        np.array([tx_id], dtype=np.int64), np.array([rx_id], dtype=np.int64), None
    )
    return 1.0 if fade is None else float(fade[0])


def link_cost(link: Link, sender_power: float, params: SINRParameters) -> float:
    """The cost term ``c(u, v)`` of a link given its sender's power.

    Returns ``math.inf`` when the power cannot overcome noise even without
    interference (the link is then infeasible outright).  Under a stochastic
    ``params.gain_model`` the sender's signal arrives scaled by the pair's
    fade factor, exactly as in the matrix kernels.
    """
    if sender_power <= 0:
        raise ValueError("sender_power must be positive")
    if params.noise == 0:
        return params.beta
    received = sender_power * _scalar_fade(params, link.sender.id, link.receiver.id)
    margin = 1.0 - params.beta * params.noise * link.length**params.alpha / received
    if margin <= 0:
        return math.inf
    return params.beta / margin


def affectance(
    interferer: Node,
    interferer_power: float,
    link: Link,
    link_power: float,
    params: SINRParameters,
) -> float:
    """Affectance of a single interfering sender on a link.

    The link's own sender never affects itself (returns 0).  An interferer
    co-located with the link's receiver saturates at ``1 + epsilon``.
    Gain-model fades scale both the interferer's landed power and the link's
    own signal, keeping this scalar form consistent with the
    :class:`~repro.sinr.arrays.LinkArrayCache` matrix path.
    """
    if interferer.id == link.sender.id:
        return 0.0
    if interferer_power <= 0:
        raise ValueError("interferer_power must be positive")
    cost = link_cost(link, link_power, params)
    cap = 1.0 + params.epsilon
    if math.isinf(cost):
        return cap
    separation = interferer.distance_to(link.receiver)
    if separation <= 0:
        return cap
    if params.effective_gain_model is None:
        power_ratio = interferer_power / link_power
    else:
        landed = interferer_power * _scalar_fade(params, interferer.id, link.receiver.id)
        wanted = link_power * _scalar_fade(params, link.sender.id, link.receiver.id)
        power_ratio = landed / wanted
    raw = cost * power_ratio * (link.length / separation) ** params.alpha
    return min(cap, raw)


def affectance_between_links(
    source: Link,
    target: Link,
    power: PowerAssignment,
    params: SINRParameters,
) -> float:
    """Affectance of ``source``'s sender (at its assigned power) on ``target``."""
    return affectance(
        interferer=source.sender,
        interferer_power=power.power(source),
        link=target,
        link_power=power.power(target),
        params=params,
    )


def affectance_matrix(
    links: Sequence[Link],
    power: PowerAssignment,
    params: SINRParameters,
) -> np.ndarray:
    """Pairwise affectance matrix ``A`` with ``A[i, j] = a_{l_i}(l_j)``.

    Row ``i`` is the affectance *caused by* link ``i``'s sender; column ``j``
    is the affectance *suffered by* link ``j``.  Diagonal entries are zero, as
    are entries where two links share the same sender node (a sender does not
    interfere with its own transmissions).

    ``links`` may be a :class:`~repro.sinr.arrays.LinkArrayCache`, in which
    case the cached structures are reused; the returned matrix is always a
    fresh writable array.
    """
    cache = links if isinstance(links, LinkArrayCache) else LinkArrayCache(links)
    return np.array(cache.affectance_matrix(power, params))


def incoming_affectance(
    links: Sequence[Link], power: PowerAssignment, params: SINRParameters
) -> np.ndarray:
    """Total affectance suffered by each link from all other links in the set."""
    return affectance_matrix(links, power, params).sum(axis=0)


def outgoing_affectance(
    links: Sequence[Link], power: PowerAssignment, params: SINRParameters
) -> np.ndarray:
    """Total affectance each link's sender causes on the other links in the set."""
    return affectance_matrix(links, power, params).sum(axis=1)


def total_affectance(
    links: Sequence[Link], power: PowerAssignment, params: SINRParameters
) -> float:
    """Sum of all pairwise affectances within the set (``a_L(L)``)."""
    return float(affectance_matrix(links, power, params).sum())


def average_affectance(
    links: Sequence[Link], power: PowerAssignment, params: SINRParameters
) -> float:
    """Average incoming affectance per link (0 for sets of size < 2)."""
    m = len(links)
    if m < 2:
        return 0.0
    return total_affectance(links, power, params) / m
