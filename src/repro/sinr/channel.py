"""The shared wireless channel.

The channel is the *only* means of communication in the paper's model: in
each slot some nodes transmit (each with a chosen power and message) and every
non-transmitting node receives the message of the strongest sender whose SINR
at that node meets the threshold ``beta`` - or nothing.

The :class:`Channel` is stateless with respect to time; the distributed
simulator (``repro.runtime``) calls :meth:`Channel.resolve` once per slot and
is responsible for slot accounting.

Decoding is fully vectorized: one argmax/SINR/threshold pass over the
transmitter-to-listener matrix resolves every listener at once
(:func:`decode_arrays`), and :class:`Reception` objects are constructed only
for the listeners that actually decode something.  The slot-loop hot path can
skip node-object marshalling entirely via :meth:`Channel.resolve_indices`,
which works on integer indices into a :class:`~repro.sinr.arrays.NodeArrayCache`.
The seed per-listener loop is preserved as :func:`decode_reference` so parity
tests (and benchmarks) can pin the vectorized pass against it bit-for-bit.

Two further gears sit on top of the vectorized pass (PR 5):

* every decode entry point accepts a ``workspace``
  (:class:`~repro.state.DecodeWorkspace`): the kernels then write into the
  arena's preallocated buffers via ``out=``/in-place ufuncs instead of
  allocating temporaries per slot.  Outputs are bit-for-bit identical to
  the allocating path and valid until the next decode into the same
  workspace;
* :func:`decode_many` evaluates ``T`` same-shape trials (Monte-Carlo fade
  draws, per-slot power sweeps) as one ``(T, n, n)`` tensor pass, so batch
  workloads amortize kernel dispatch across trials.  Each trial's decode is
  bit-identical to a separate :func:`decode_arrays` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .._types import DecodeTriple, FloatArray
from ..contracts import hot_kernel
from ..geometry import Node
from ..state import DecodeWorkspace, NetworkState, TiledNetworkState
from .arrays import NodeArrayCache
from .parameters import SINRParameters

__all__ = [
    "Transmission",
    "Reception",
    "Channel",
    "CachedChannel",
    "MAX_CACHED_CHANNEL_NODES",
    "decode_arrays",
    "decode_many",
    "decode_reference",
    "ensure_positive_powers",
]


def ensure_positive_powers(powers: np.ndarray) -> None:
    """Batch-path equivalent of the ``Transmission`` power check.

    The index-array engines never build :class:`Transmission` objects, so
    they validate their power vectors through this single helper instead of
    each re-implementing ``__post_init__``'s rule.
    """
    if np.any(powers <= 0):
        bad = powers[powers <= 0][0]
        raise ValueError(f"transmission power must be positive, got {bad}")


@dataclass(frozen=True)
class Transmission:
    """A single node transmitting one message at one power level in a slot."""

    sender: Node
    power: float
    message: Any = None

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ValueError(f"transmission power must be positive, got {self.power}")


@dataclass(frozen=True)
class Reception:
    """A successful reception at a listener.

    Attributes:
        sender: the node whose message was decoded.
        message: the decoded message payload.
        sinr: the SINR at which it was received.
    """

    sender: Node
    message: Any
    sinr: float


@hot_kernel(oracle="decode_reference")
def decode_arrays(
    dist: np.ndarray,
    powers: np.ndarray,
    params: SINRParameters,
    *,
    fade: FloatArray | None = None,
    workspace: DecodeWorkspace | None = None,
) -> DecodeTriple:
    """Vectorized SINR decode over a transmitter-to-listener distance matrix.

    ``dist[i, j]`` is the distance from transmitter ``i`` to listener ``j``
    and ``powers[i]`` the power of transmitter ``i``.  Every listener decodes
    the transmitter with the strongest received signal at its location,
    provided the SINR against all other signals meets ``params.beta``.

    Args:
        dist: transmitter-to-listener distance matrix.
        powers: per-transmitter power vector.
        params: physical-model parameters.
        fade: optional multiplicative fade-factor matrix (same shape as
            ``dist``) from a :class:`~repro.dynamics.gain.GainModel`; ``None``
            leaves the deterministic path loss untouched - the code path is
            then byte-identical to the seed kernel.
        workspace: optional scratch arena; the kernel then runs on
            preallocated buffers (zero per-call temporaries) and the
            returned arrays are views into it, valid until the next decode
            using the same workspace.

    Returns:
        ``(best, sinr, ok)``, each of length ``dist.shape[1]``: per listener,
        the row index of its strongest transmitter, the SINR of that signal
        (``inf`` when there is no interference and no noise), and whether the
        SINR clears ``beta``.  The arithmetic is elementwise identical to the
        seed per-listener loop (:func:`decode_reference`); parity tests pin
        this bit-for-bit.
    """
    if workspace is None:
        with np.errstate(divide="ignore"):
            received = powers[:, None] / np.maximum(dist, 1e-300) ** params.alpha
        received = np.where(dist <= 0, np.inf, received)
        if fade is not None:
            received = received * fade
        return _decode_received(received, params)

    received = workspace.floats("decode.received", *dist.shape)
    np.maximum(dist, 1e-300, out=received)
    np.power(received, params.alpha, out=received)
    with np.errstate(divide="ignore"):
        np.divide(powers[:, None], received, out=received)
    colocated = workspace.bools("decode.colocated", *dist.shape)
    np.less_equal(dist, 0, out=colocated)
    np.copyto(received, np.inf, where=colocated)
    if fade is not None:
        np.multiply(received, fade, out=received)
    return _decode_received(received, params, workspace)


@hot_kernel()
def _decode_received(
    received: np.ndarray,
    params: SINRParameters,
    workspace: DecodeWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode from the received-signal matrix (see :func:`decode_arrays`)."""
    if workspace is None:
        total = received.sum(axis=0) + params.noise
        best = received.argmax(axis=0)
        best_signal = received[best, np.arange(received.shape[1])]
        # A colocated transmitter (dist <= 0) makes the received entry
        # infinite; the seed loop then evaluates inf - inf = nan and decodes
        # nothing, so the nan must propagate here rather than be replaced.
        with np.errstate(divide="ignore", invalid="ignore"):
            interference = total - best_signal
            ratio = best_signal / interference
        sinr = np.where(interference <= 0, np.inf, ratio)
        ok = sinr >= params.beta
        return best, sinr, ok

    # Zero-allocation variant: same elementwise operations, destinations
    # reused from the arena.  The strongest signal is gathered with
    # maximum.reduce - the value at the argmax row, bit-identical to the
    # allocating path's fancy-index gather.
    n = received.shape[1]
    total = workspace.floats("decode.total", n)
    np.add.reduce(received, axis=0, out=total)
    np.add(total, params.noise, out=total)
    best = workspace.ints("decode.best", n)
    np.argmax(received, axis=0, out=best)
    best_signal = workspace.floats("decode.signal", n)
    np.maximum.reduce(received, axis=0, out=best_signal)
    interference = workspace.floats("decode.interference", n)
    sinr = workspace.floats("decode.sinr", n)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.subtract(total, best_signal, out=interference)
        np.divide(best_signal, interference, out=sinr)
    no_interference = workspace.bools("decode.mask", n)
    np.less_equal(interference, 0, out=no_interference)
    np.copyto(sinr, np.inf, where=no_interference)
    ok = workspace.bools("decode.ok", n)
    np.greater_equal(sinr, params.beta, out=ok)
    return best, sinr, ok


def _stacked_trials(dist: np.ndarray, powers: np.ndarray, fade: np.ndarray | None) -> int:
    """Trial count of a :func:`decode_many` input set (ValueError if unstacked)."""
    counts = set()
    if dist.ndim == 3:
        counts.add(dist.shape[0])
    if powers.ndim == 2:
        counts.add(powers.shape[0])
    if fade is not None and fade.ndim == 3:
        counts.add(fade.shape[0])
    if not counts:
        raise ValueError("no input carries a trial dimension; use decode_arrays")
    if len(counts) > 1:
        raise ValueError(f"inconsistent trial counts among the stacked inputs: {sorted(counts)}")
    return counts.pop()


@hot_kernel(oracle="decode_arrays")
def decode_many(
    dist: np.ndarray,
    powers: np.ndarray,
    params: SINRParameters,
    *,
    fade: FloatArray | None = None,
    workspace: DecodeWorkspace | None = None,
) -> DecodeTriple:
    """Trial-stacked :func:`decode_arrays`: ``T`` same-shape trials, one pass.

    Monte-Carlo sweeps evaluate the same geometry under ``T`` varying
    conditions - per-trial fade draws, per-slot power vectors.  Calling
    :func:`decode_arrays` per trial pays the kernel-dispatch overhead ``T``
    times; this stacks the trials into one ``(T, ntx, nrx)`` tensor pass.
    Inputs without a leading trial dimension are broadcast across trials:

    Args:
        dist: ``(ntx, nrx)`` shared geometry or ``(T, ntx, nrx)`` per trial.
        powers: ``(ntx,)`` shared powers or ``(T, ntx)`` per trial.
        params: physical-model parameters.
        fade: ``None``, a shared ``(ntx, nrx)`` fade matrix (slot-invariant
            models) or a ``(T, ntx, nrx)`` per-trial fade tensor.
        workspace: optional scratch arena (reused tensors across calls).

    Returns:
        ``(best, sinr, ok)``, each of shape ``(T, nrx)``.  Every trial row
        is bit-for-bit identical to a separate ``decode_arrays`` call on
        that trial's inputs (the reductions run per trial slice with the
        same memory layout; parity tests pin this).
    """
    dist = np.asarray(dist, dtype=float)
    powers = np.asarray(powers, dtype=float)
    if fade is not None:
        fade = np.asarray(fade, dtype=float)
    trials = _stacked_trials(dist, powers, fade)
    ntx, nrx = dist.shape[-2:]
    ws = DecodeWorkspace() if workspace is None else workspace

    # The path-loss denominator is evaluated in the inputs' natural shape
    # (once when the geometry is shared across trials), then broadcast.
    att = ws.floats("many.att", *dist.shape)
    np.maximum(dist, 1e-300, out=att)
    np.power(att, params.alpha, out=att)
    received = ws.floats("many.received", trials, ntx, nrx)
    power_cube = powers[:, :, None] if powers.ndim == 2 else powers[None, :, None]
    with np.errstate(divide="ignore"):
        np.divide(power_cube, att if att.ndim == 3 else att[None], out=received)
    colocated = ws.bools("many.colocated", *dist.shape)
    np.less_equal(dist, 0, out=colocated)
    np.copyto(received, np.inf, where=colocated if colocated.ndim == 3 else colocated[None])
    if fade is not None:
        np.multiply(received, fade if fade.ndim == 3 else fade[None], out=received)
    return _decode_received_stack(received, params, ws)


@hot_kernel()
def _decode_received_stack(
    received: np.ndarray, params: SINRParameters, ws: DecodeWorkspace
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-trial decode of a ``(T, ntx, nrx)`` received tensor.

    The single implementation of the stacked reduction tail
    (:func:`decode_many` and :meth:`Channel.resolve_indices_many` both end
    here).  The operation sequence mirrors :func:`_decode_received` exactly,
    with the reductions over axis 1 - each trial slice reduces in the same
    memory layout as the 2D kernel, which is what makes every trial row
    bit-identical to a per-slot decode; do not reorder.
    """
    trials, _, nrx = received.shape
    total = ws.floats("many.total", trials, nrx)
    np.add.reduce(received, axis=1, out=total)
    np.add(total, params.noise, out=total)
    best = ws.ints("many.best", trials, nrx)
    np.argmax(received, axis=1, out=best)
    best_signal = ws.floats("many.signal", trials, nrx)
    np.maximum.reduce(received, axis=1, out=best_signal)
    interference = ws.floats("many.interference", trials, nrx)
    sinr = ws.floats("many.sinr", trials, nrx)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.subtract(total, best_signal, out=interference)
        np.divide(best_signal, interference, out=sinr)
    no_interference = ws.bools("many.mask", trials, nrx)
    np.less_equal(interference, 0, out=no_interference)
    np.copyto(sinr, np.inf, where=no_interference)
    ok = ws.bools("many.ok", trials, nrx)
    np.greater_equal(sinr, params.beta, out=ok)
    return best, sinr, ok


def decode_reference(
    transmissions: Sequence[Transmission],
    active_listeners: Sequence[Node],
    dist: np.ndarray,
    powers: np.ndarray,
    params: SINRParameters,
    fade: np.ndarray | None = None,
) -> dict[int, Reception]:
    """The seed per-listener decode loop, kept as the parity/benchmark oracle."""
    with np.errstate(divide="ignore"):
        received = powers[:, None] / np.maximum(dist, 1e-300) ** params.alpha
    received = np.where(dist <= 0, np.inf, received)
    if fade is not None:
        received = received * fade

    total = received.sum(axis=0) + params.noise
    results: dict[int, Reception] = {}
    for j, listener in enumerate(active_listeners):
        signals = received[:, j]
        best = int(np.argmax(signals))
        interference = total[j] - signals[best]
        if interference <= 0:
            sinr = np.inf
        else:
            sinr = float(signals[best] / interference)
        if sinr >= params.beta:
            t = transmissions[best]
            results[listener.id] = Reception(sender=t.sender, message=t.message, sinr=sinr)
    return results


class Channel:
    """SINR channel resolving simultaneous transmissions into receptions.

    Args:
        params: the physical-model parameters.
    """

    __slots__ = ('params',)

    def __init__(self, params: SINRParameters) -> None:
        self.params = params

    def resolve(
        self,
        transmissions: Sequence[Transmission],
        listeners: Iterable[Node],
        slot: int | None = None,
    ) -> dict[int, Reception]:
        """Determine which listeners decode which transmission.

        A listener decodes the transmission with the highest SINR at its
        location, provided that SINR is at least ``beta``.  Nodes that are
        themselves transmitting never receive (half-duplex); transmitting
        nodes included in ``listeners`` are silently skipped.

        Args:
            transmissions: the transmissions taking place in this slot.  If a
                node appears as the sender of several transmissions a
                ``ValueError`` is raised - a radio sends one message per slot.
            listeners: the nodes listening in this slot.
            slot: global slot index, consumed only by a slot-dependent
                ``params.gain_model`` (e.g. Rayleigh fast fading); ``None``
                selects the model's slot-free draw.

        Returns:
            Mapping from listener node id to the :class:`Reception` it decoded.
            Listeners that decode nothing are absent from the mapping.
        """
        listener_list = [node for node in listeners]
        if not transmissions or not listener_list:
            return {}

        sender_ids = [t.sender.id for t in transmissions]
        if len(sender_ids) != len(set(sender_ids)):
            raise ValueError("a node cannot send two transmissions in the same slot")
        transmitting_ids = set(sender_ids)
        active_listeners = [node for node in listener_list if node.id not in transmitting_ids]
        if not active_listeners:
            return {}

        dist = self._distances(transmissions, active_listeners)
        powers = np.array([t.power for t in transmissions], dtype=float)
        model = self.params.effective_gain_model
        if model is None:
            return self._decode(transmissions, active_listeners, dist, powers)
        fade = model.fade(
            np.array(sender_ids, dtype=np.int64),
            np.array([n.id for n in active_listeners], dtype=np.int64),
            slot,
        )
        return self._decode(transmissions, active_listeners, dist, powers, fade=fade)

    def _distances(
        self, transmissions: Sequence[Transmission], active_listeners: Sequence[Node]
    ) -> np.ndarray:
        """Transmitter-to-listener distance matrix (overridden by caches)."""
        tx_xy = np.array([[t.sender.x, t.sender.y] for t in transmissions], dtype=float)
        rx_xy = np.array([[n.x, n.y] for n in active_listeners], dtype=float)
        diff = tx_xy[:, None, :] - rx_xy[None, :, :]
        return np.hypot(diff[..., 0], diff[..., 1])

    def _decode(
        self,
        transmissions: Sequence[Transmission],
        active_listeners: Sequence[Node],
        dist: np.ndarray,
        powers: np.ndarray,
        fade: np.ndarray | None = None,
    ) -> dict[int, Reception]:
        """Resolve receptions from a transmitter-to-listener distance matrix."""
        best, sinr, ok = decode_arrays(dist, powers, self.params, fade=fade)
        results: dict[int, Reception] = {}
        for j in np.nonzero(ok)[0]:
            t = transmissions[int(best[j])]
            results[active_listeners[j].id] = Reception(
                sender=t.sender, message=t.message, sinr=float(sinr[j])
            )
        return results

    def _index_fade(
        self,
        cache: NodeArrayCache,
        tx: np.ndarray,
        rx: np.ndarray | None,
        slot: int | None,
        workspace: DecodeWorkspace | None = None,
    ) -> np.ndarray | None:
        """Gain-model fade block for index arrays (``rx=None`` = all nodes).

        Slot-invariant models (static shadowing) are served from the node
        cache's per-model fade matrix - hashed once, sliced per slot - while
        slot-dependent models (fast fading) are evaluated fresh.  ``None``
        means unit gain: the caller skips the multiplication.
        """
        model = self.params.effective_gain_model
        if model is None:
            return None
        if model.slot_invariant:
            # Served from the shared state's per-model fade matrix - hashed
            # once, patched under churn, gathered per slot.
            return cache.fade_block(model, tx, rx, workspace=workspace)
        rx_ids = cache.ids if rx is None else cache.ids[rx]
        return model.fade(cache.ids[tx], rx_ids, slot)

    def resolve_indices(
        self,
        tx_indices: np.ndarray,
        rx_indices: np.ndarray,
        powers: np.ndarray,
        cache: NodeArrayCache,
        slot: int | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index-array fast path of :meth:`resolve` against a node cache.

        Skips all node-object marshalling: transmitters and listeners are
        integer indices into ``cache`` and powers a plain float vector.

        Unlike :meth:`resolve`, the caller owns the protocol invariants: the
        transmitter indices must be distinct, the listener indices must not
        contain a transmitting node (half-duplex), and powers must be
        positive.  The slot engines that call this enforce all three by
        construction.

        Returns:
            ``(best, sinr, ok)`` aligned to ``rx_indices``; ``best`` holds
            positions into ``tx_indices`` (see :func:`decode_arrays`).  With
            a ``workspace``, the arrays are views into it, valid until the
            next decode through the same workspace.
        """
        tx = np.asarray(tx_indices, dtype=np.intp)
        rx = np.asarray(rx_indices, dtype=np.intp)
        if tx.size == 0 or rx.size == 0:
            return (
                np.zeros(rx.size, dtype=np.intp),
                np.zeros(rx.size, dtype=float),
                np.zeros(rx.size, dtype=bool),
            )
        # The state stores max(d, 1e-300)**alpha with colocated pairs zeroed,
        # so the gather-and-divide below reproduces the uncached
        # `np.where(dist <= 0, inf, powers / max(dist, 1e-300)**alpha)`
        # bit-for-bit without a float power per slot.
        attenuation = cache.attenuation_block(
            self.params.alpha, tx, rx, workspace=workspace
        )
        received = self._received_from_attenuation(
            attenuation, powers, workspace, tx.size, rx.size
        )
        fade = self._index_fade(cache, tx, rx, slot, workspace)
        if fade is not None:
            received = self._apply_fade(received, fade, workspace)
        return _decode_received(received, self.params, workspace)

    def resolve_indices_full(
        self,
        tx_indices: np.ndarray,
        powers: np.ndarray,
        cache: NodeArrayCache,
        slot: int | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`resolve_indices` with the *whole universe* as listeners.

        Returns ``(best, sinr, ok)`` with one column per cache node.  Each
        column's decode depends only on the transmitter rows, so listener
        columns are elementwise identical to a :meth:`resolve_indices` call
        on any listener subset - but the full-row gather here is much
        cheaper than a two-dimensional fancy slice.  Columns belonging to
        transmitting nodes are *not* masked; the caller applies half-duplex
        by ignoring them.
        """
        tx = np.asarray(tx_indices, dtype=np.intp)
        if tx.size == 0 or len(cache) == 0:
            return (
                np.zeros(len(cache), dtype=np.intp),
                np.zeros(len(cache), dtype=float),
                np.zeros(len(cache), dtype=bool),
            )
        attenuation = cache.attenuation_block(self.params.alpha, tx, workspace=workspace)
        received = self._received_from_attenuation(
            attenuation, powers, workspace, tx.size, len(cache)
        )
        fade = self._index_fade(cache, tx, None, slot, workspace)
        if fade is not None:
            received = self._apply_fade(received, fade, workspace)
        return _decode_received(received, self.params, workspace)

    @staticmethod
    @hot_kernel()
    def _received_from_attenuation(
        attenuation: np.ndarray,
        powers: np.ndarray,
        workspace: DecodeWorkspace | None,
        ntx: int,
        nrx: int,
    ) -> np.ndarray:
        """``powers[:, None] / attenuation``, into the arena when one is given."""
        power_col = np.asarray(powers, dtype=float)[:, None]
        if workspace is None:
            with np.errstate(divide="ignore"):
                return power_col / attenuation
        received = workspace.floats("decode.received", ntx, nrx)
        with np.errstate(divide="ignore"):
            np.divide(power_col, attenuation, out=received)
        return received

    @staticmethod
    @hot_kernel()
    def _apply_fade(
        received: np.ndarray, fade: np.ndarray, workspace: DecodeWorkspace | None
    ) -> np.ndarray:
        if workspace is None:
            return received * fade
        np.multiply(received, fade, out=received)
        return received

    def resolve_indices_many(
        self,
        tx_indices: np.ndarray,
        powers: np.ndarray,
        cache: NodeArrayCache,
        slots: np.ndarray | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Trial-stacked :meth:`resolve_indices_full`: ``T`` slots in one pass.

        Evaluates the *same transmitter set* under ``T`` per-trial power
        vectors (and, for slot-dependent gain models, ``T`` fade draws) with
        one attenuation gather and one tensor decode - the per-trial rows
        are bit-identical to ``T`` separate :meth:`resolve_indices_full`
        calls (parity tests pin this).

        Args:
            tx_indices: transmitter indices into ``cache`` (shared by all
                trials).
            powers: ``(T, ntx)`` per-trial powers, or ``(ntx,)`` shared.
            cache: the node universe.
            slots: length-``T`` global slot indices, consumed by
                slot-dependent gain models; ``None`` uses the slot-free
                draw for every trial.
            workspace: optional scratch arena.

        Returns:
            ``(best, sinr, ok)``, each of shape ``(T, len(cache))``.
        """
        tx = np.asarray(tx_indices, dtype=np.intp)
        powers = np.asarray(powers, dtype=float)
        if slots is not None:
            slots = np.asarray(slots, dtype=np.int64)
            trials = slots.shape[0]
        elif powers.ndim == 2:
            trials = powers.shape[0]
        else:
            raise ValueError("pass slots or stacked (T, ntx) powers to size the trial stack")
        n = len(cache)
        if tx.size == 0 or n == 0:
            return (
                np.zeros((trials, n), dtype=np.intp),
                np.zeros((trials, n), dtype=float),
                np.zeros((trials, n), dtype=bool),
            )
        if powers.ndim == 2 and powers.shape[0] != trials:
            raise ValueError(
                f"powers stack has {powers.shape[0]} trials but slots has {trials}"
            )
        attenuation = cache.attenuation_block(self.params.alpha, tx, workspace=workspace)
        ws = DecodeWorkspace() if workspace is None else workspace
        received = ws.floats("many.received", trials, tx.size, n)
        power_cube = powers[:, :, None] if powers.ndim == 2 else powers[None, :, None]
        with np.errstate(divide="ignore"):
            np.divide(power_cube, attenuation[None], out=received)

        model = self.params.effective_gain_model
        if model is not None:
            if model.slot_invariant:
                fade = cache.fade_block(model, tx, workspace=workspace)
                if fade is not None:
                    np.multiply(received, fade[None], out=received)
            else:
                fade = model.fade_stack(
                    cache.ids[tx],
                    cache.ids,
                    np.zeros(trials, dtype=np.int64) if slots is None else slots,
                )
                if fade is not None:
                    np.multiply(received, fade, out=received)

        return _decode_received_stack(received, self.params, ws)

    def link_succeeds(
        self,
        sender: Node,
        receiver: Node,
        sender_power: float,
        concurrent: Mapping[int, tuple[Node, float]] | Sequence[Transmission],
        slot: int | None = None,
    ) -> bool:
        """Whether a specific sender->receiver transmission meets the threshold.

        Args:
            sender: transmitting node of the link under test.
            receiver: intended receiver.
            sender_power: power used by ``sender``.
            concurrent: the other simultaneous transmissions, either as a
                sequence of :class:`Transmission` or a mapping from node id to
                ``(node, power)``.
            slot: global slot index for slot-dependent gain models.
        """
        if isinstance(concurrent, Mapping):
            others = [(node, power) for node, power in concurrent.values()]
        else:
            others = [(t.sender, t.power) for t in concurrent]
        others = [(node, power) for node, power in others if node.id != sender.id]
        if any(node.id == receiver.id for node, _ in others):
            return False  # half-duplex: the receiver is busy transmitting
        distance = sender.distance_to(receiver)
        if distance <= 0:
            return False
        signal = sender_power / distance**self.params.alpha
        model = self.params.effective_gain_model
        if model is not None:
            signal_fade = model.fade_pairs(
                np.array([sender.id]), np.array([receiver.id]), slot
            )
            if signal_fade is not None:
                signal *= float(signal_fade[0])
        if others:
            powers = np.array([power for _, power in others], dtype=float)
            dist = self._distances_to_node(receiver, [node for node, _ in others])
            received = powers / np.maximum(dist, 1e-300) ** self.params.alpha
            if model is not None:
                cross_fade = model.fade_pairs(
                    np.array([node.id for node, _ in others], dtype=np.int64),
                    np.full(len(others), receiver.id, dtype=np.int64),
                    slot,
                )
                if cross_fade is not None:
                    received = received * cross_fade
            interference = float(received.sum())
        else:
            interference = 0.0
        return signal / (self.params.noise + interference) >= self.params.beta

    def _distances_to_node(self, receiver: Node, nodes: Sequence[Node]) -> np.ndarray:
        """Distances from each of ``nodes`` to ``receiver`` (overridden by caches)."""
        xy = np.array([[n.x, n.y] for n in nodes], dtype=float)
        return np.hypot(xy[:, 0] - receiver.x, xy[:, 1] - receiver.y)


# Node count above which the O(n^2) cached matrices are not worth their
# memory (8 bytes * n^2 each for the distance matrix plus one attenuation
# matrix per alpha queried; 2048 nodes ~ 33 MB per matrix, typically ~66 MB
# total).  Upgrade sites consult this.
MAX_CACHED_CHANNEL_NODES = 2048


class CachedChannel(Channel):
    """Channel over a *fixed node universe*, backed by cached distances.

    The node-to-node distance matrix is computed once; every call to
    :meth:`resolve` then slices it by transmitter/listener index instead of
    rebuilding coordinate arrays from the node objects.  Results are
    identical to :class:`Channel` (the distances are the same hypot values,
    merely precomputed).  Transmissions or listeners involving nodes outside
    the universe fall back to the uncached distance computation.

    Args:
        params: the physical-model parameters.
        nodes: the node universe (e.g. all simulator agents' nodes, or every
            endpoint of a link set being scheduled).
        cache: an existing :class:`NodeArrayCache` over the same universe to
            share instead of building a new one - several channels with
            different parameters (e.g. one per gain model under study) can
            then reuse one set of O(n^2) distance/attenuation matrices.
            When given, ``nodes`` is ignored.
        state: an existing :class:`~repro.state.NetworkState` to view - the
            channel's cache then shares the state's matrices with every
            other view of it, and topology changes applied to the state
            (churn splices, moves) are visible to the channel without any
            rebuild.  Mutually exclusive with ``cache``.
    """

    def __init__(
        self,
        params: SINRParameters,
        nodes: Iterable[Node] | None = None,
        cache: NodeArrayCache | None = None,
        *,
        state: NetworkState | None = None,
    ) -> None:
        super().__init__(params)
        if cache is None:
            if state is not None:
                cache = NodeArrayCache(nodes, state=state)
            elif nodes is None:
                raise ValueError(
                    "CachedChannel needs a node universe: pass nodes, cache or state"
                )
            elif params.store == "tiled":
                # The store switch: an O(n) tiled state instead of the dense
                # O(n^2) matrices.  Decode rectangles stay bitwise-equal to
                # the dense gather, so this channel's results are identical.
                cache = NodeArrayCache(state=TiledNetworkState(nodes))
            else:
                cache = NodeArrayCache(nodes)
        elif state is not None and cache.state is not state:
            raise ValueError("pass either cache or state, not both")
        self.cache = cache

    def _distances(
        self, transmissions: Sequence[Transmission], active_listeners: Sequence[Node]
    ) -> np.ndarray:
        try:
            tx_idx = np.array(
                [self.cache.index_of_id(t.sender.id) for t in transmissions], dtype=np.intp
            )
            rx_idx = np.array(
                [self.cache.index_of_id(n.id) for n in active_listeners], dtype=np.intp
            )
        except KeyError:
            return super()._distances(transmissions, active_listeners)
        return self.cache.distance_block(tx_idx, rx_idx)

    def resolve_indices(
        self,
        tx_indices: np.ndarray,
        rx_indices: np.ndarray,
        powers: np.ndarray,
        cache: NodeArrayCache | None = None,
        slot: int | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index-array fast path; indices address this channel's own cache."""
        return super().resolve_indices(
            tx_indices,
            rx_indices,
            powers,
            self.cache if cache is None else cache,
            slot,
            workspace=workspace,
        )

    def resolve_indices_full(
        self,
        tx_indices: np.ndarray,
        powers: np.ndarray,
        cache: NodeArrayCache | None = None,
        slot: int | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Whole-universe fast path; indices address this channel's own cache."""
        return super().resolve_indices_full(
            tx_indices,
            powers,
            self.cache if cache is None else cache,
            slot,
            workspace=workspace,
        )

    def resolve_indices_many(
        self,
        tx_indices: np.ndarray,
        powers: np.ndarray,
        cache: NodeArrayCache | None = None,
        slots: np.ndarray | None = None,
        *,
        workspace: DecodeWorkspace | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Trial-stacked fast path; indices address this channel's own cache."""
        return super().resolve_indices_many(
            tx_indices,
            powers,
            self.cache if cache is None else cache,
            slots,
            workspace=workspace,
        )

    def _distances_to_node(self, receiver: Node, nodes: Sequence[Node]) -> np.ndarray:
        try:
            rx = self.cache.index_of_id(receiver.id)
            idx = np.array([self.cache.index_of_id(n.id) for n in nodes], dtype=np.intp)
        except KeyError:
            return super()._distances_to_node(receiver, nodes)
        return self.cache.distance_block(idx, np.array([rx], dtype=np.intp))[:, 0]
