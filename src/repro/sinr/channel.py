"""The shared wireless channel.

The channel is the *only* means of communication in the paper's model: in
each slot some nodes transmit (each with a chosen power and message) and every
non-transmitting node receives the message of the strongest sender whose SINR
at that node meets the threshold ``beta`` - or nothing.

The :class:`Channel` is stateless with respect to time; the distributed
simulator (``repro.runtime``) calls :meth:`Channel.resolve` once per slot and
is responsible for slot accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..geometry import Node
from .arrays import NodeArrayCache
from .parameters import SINRParameters

__all__ = [
    "Transmission",
    "Reception",
    "Channel",
    "CachedChannel",
    "MAX_CACHED_CHANNEL_NODES",
]


@dataclass(frozen=True)
class Transmission:
    """A single node transmitting one message at one power level in a slot."""

    sender: Node
    power: float
    message: Any = None

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ValueError(f"transmission power must be positive, got {self.power}")


@dataclass(frozen=True)
class Reception:
    """A successful reception at a listener.

    Attributes:
        sender: the node whose message was decoded.
        message: the decoded message payload.
        sinr: the SINR at which it was received.
    """

    sender: Node
    message: Any
    sinr: float


class Channel:
    """SINR channel resolving simultaneous transmissions into receptions.

    Args:
        params: the physical-model parameters.
    """

    def __init__(self, params: SINRParameters):
        self.params = params

    def resolve(
        self,
        transmissions: Sequence[Transmission],
        listeners: Iterable[Node],
    ) -> dict[int, Reception]:
        """Determine which listeners decode which transmission.

        A listener decodes the transmission with the highest SINR at its
        location, provided that SINR is at least ``beta``.  Nodes that are
        themselves transmitting never receive (half-duplex); transmitting
        nodes included in ``listeners`` are silently skipped.

        Args:
            transmissions: the transmissions taking place in this slot.  If a
                node appears as the sender of several transmissions a
                ``ValueError`` is raised - a radio sends one message per slot.
            listeners: the nodes listening in this slot.

        Returns:
            Mapping from listener node id to the :class:`Reception` it decoded.
            Listeners that decode nothing are absent from the mapping.
        """
        listener_list = [node for node in listeners]
        if not transmissions or not listener_list:
            return {}

        sender_ids = [t.sender.id for t in transmissions]
        if len(sender_ids) != len(set(sender_ids)):
            raise ValueError("a node cannot send two transmissions in the same slot")
        transmitting_ids = set(sender_ids)
        active_listeners = [node for node in listener_list if node.id not in transmitting_ids]
        if not active_listeners:
            return {}

        dist = self._distances(transmissions, active_listeners)
        powers = np.array([t.power for t in transmissions], dtype=float)
        return self._decode(transmissions, active_listeners, dist, powers)

    def _distances(
        self, transmissions: Sequence[Transmission], active_listeners: Sequence[Node]
    ) -> np.ndarray:
        """Transmitter-to-listener distance matrix (overridden by caches)."""
        tx_xy = np.array([[t.sender.x, t.sender.y] for t in transmissions], dtype=float)
        rx_xy = np.array([[n.x, n.y] for n in active_listeners], dtype=float)
        diff = tx_xy[:, None, :] - rx_xy[None, :, :]
        return np.hypot(diff[..., 0], diff[..., 1])

    def _decode(
        self,
        transmissions: Sequence[Transmission],
        active_listeners: Sequence[Node],
        dist: np.ndarray,
        powers: np.ndarray,
    ) -> dict[int, Reception]:
        """Resolve receptions from a transmitter-to-listener distance matrix."""
        with np.errstate(divide="ignore"):
            received = powers[:, None] / np.maximum(dist, 1e-300) ** self.params.alpha
        received = np.where(dist <= 0, np.inf, received)

        total = received.sum(axis=0) + self.params.noise
        results: dict[int, Reception] = {}
        for j, listener in enumerate(active_listeners):
            signals = received[:, j]
            best = int(np.argmax(signals))
            interference = total[j] - signals[best]
            if interference <= 0:
                sinr = np.inf
            else:
                sinr = float(signals[best] / interference)
            if sinr >= self.params.beta:
                t = transmissions[best]
                results[listener.id] = Reception(sender=t.sender, message=t.message, sinr=sinr)
        return results

    def link_succeeds(
        self,
        sender: Node,
        receiver: Node,
        sender_power: float,
        concurrent: Mapping[int, tuple[Node, float]] | Sequence[Transmission],
    ) -> bool:
        """Whether a specific sender->receiver transmission meets the threshold.

        Args:
            sender: transmitting node of the link under test.
            receiver: intended receiver.
            sender_power: power used by ``sender``.
            concurrent: the other simultaneous transmissions, either as a
                sequence of :class:`Transmission` or a mapping from node id to
                ``(node, power)``.
        """
        if isinstance(concurrent, Mapping):
            others = [(node, power) for node, power in concurrent.values()]
        else:
            others = [(t.sender, t.power) for t in concurrent]
        others = [(node, power) for node, power in others if node.id != sender.id]
        if any(node.id == receiver.id for node, _ in others):
            return False  # half-duplex: the receiver is busy transmitting
        distance = sender.distance_to(receiver)
        if distance <= 0:
            return False
        signal = sender_power / distance**self.params.alpha
        interference = sum(
            power / max(node.distance_to(receiver), 1e-300) ** self.params.alpha
            for node, power in others
        )
        return signal / (self.params.noise + interference) >= self.params.beta


# Node count above which the O(n^2) cached distance matrix is not worth its
# memory (8 bytes * n^2; 2048 nodes ~ 33 MB).  Upgrade sites consult this.
MAX_CACHED_CHANNEL_NODES = 2048


class CachedChannel(Channel):
    """Channel over a *fixed node universe*, backed by cached distances.

    The node-to-node distance matrix is computed once; every call to
    :meth:`resolve` then slices it by transmitter/listener index instead of
    rebuilding coordinate arrays from the node objects.  Results are
    identical to :class:`Channel` (the distances are the same hypot values,
    merely precomputed).  Transmissions or listeners involving nodes outside
    the universe fall back to the uncached distance computation.

    Args:
        params: the physical-model parameters.
        nodes: the node universe (e.g. all simulator agents' nodes, or every
            endpoint of a link set being scheduled).
    """

    def __init__(self, params: SINRParameters, nodes: Iterable[Node]):
        super().__init__(params)
        self.cache = NodeArrayCache(nodes)

    def _distances(
        self, transmissions: Sequence[Transmission], active_listeners: Sequence[Node]
    ) -> np.ndarray:
        try:
            tx_idx = np.array(
                [self.cache.index_of_id(t.sender.id) for t in transmissions], dtype=np.intp
            )
            rx_idx = np.array(
                [self.cache.index_of_id(n.id) for n in active_listeners], dtype=np.intp
            )
        except KeyError:
            return super()._distances(transmissions, active_listeners)
        return self.cache.distance_matrix()[np.ix_(tx_idx, rx_idx)]
